//! Master-side array handles and the NumPy-like global-mode API.
//!
//! A [`DistArray`] is a lightweight handle: the data lives on the workers.
//! Every method broadcasts a small control command; binary operations on
//! non-conformable operands insert a redistribution automatically, with a
//! selectable strategy (§III-D: "ODIN will choose a strategy that will
//! minimize communication, while allowing the knowledgeable user to
//! modify its behavior").

use std::cell::Cell;

use crate::buffer::{Buffer, DType};
use crate::context::OdinContext;
use crate::protocol::{ArrayMeta, BinOp, Cmd, Dist, Fill, UnaryOp};
use crate::slicing::SliceSpec;

/// How non-conformable binary operands are aligned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BinaryStrategy {
    /// Redistribute the right operand to the left's layout.
    RedistRight,
    /// Redistribute the left operand to the right's layout.
    RedistLeft,
    /// Prefer whichever side already has a Block layout (cheapest for
    /// downstream slicing); ties go to the left layout.
    #[default]
    Auto,
}

thread_local! {
    static STRATEGY: Cell<BinaryStrategy> = const { Cell::new(BinaryStrategy::Auto) };
}

/// Set the alignment strategy for subsequent binary ufuncs on this thread
/// (the paper's "context managers and function decorators" knob).
pub fn set_binary_strategy(s: BinaryStrategy) {
    STRATEGY.with(|c| c.set(s));
}

/// Current alignment strategy.
pub fn binary_strategy() -> BinaryStrategy {
    STRATEGY.with(|c| c.get())
}

/// Handle to a distributed array owned by an [`OdinContext`].
pub struct DistArray<'c> {
    ctx: &'c OdinContext,
    id: u64,
}

impl std::fmt::Debug for DistArray<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let meta = self.meta();
        write!(
            f,
            "DistArray(id={}, shape={:?}, dist={:?}, dtype={:?})",
            self.id, meta.shape, meta.dist, meta.dtype
        )
    }
}

impl Drop for DistArray<'_> {
    fn drop(&mut self) {
        self.ctx.send_cmd(&Cmd::Free { id: self.id });
        self.ctx.forget_meta(self.id);
    }
}

impl<'c> DistArray<'c> {
    pub(crate) fn from_id(ctx: &'c OdinContext, id: u64) -> Self {
        DistArray { ctx, id }
    }

    /// The owning context.
    pub fn ctx(&self) -> &'c OdinContext {
        self.ctx
    }

    /// The array's id in the worker slot tables (local-mode calls take
    /// array ids as arguments).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Metadata snapshot.
    pub fn meta(&self) -> ArrayMeta {
        self.ctx.meta_of(self.id)
    }

    /// Global shape.
    pub fn shape(&self) -> Vec<usize> {
        self.meta().shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.meta().n_global()
    }

    /// Whether the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element dtype.
    pub fn dtype(&self) -> DType {
        self.meta().dtype
    }

    /// Distribution along axis 0.
    pub fn dist(&self) -> Dist {
        self.meta().dist
    }

    fn unary(&self, op: UnaryOp) -> DistArray<'c> {
        let out = self.ctx.alloc_id();
        let mut meta = self.meta();
        meta.dtype = crate::buffer::unary_result_dtype(op, meta.dtype);
        self.ctx.send_cmd(&Cmd::Unary {
            out,
            a: self.id,
            op,
        });
        self.ctx.record_meta(out, meta);
        DistArray::from_id(self.ctx, out)
    }

    /// Elementwise binary ufunc with automatic alignment.
    pub fn binary(&self, other: &DistArray<'c>, op: BinOp) -> DistArray<'c> {
        let ma = self.meta();
        let mb = other.meta();
        assert_eq!(ma.shape, mb.shape, "binary ufunc shape mismatch");
        if ma.conformable(&mb) {
            return self.binary_conformable(other.id, &ma, &mb, op);
        }
        // Non-conformable: align per the strategy.
        let strategy = binary_strategy();
        let redistribute_right = match strategy {
            BinaryStrategy::RedistRight => true,
            BinaryStrategy::RedistLeft => false,
            BinaryStrategy::Auto => {
                // Prefer the side already in Block layout as the target.
                if ma.dist == Dist::Block {
                    true
                } else {
                    mb.dist != Dist::Block
                }
            }
        };
        if redistribute_right {
            let aligned = other.redistribute(ma.dist);
            let m2 = aligned.meta();
            self.binary_conformable(aligned.id, &ma, &m2, op)
        } else {
            let aligned = self.redistribute(mb.dist);
            let m1 = aligned.meta();
            aligned.binary_conformable(other.id, &m1, &mb, op)
        }
    }

    fn binary_conformable(
        &self,
        rhs_id: u64,
        ma: &ArrayMeta,
        mb: &ArrayMeta,
        op: BinOp,
    ) -> DistArray<'c> {
        let out = self.ctx.alloc_id();
        let mut meta = ma.clone();
        meta.dtype = crate::buffer::binary_result_dtype(op, ma.dtype, mb.dtype);
        self.ctx.send_cmd(&Cmd::Binary {
            out,
            a: self.id,
            b: rhs_id,
            op,
        });
        self.ctx.record_meta(out, meta);
        DistArray::from_id(self.ctx, out)
    }

    /// Binary ufunc against a broadcast scalar.
    pub fn binary_scalar(&self, scalar: f64, op: BinOp, scalar_left: bool) -> DistArray<'c> {
        let out = self.ctx.alloc_id();
        let ma = self.meta();
        let scalar_dtype = if scalar.fract() == 0.0 {
            DType::I64
        } else {
            DType::F64
        };
        let mut meta = ma.clone();
        meta.dtype = crate::buffer::binary_result_dtype(op, ma.dtype, scalar_dtype);
        self.ctx.send_cmd(&Cmd::BinaryScalar {
            out,
            a: self.id,
            scalar,
            op,
            scalar_left,
        });
        self.ctx.record_meta(out, meta);
        DistArray::from_id(self.ctx, out)
    }

    /// Cast to another dtype.
    pub fn astype(&self, dtype: DType) -> DistArray<'c> {
        let out = self.ctx.alloc_id();
        let mut meta = self.meta();
        meta.dtype = dtype;
        self.ctx.send_cmd(&Cmd::AsType {
            out,
            a: self.id,
            dtype,
        });
        self.ctx.record_meta(out, meta);
        DistArray::from_id(self.ctx, out)
    }

    /// Materialize under a new distribution.
    pub fn redistribute(&self, dist: Dist) -> DistArray<'c> {
        let out = self.ctx.alloc_id();
        let mut meta = self.meta();
        meta.dist = dist;
        self.ctx.send_cmd(&Cmd::Redistribute {
            out,
            a: self.id,
            dist,
            axis: 0,
        });
        self.ctx.record_meta(out, meta);
        DistArray::from_id(self.ctx, out)
    }

    /// Materialize a slice (one [`SliceSpec`] per dimension).
    pub fn slice(&self, specs: &[SliceSpec]) -> DistArray<'c> {
        let meta = self.meta();
        assert_eq!(specs.len(), meta.ndim(), "one spec per dimension");
        for (spec, &dim) in specs.iter().zip(meta.shape.iter()) {
            assert!(
                spec.stop <= dim,
                "slice beyond dimension ({spec:?} vs {dim})"
            );
        }
        let out = self.ctx.alloc_id();
        let out_meta = ArrayMeta {
            shape: specs.iter().map(|s| s.len()).collect(),
            axis: 0,
            dist: meta.dist,
            dtype: meta.dtype,
        };
        self.ctx.send_cmd(&Cmd::Slice {
            out,
            a: self.id,
            specs: specs.to_vec(),
        });
        self.ctx.record_meta(out, out_meta);
        DistArray::from_id(self.ctx, out)
    }

    /// 1-D Python-style slice with optional negative bounds:
    /// `a.slice1(1, None, 1)` is `a[1:]`, `a.slice1(0, Some(-1), 1)` is
    /// `a[:-1]` — the two slices of the paper's finite-difference example.
    pub fn slice1(&self, start: isize, stop: Option<isize>, step: usize) -> DistArray<'c> {
        let meta = self.meta();
        assert_eq!(meta.ndim(), 1, "slice1 needs a 1-D array");
        let n = meta.shape[0] as isize;
        let norm = |i: isize| -> usize {
            let j = if i < 0 { n + i } else { i };
            j.clamp(0, n) as usize
        };
        let start = norm(start);
        let stop = norm(stop.unwrap_or(n));
        self.slice(&[SliceSpec::new(start, stop.max(start), step)])
    }

    /// Fetch the whole array to the master as `(shape, global buffer)` —
    /// rows in global order.
    pub fn fetch(&self) -> (Vec<usize>, Buffer) {
        self.fetch_async().wait()
    }

    /// Pipelined [`Self::fetch`]: dispatch the gather and return a future,
    /// so independent commands can overlap with the segment uploads.
    pub fn fetch_async(&self) -> crate::context::Pending<'c, (Vec<usize>, Buffer)> {
        let meta = self.meta();
        let raw = self.ctx.dispatch_all(&Cmd::Fetch { a: self.id });
        raw.map(move |replies| {
            let slab = meta.slab();
            let mut out = Buffer::zeros(meta.dtype, meta.n_global());
            for msg in replies {
                // Large segments arrive as typed regions (no decode);
                // small ones on the classic wire path.
                let (gids, seg): (Vec<usize>, Buffer) = match msg {
                    crate::protocol::ReplyMsg::Segment { gids, data } => (gids, data),
                    crate::protocol::ReplyMsg::Bytes(bytes) => {
                        comm::decode_from_slice(&bytes).expect("bad fetch payload")
                    }
                };
                for (l, g) in gids.iter().enumerate() {
                    let src = seg.gather_indices(l * slab..(l + 1) * slab);
                    place(&mut out, g * slab, &src);
                }
            }
            (meta.shape, out)
        })
    }

    /// Fetch as a flat `Vec<f64>` (any dtype widens).
    pub fn to_vec(&self) -> Vec<f64> {
        let (_, buf) = self.fetch();
        (0..buf.len()).map(|i| buf.get_f64(i)).collect()
    }

    /// Fetch as a flat `Vec<i64>`.
    pub fn to_vec_i64(&self) -> Vec<i64> {
        let (_, buf) = self.fetch();
        (0..buf.len()).map(|i| buf.get_i64(i)).collect()
    }

    // ---- named ufuncs ----

    /// Elementwise sine.
    pub fn sin(&self) -> DistArray<'c> {
        self.unary(UnaryOp::Sin)
    }
    /// Elementwise cosine.
    pub fn cos(&self) -> DistArray<'c> {
        self.unary(UnaryOp::Cos)
    }
    /// Elementwise tangent.
    pub fn tan(&self) -> DistArray<'c> {
        self.unary(UnaryOp::Tan)
    }
    /// Elementwise natural exponential.
    pub fn exp(&self) -> DistArray<'c> {
        self.unary(UnaryOp::Exp)
    }
    /// Elementwise natural log.
    pub fn ln(&self) -> DistArray<'c> {
        self.unary(UnaryOp::Log)
    }
    /// Elementwise square root.
    pub fn sqrt(&self) -> DistArray<'c> {
        self.unary(UnaryOp::Sqrt)
    }
    /// Elementwise absolute value.
    pub fn abs(&self) -> DistArray<'c> {
        self.unary(UnaryOp::Abs)
    }
    /// Elementwise floor.
    pub fn floor(&self) -> DistArray<'c> {
        self.unary(UnaryOp::Floor)
    }
    /// Elementwise ceiling.
    pub fn ceil(&self) -> DistArray<'c> {
        self.unary(UnaryOp::Ceil)
    }
    /// Elementwise logical not.
    pub fn logical_not(&self) -> DistArray<'c> {
        self.unary(UnaryOp::Not)
    }
    /// Elementwise power with a scalar exponent.
    pub fn powf(&self, e: f64) -> DistArray<'c> {
        self.binary_scalar(e, BinOp::Pow, false)
    }
    /// Elementwise `hypot` with another array (the paper's §III-C
    /// example).
    pub fn hypot(&self, other: &DistArray<'c>) -> DistArray<'c> {
        self.binary(other, BinOp::Hypot)
    }
    /// Elementwise maximum with another array.
    pub fn maximum(&self, other: &DistArray<'c>) -> DistArray<'c> {
        self.binary(other, BinOp::Max)
    }
    /// Elementwise minimum with another array.
    pub fn minimum(&self, other: &DistArray<'c>) -> DistArray<'c> {
        self.binary(other, BinOp::Min)
    }
    /// Elementwise less-than comparison.
    pub fn lt(&self, other: &DistArray<'c>) -> DistArray<'c> {
        self.binary(other, BinOp::Lt)
    }
    /// Elementwise greater-than comparison.
    pub fn gt(&self, other: &DistArray<'c>) -> DistArray<'c> {
        self.binary(other, BinOp::Gt)
    }
}

fn place(out: &mut Buffer, at: usize, row: &Buffer) {
    match (out, row) {
        (Buffer::F64(o), Buffer::F64(r)) => o[at..at + r.len()].copy_from_slice(r),
        (Buffer::I64(o), Buffer::I64(r)) => o[at..at + r.len()].copy_from_slice(r),
        (Buffer::Bool(o), Buffer::Bool(r)) => o[at..at + r.len()].copy_from_slice(r),
        _ => panic!("fetch dtype mismatch"),
    }
}

// ---- creation routines on the context --------------------------------------

impl OdinContext {
    fn create(&self, shape: Vec<usize>, dtype: DType, dist: Dist, fill: Fill) -> DistArray<'_> {
        let id = self.alloc_id();
        let meta = ArrayMeta {
            shape,
            axis: 0,
            dist,
            dtype,
        };
        self.send_cmd(&Cmd::Create {
            id,
            meta: meta.clone(),
            fill,
        });
        self.record_meta(id, meta);
        DistArray::from_id(self, id)
    }

    /// Zeros with a chosen distribution.
    pub fn zeros_dist(&self, shape: &[usize], dtype: DType, dist: Dist) -> DistArray<'_> {
        self.create(shape.to_vec(), dtype, dist, Fill::Zeros)
    }

    /// Block-distributed zeros.
    pub fn zeros(&self, shape: &[usize], dtype: DType) -> DistArray<'_> {
        self.zeros_dist(shape, dtype, Dist::Block)
    }

    /// Block-distributed ones.
    pub fn ones(&self, shape: &[usize], dtype: DType) -> DistArray<'_> {
        self.create(shape.to_vec(), dtype, Dist::Block, Fill::Full(1.0))
    }

    /// Constant array.
    pub fn full(&self, shape: &[usize], value: f64, dist: Dist) -> DistArray<'_> {
        let dtype = DType::F64; // NumPy's np.full defaults to float
        self.create(shape.to_vec(), dtype, dist, Fill::Full(value))
    }

    /// Integers `0..n`.
    pub fn arange(&self, n: usize) -> DistArray<'_> {
        self.create(
            vec![n],
            DType::I64,
            Dist::Block,
            Fill::Arange {
                start: 0.0,
                step: 1.0,
            },
        )
    }

    /// Float range `start, start+step, …` of length `n`, distribution
    /// `dist`.
    pub fn arange_f64(&self, start: f64, step: f64, n: usize, dist: Dist) -> DistArray<'_> {
        self.create(vec![n], DType::F64, dist, Fill::Arange { start, step })
    }

    /// `n` evenly spaced points in `[start, stop]` — the paper's
    /// `odin.linspace(1, 2*pi, 10**8)`.
    pub fn linspace(&self, start: f64, stop: f64, n: usize) -> DistArray<'_> {
        self.create(
            vec![n],
            DType::F64,
            Dist::Block,
            Fill::Linspace { start, stop },
        )
    }

    /// Deterministic uniform-random array — the paper's
    /// `odin.random((10**6, 10**6))`.
    pub fn random(&self, shape: &[usize], seed: u64) -> DistArray<'_> {
        self.create(
            shape.to_vec(),
            DType::F64,
            Dist::Block,
            Fill::Random { seed },
        )
    }

    /// Random with a chosen distribution.
    pub fn random_dist(&self, shape: &[usize], seed: u64, dist: Dist) -> DistArray<'_> {
        self.create(shape.to_vec(), DType::F64, dist, Fill::Random { seed })
    }

    /// Scatter a master-resident `f64` vector as a 1-D array (data
    /// message, not a control message).
    pub fn from_vec(&self, values: &[f64], dist: Dist) -> DistArray<'_> {
        let id = self.alloc_id();
        let meta = ArrayMeta {
            shape: vec![values.len()],
            axis: 0,
            dist,
            dtype: DType::F64,
        };
        for w in 0..self.n_workers() {
            let map = meta.axis_map(self.n_workers(), w);
            let seg: Vec<f64> = map.my_gids().iter().map(|&g| values[g]).collect();
            self.send_cmd_to(
                w,
                &Cmd::SetData {
                    id,
                    meta: meta.clone(),
                    data: Buffer::F64(seg),
                },
            );
        }
        self.record_meta(id, meta);
        DistArray::from_id(self, id)
    }
}

// ---- operator overloads -----------------------------------------------------

macro_rules! arr_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<'c> std::ops::$trait<&DistArray<'c>> for &DistArray<'c> {
            type Output = DistArray<'c>;
            fn $method(self, rhs: &DistArray<'c>) -> DistArray<'c> {
                self.binary(rhs, $op)
            }
        }
        impl<'c> std::ops::$trait<f64> for &DistArray<'c> {
            type Output = DistArray<'c>;
            fn $method(self, rhs: f64) -> DistArray<'c> {
                self.binary_scalar(rhs, $op, false)
            }
        }
        impl<'c> std::ops::$trait<&DistArray<'c>> for f64 {
            type Output = DistArray<'c>;
            fn $method(self, rhs: &DistArray<'c>) -> DistArray<'c> {
                rhs.binary_scalar(self, $op, true)
            }
        }
    };
}

arr_binop!(Add, add, BinOp::Add);
arr_binop!(Sub, sub, BinOp::Sub);
arr_binop!(Mul, mul, BinOp::Mul);
arr_binop!(Div, div, BinOp::Div);
arr_binop!(Rem, rem, BinOp::Mod);

impl<'c> std::ops::Neg for &DistArray<'c> {
    type Output = DistArray<'c>;
    fn neg(self) -> DistArray<'c> {
        self.unary(UnaryOp::Neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creation_and_fetch_roundtrip() {
        let ctx = OdinContext::with_workers(3);
        let z = ctx.zeros(&[7], DType::F64);
        assert_eq!(z.to_vec(), vec![0.0; 7]);
        let o = ctx.ones(&[5], DType::I64);
        assert_eq!(o.to_vec_i64(), vec![1; 5]);
        let a = ctx.arange(6);
        assert_eq!(a.to_vec_i64(), vec![0, 1, 2, 3, 4, 5]);
        let l = ctx.linspace(0.0, 1.0, 5);
        assert_eq!(l.to_vec(), vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn creation_is_worker_count_invariant() {
        let get = |w: usize| {
            let ctx = OdinContext::with_workers(w);
            let v = ctx.random(&[32], 99).to_vec();
            v
        };
        assert_eq!(get(1), get(4));
    }

    #[test]
    fn elementwise_ops_match_serial() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.linspace(0.0, 3.0, 7);
        let y = (&x * &x).sqrt(); // |x|
        let got = y.to_vec();
        for (g, x) in got.iter().zip(x.to_vec()) {
            assert!((g - x).abs() < 1e-12);
        }
        let z = &(&x * 2.0) + 1.0;
        for (g, x) in z.to_vec().iter().zip(x.to_vec()) {
            assert!((g - (2.0 * x + 1.0)).abs() < 1e-12);
        }
        let w = 1.0 / &(&x + 1.0);
        for (g, x) in w.to_vec().iter().zip(x.to_vec()) {
            assert!((g - 1.0 / (x + 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn hypot_example_from_paper() {
        // §III-C: hypot(x, y) = sqrt(x² + y²) elementwise.
        let ctx = OdinContext::with_workers(3);
        let x = ctx.full(&[10], 3.0, Dist::Block);
        let y = ctx.full(&[10], 4.0, Dist::Block);
        let h = x.hypot(&y);
        assert_eq!(h.to_vec(), vec![5.0; 10]);
    }

    #[test]
    fn non_conformable_binary_redistributes_automatically() {
        let ctx = OdinContext::with_workers(3);
        let x = ctx.arange_f64(0.0, 1.0, 11, Dist::Block);
        let y = ctx.arange_f64(0.0, 2.0, 11, Dist::Cyclic);
        let s = &x + &y; // non-conformable: block + cyclic
        let expect: Vec<f64> = (0..11).map(|g| g as f64 * 3.0).collect();
        assert_eq!(s.to_vec(), expect);
        // Auto strategy keeps the Block layout.
        assert_eq!(s.dist(), Dist::Block);
    }

    #[test]
    fn strategy_knob_changes_result_layout() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.arange_f64(0.0, 1.0, 8, Dist::Cyclic);
        let y = ctx.arange_f64(0.0, 1.0, 8, Dist::BlockCyclic(2));
        set_binary_strategy(BinaryStrategy::RedistLeft);
        let s = &x + &y;
        assert_eq!(s.dist(), Dist::BlockCyclic(2));
        set_binary_strategy(BinaryStrategy::Auto);
        let expect: Vec<f64> = (0..8).map(|g| g as f64 * 2.0).collect();
        assert_eq!(s.to_vec(), expect);
    }

    #[test]
    fn comparisons_and_casts() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.arange(6); // 0..5 i64
        let half = x.binary_scalar(2.5, BinOp::Gt, false);
        assert_eq!(half.dtype(), DType::Bool);
        assert_eq!(half.to_vec_i64(), vec![0, 0, 0, 1, 1, 1], "x > 2.5 mask");
        let as_f = x.astype(DType::F64);
        assert_eq!(as_f.dtype(), DType::F64);
        assert_eq!(as_f.to_vec(), vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn from_vec_scatters() {
        let ctx = OdinContext::with_workers(3);
        let vals = vec![5.0, -1.0, 2.5, 0.0, 9.0];
        let a = ctx.from_vec(&vals, Dist::Cyclic);
        assert_eq!(a.to_vec(), vals);
        let st = ctx.stats();
        assert!(st.data_msgs >= 3, "SetData are data messages");
    }

    #[test]
    fn slicing_1d_shifted_difference() {
        // The paper's §III-G finite-difference slices.
        let ctx = OdinContext::with_workers(3);
        let y = ctx.linspace(0.0, 10.0, 11); // 0,1,…,10
        let hi = y.slice1(1, None, 1);
        let lo = y.slice1(0, Some(-1), 1);
        let dy = &hi - &lo;
        assert_eq!(dy.len(), 10);
        let got = dy.to_vec();
        for v in got {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn slicing_with_step_and_2d() {
        let ctx = OdinContext::with_workers(2);
        // 2-D: 6 rows × 4 cols, values = flat index
        let a = ctx.arange_f64(0.0, 1.0, 24, Dist::Block);
        // reshape is not supported; build 2-D directly instead
        let b = ctx.create(
            vec![6, 4],
            DType::F64,
            Dist::Block,
            Fill::Arange {
                start: 0.0,
                step: 1.0,
            },
        );
        drop(a);
        let s = b.slice(&[SliceSpec::new(1, 6, 2), SliceSpec::new(0, 4, 3)]);
        // rows 1,3,5; cols 0,3 → values r*4+c
        assert_eq!(s.shape(), vec![3, 2]);
        assert_eq!(s.to_vec(), vec![4.0, 7.0, 12.0, 15.0, 20.0, 23.0]);
    }

    #[test]
    fn redistribute_roundtrip() {
        let ctx = OdinContext::with_workers(3);
        let a = ctx.random(&[17], 5);
        let orig = a.to_vec();
        let b = a.redistribute(Dist::Cyclic);
        let c = b.redistribute(Dist::BlockCyclic(3));
        let d = c.redistribute(Dist::Block);
        assert_eq!(d.to_vec(), orig);
    }

    #[test]
    fn drop_frees_worker_memory() {
        let ctx = OdinContext::with_workers(2);
        let a = ctx.zeros(&[10], DType::F64);
        let id = a.id();
        drop(a);
        ctx.barrier();
        // double-free should not happen; allocate a fresh array reusing
        // nothing and make sure the context still works.
        let b = ctx.ones(&[4], DType::F64);
        assert_ne!(b.id(), id);
        assert_eq!(b.to_vec(), vec![1.0; 4]);
    }
}
