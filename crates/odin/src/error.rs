//! Typed errors for the master↔worker control plane.
//!
//! The master's channels to a worker close when the worker thread exits —
//! killed by an injected fault ([`comm::FaultPlan::kill_rank`]), panicked
//! mid-command, or torn down by a peer's death. Every dispatch and
//! reply-wait path in [`crate::OdinContext`] detects that condition and
//! surfaces one of these errors instead of aborting or hanging, so a
//! supervisor can diagnose the failure and decide whether to fail fast or
//! recover from a checkpoint ([`crate::OdinContext::recover`]).

use std::time::Duration;

/// A control-plane failure observed by the ODIN master.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OdinError {
    /// A worker stopped answering: its command channel is closed (the
    /// thread exited) or no reply arrived within the reply timeout.
    WorkerDead {
        /// Rank of the dead worker.
        worker: usize,
        /// How long the master waited before declaring it dead.
        waited: Duration,
    },
    /// Every worker's reply sender is gone — the whole pool exited.
    PoolDown,
    /// An array's segments were on a respawned pool and no checkpoint
    /// covered it, so its data is unrecoverable.
    SegmentsLost {
        /// Ids of the unrecoverable arrays.
        arrays: Vec<u64>,
    },
    /// A kernel was applied to an array whose dtype it cannot accept
    /// (e.g. a `def f(a)` float-array kernel over an I64 array). Caught
    /// master-side before dispatch, so no worker panics.
    DtypeMismatch {
        /// Dtype the kernel's signature requires.
        expected: crate::DType,
        /// Dtype of the array it was applied to.
        found: crate::DType,
    },
}

impl std::fmt::Display for OdinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OdinError::WorkerDead { worker, waited } => write!(
                f,
                "worker {worker} is dead (no reply after {:.1} ms)",
                waited.as_secs_f64() * 1e3
            ),
            OdinError::PoolDown => write!(f, "worker pool is down (all reply channels closed)"),
            OdinError::SegmentsLost { arrays } => write!(
                f,
                "segments of {} array(s) lost in pool respawn (ids {arrays:?})",
                arrays.len()
            ),
            OdinError::DtypeMismatch { expected, found } => write!(
                f,
                "dtype mismatch: kernel expects a {expected:?} array, got {found:?} \
                 (cast with astype or compile a {found:?} monomorphization)"
            ),
        }
    }
}

impl std::error::Error for OdinError {}

/// What [`crate::OdinContext::recover`] did to bring the pool back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Workers in the freshly spawned pool.
    pub respawned: usize,
    /// Arrays restored from the checkpoint (segments replayed).
    pub restored: Vec<u64>,
    /// Live arrays *not* covered by the checkpoint: their segments died
    /// with the old pool and any further use is a diagnosable error.
    pub lost: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_diagnostics() {
        let e = OdinError::WorkerDead {
            worker: 3,
            waited: Duration::from_millis(250),
        };
        let s = e.to_string();
        assert!(s.contains("worker 3") && s.contains("250.0 ms"), "{s}");
        assert!(OdinError::PoolDown.to_string().contains("pool is down"));
        let l = OdinError::SegmentsLost { arrays: vec![7, 9] }.to_string();
        assert!(l.contains("2 array(s)") && l.contains("[7, 9]"), "{l}");
    }
}
