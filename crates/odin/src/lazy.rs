//! Lazy expressions and loop fusion (§III: "ODIN can optimize distributed
//! array expressions. These optimizations include: loop fusion, …").
//!
//! An [`Expr`] is built without touching the workers; [`Expr::eval`]
//! lowers it to Seamless bytecode, registers the kernel once on every
//! worker (structurally identical expressions reuse the registration),
//! and executes it in one unboxed pass over each worker's segment — no
//! intermediate arrays, and each invoke after the first is a
//! tens-of-bytes control message. [`Expr::eval_rpn`] runs the older
//! interpreted RPN plane instead (bitwise-identical results; the JIT
//! parity baseline), and [`Expr::eval_unfused`] materializes every node
//! (what eager evaluation does); experiments E6/E20 measure the
//! differences. [`Expr::sum`] / [`Expr::max`] / [`Expr::min`] fuse the
//! reduction into the same pass — map and fold without ever
//! materializing the mapped array.

use crate::array::DistArray;
use crate::buffer::DType;
use crate::protocol::{ArrayMeta, BinOp, Cmd, FusedOp, ReduceKind, UnaryOp};
use seamless::bytecode::{Cmp, CompiledFunc, Instr, Math2Fn, MathFn, Program, Reg, RegFile};
use seamless::Type;
use std::collections::HashMap;

/// A lazy elementwise expression over distributed arrays.
pub enum Expr<'x, 'c> {
    /// A distributed array operand.
    Leaf(&'x DistArray<'c>),
    /// A broadcast constant.
    Scalar(f64),
    /// Unary node.
    Unary(UnaryOp, Box<Expr<'x, 'c>>),
    /// Binary node.
    Binary(BinOp, Box<Expr<'x, 'c>>, Box<Expr<'x, 'c>>),
}

impl<'x, 'c> Expr<'x, 'c> {
    /// Wrap an array operand.
    pub fn leaf(a: &'x DistArray<'c>) -> Self {
        Expr::Leaf(a)
    }

    /// Wrap a constant.
    pub fn scalar(v: f64) -> Self {
        Expr::Scalar(v)
    }

    fn un(self, op: UnaryOp) -> Self {
        Expr::Unary(op, Box::new(self))
    }

    /// Square root node.
    pub fn sqrt(self) -> Self {
        self.un(UnaryOp::Sqrt)
    }
    /// Sine node.
    pub fn sin(self) -> Self {
        self.un(UnaryOp::Sin)
    }
    /// Cosine node.
    pub fn cos(self) -> Self {
        self.un(UnaryOp::Cos)
    }
    /// Exponential node.
    pub fn exp(self) -> Self {
        self.un(UnaryOp::Exp)
    }
    /// Absolute-value node.
    pub fn abs(self) -> Self {
        self.un(UnaryOp::Abs)
    }
    /// Tangent node.
    pub fn tan(self) -> Self {
        self.un(UnaryOp::Tan)
    }
    /// Natural-logarithm node.
    pub fn ln(self) -> Self {
        self.un(UnaryOp::Log)
    }
    /// Floor node.
    pub fn floor(self) -> Self {
        self.un(UnaryOp::Floor)
    }
    /// Ceiling node.
    pub fn ceil(self) -> Self {
        self.un(UnaryOp::Ceil)
    }
    /// Power with a scalar exponent.
    pub fn pow(self, e: f64) -> Self {
        Expr::Binary(BinOp::Pow, Box::new(self), Box::new(Expr::Scalar(e)))
    }

    fn first_leaf(&self) -> Option<&'x DistArray<'c>> {
        match self {
            Expr::Leaf(a) => Some(a),
            Expr::Scalar(_) => None,
            Expr::Unary(_, e) => e.first_leaf(),
            Expr::Binary(_, a, b) => a.first_leaf().or_else(|| b.first_leaf()),
        }
    }

    fn collect_leaves(&self, out: &mut Vec<&'x DistArray<'c>>) {
        match self {
            Expr::Leaf(a) => out.push(a),
            Expr::Scalar(_) => {}
            Expr::Unary(_, e) => e.collect_leaves(out),
            Expr::Binary(_, a, b) => {
                a.collect_leaves(out);
                b.collect_leaves(out);
            }
        }
    }

    /// Number of operation nodes (for reporting).
    pub fn n_ops(&self) -> usize {
        match self {
            Expr::Leaf(_) | Expr::Scalar(_) => 0,
            Expr::Unary(_, e) => 1 + e.n_ops(),
            Expr::Binary(_, a, b) => 1 + a.n_ops() + b.n_ops(),
        }
    }

    fn compile(&self, aligned: &std::collections::HashMap<u64, u64>, program: &mut Vec<FusedOp>) {
        match self {
            Expr::Leaf(a) => {
                let id = aligned.get(&a.id()).copied().unwrap_or_else(|| a.id());
                program.push(FusedOp::PushArray(id));
            }
            Expr::Scalar(v) => program.push(FusedOp::PushScalar(*v)),
            Expr::Unary(op, e) => {
                e.compile(aligned, program);
                program.push(FusedOp::Unary(*op));
            }
            Expr::Binary(op, a, b) => {
                a.compile(aligned, program);
                b.compile(aligned, program);
                program.push(FusedOp::Binary(*op));
            }
        }
    }

    /// Align non-conformable leaves against the template's distribution
    /// (kept alive until the kernel command has been issued — commands
    /// are processed in order, so issuing Free afterwards is safe).
    fn align(&self, t_meta: &ArrayMeta) -> (HashMap<u64, u64>, Vec<DistArray<'c>>) {
        let mut leaves = Vec::new();
        self.collect_leaves(&mut leaves);
        let mut aligned = HashMap::new();
        let mut temps: Vec<DistArray<'c>> = Vec::new();
        for leaf in &leaves {
            let m = leaf.meta();
            assert_eq!(m.shape, t_meta.shape, "fused operands must share a shape");
            if !m.conformable(t_meta) && !aligned.contains_key(&leaf.id()) {
                let moved = leaf.redistribute(t_meta.dist);
                aligned.insert(leaf.id(), moved.id());
                temps.push(moved);
            }
        }
        (aligned, temps)
    }

    /// Lower to a single straight-line Seamless bytecode function over
    /// f64 scalar parameters, one per distinct (aligned) leaf array.
    /// Returns the program and the ordered input array ids that bind to
    /// its parameters.
    fn lower(&self, aligned: &HashMap<u64, u64>) -> (Program, Vec<u64>) {
        let mut leaves = Vec::new();
        self.collect_leaves(&mut leaves);
        let mut inputs: Vec<u64> = Vec::new();
        let mut params: HashMap<u64, Reg> = HashMap::new();
        for leaf in &leaves {
            let id = aligned
                .get(&leaf.id())
                .copied()
                .unwrap_or_else(|| leaf.id());
            if let std::collections::hash_map::Entry::Vacant(e) = params.entry(id) {
                e.insert(inputs.len() as Reg);
                inputs.push(id);
            }
        }
        let n = inputs.len();
        let mut lw = Lowerer::with_params(params, n);
        let ret = lw.go(self, aligned);
        lw.instrs.push(Instr::Ret(Some((RegFile::F, ret))));
        let f = CompiledFunc {
            name: "expr".into(),
            params: (0..n).map(|k| (RegFile::F, k as Reg)).collect(),
            param_types: vec![Type::Float; n],
            ret: Type::Float,
            reg_counts: [lw.n_f as usize, lw.n_i as usize, 0, 0],
            instrs: lw.instrs,
        };
        (
            Program {
                funcs: vec![f],
                externs: Vec::new(),
            },
            inputs,
        )
    }

    /// Evaluate through the JIT kernel plane: lower once to Seamless
    /// bytecode, register it on every worker (cached — a structurally
    /// identical expression reuses the registration), then run one
    /// unboxed fused pass per worker segment. One small control message
    /// per invoke, no temporaries, bitwise-identical to
    /// [`Expr::eval_rpn`].
    pub fn eval(&self) -> DistArray<'c> {
        let template = self
            .first_leaf()
            .expect("expression needs at least one array operand");
        let ctx = template.ctx();
        let t_meta = template.meta();
        let (aligned, temps) = self.align(&t_meta);
        let (program, inputs) = self.lower(&aligned);
        let kernel = ctx.register_kernel_program(program);
        let out = ctx.alloc_id();
        // dtype: mirror the worker-side inference conservatively as f64
        // unless the program is all-integer (master keeps it simple and
        // trusts the worker, recording f64 for mixed programs).
        let out_dtype = self.infer_dtype();
        ctx.send_cmd(&Cmd::EvalKernel {
            out,
            kernel,
            template: template.id(),
            inputs,
            out_dtype,
            reduce: None,
            // Lowered expressions compute in f64 regardless of out_dtype;
            // workers may tier up to the probed native body when one is
            // available (first worker to arrive compiles, the rest hit
            // the process-global cache).
            dtype: DType::F64,
            native: true,
        });
        let out_meta = ArrayMeta {
            dtype: out_dtype,
            ..t_meta
        };
        ctx.record_meta(out, out_meta);
        drop(temps);
        DistArray::from_id(ctx, out)
    }

    /// Evaluate on the interpreted RPN plane (the pre-JIT fused path):
    /// one control message carrying the whole program, one chunked
    /// interpreted pass. Kept as the bitwise parity baseline for the
    /// kernel plane (experiment E20) and for contexts that want to avoid
    /// kernel registration entirely.
    pub fn eval_rpn(&self) -> DistArray<'c> {
        let template = self
            .first_leaf()
            .expect("expression needs at least one array operand");
        let ctx = template.ctx();
        let t_meta = template.meta();
        let (aligned, temps) = self.align(&t_meta);
        let mut program = Vec::new();
        self.compile(&aligned, &mut program);
        let out = ctx.alloc_id();
        let out_dtype = self.infer_dtype();
        ctx.send_cmd(&Cmd::EvalFused {
            out,
            template: template.id(),
            program,
        });
        let out_meta = ArrayMeta {
            dtype: out_dtype,
            ..t_meta
        };
        ctx.record_meta(out, out_meta);
        drop(temps);
        DistArray::from_id(ctx, out)
    }

    /// Fused map+reduce: evaluate the expression and fold it to a scalar
    /// in the same pass over each segment — the mapped array is never
    /// materialized. Bitwise-identical to `self.eval()` followed by the
    /// matching array reduction.
    pub fn reduce(&self, kind: ReduceKind) -> f64 {
        let template = self
            .first_leaf()
            .expect("expression needs at least one array operand");
        let ctx = template.ctx();
        let t_meta = template.meta();
        let (aligned, temps) = self.align(&t_meta);
        let (program, inputs) = self.lower(&aligned);
        let kernel = ctx.register_kernel_program(program);
        let pending = ctx.dispatch_single::<f64>(&Cmd::EvalKernel {
            out: 0,
            kernel,
            template: template.id(),
            inputs,
            out_dtype: DType::F64,
            reduce: Some(kind),
            dtype: DType::F64,
            native: true,
        });
        let v = pending.wait();
        drop(temps);
        v
    }

    /// Sum of the evaluated expression, fused into the map pass.
    pub fn sum(&self) -> f64 {
        self.reduce(ReduceKind::Sum)
    }

    /// Maximum of the evaluated expression, fused into the map pass.
    pub fn max(&self) -> f64 {
        self.reduce(ReduceKind::Max)
    }

    /// Minimum of the evaluated expression, fused into the map pass.
    pub fn min(&self) -> f64 {
        self.reduce(ReduceKind::Min)
    }

    fn infer_dtype(&self) -> DType {
        match self {
            Expr::Leaf(a) => a.dtype(),
            Expr::Scalar(v) => {
                if v.fract() == 0.0 {
                    DType::I64
                } else {
                    DType::F64
                }
            }
            Expr::Unary(op, e) => crate::buffer::unary_result_dtype(*op, e.infer_dtype()),
            Expr::Binary(op, a, b) => {
                crate::buffer::binary_result_dtype(*op, a.infer_dtype(), b.infer_dtype())
            }
        }
    }

    /// Evaluate eagerly, materializing every intermediate node — the
    /// fusion-OFF baseline for experiment E6.
    pub fn eval_unfused(&self) -> DistArray<'c> {
        match self.eval_node() {
            NodeVal::Arr(a) => a,
            NodeVal::Borrowed(a) => {
                // force a copy so the caller owns the result
                a.astype(a.dtype())
            }
            NodeVal::Scalar(_) => panic!("expression needs at least one array operand"),
        }
    }

    fn eval_node(&self) -> NodeVal<'x, 'c> {
        match self {
            Expr::Leaf(a) => NodeVal::Borrowed(a),
            Expr::Scalar(v) => NodeVal::Scalar(*v),
            Expr::Unary(op, e) => match e.eval_node() {
                NodeVal::Scalar(v) => NodeVal::Scalar(scalar_unary(*op, v)),
                NodeVal::Borrowed(a) => NodeVal::Arr(unary_of(a, *op)),
                NodeVal::Arr(a) => NodeVal::Arr(unary_of(&a, *op)),
            },
            Expr::Binary(op, l, r) => {
                let lv = l.eval_node();
                let rv = r.eval_node();
                match (lv, rv) {
                    (NodeVal::Scalar(a), NodeVal::Scalar(b)) => {
                        NodeVal::Scalar(crate::buffer::binop_f64(*op, a, b))
                    }
                    (NodeVal::Scalar(s), rv) => {
                        NodeVal::Arr(rv.as_ref().binary_scalar(s, *op, true))
                    }
                    (lv, NodeVal::Scalar(s)) => {
                        NodeVal::Arr(lv.as_ref().binary_scalar(s, *op, false))
                    }
                    (lv, rv) => NodeVal::Arr(lv.as_ref().binary(rv.as_ref(), *op)),
                }
            }
        }
    }
}

/// Expression → Seamless bytecode lowering state.
///
/// Produces straight-line code over the F/I register files. Every opcode
/// choice mirrors the interpreted RPN plane's arithmetic exactly
/// (`fused_unary_chunk` / `fused_binary_chunk` in `context.rs`) so the
/// two planes stay bitwise-identical: comparisons and logic ops produce
/// 0.0/1.0 through integer compares, `Mod` uses Rust `%` ([`Instr::RemF`],
/// not the VM's Python-modulo `ModF`), and `x ** c` for small integral
/// constants strength-reduces to [`Instr::PowIC`] just like the RPN
/// interpreter does at runtime.
pub(crate) struct Lowerer {
    /// Aligned leaf array id → F parameter register.
    pub(crate) params: HashMap<u64, Reg>,
    pub(crate) instrs: Vec<Instr>,
    pub(crate) n_f: Reg,
    pub(crate) n_i: Reg,
}

/// `x ** c` strength-reduction eligibility, shared by every lowering
/// plane (RPN chunks, single-expression JIT, whole-program JIT): small
/// integral exponents run as [`Instr::PowIC`].
pub(crate) fn powic_exponent(c: f64) -> Option<i32> {
    if c.fract() == 0.0 && c.abs() <= 8.0 {
        Some(c as i32)
    } else {
        None
    }
}

impl Lowerer {
    /// Fresh lowering state with the first `n_params` F registers bound
    /// to parameters (the caller owns the id → register map).
    pub(crate) fn with_params(params: HashMap<u64, Reg>, n_params: usize) -> Self {
        Lowerer {
            params,
            instrs: Vec::new(),
            n_f: n_params as Reg,
            n_i: 0,
        }
    }

    fn fresh_f(&mut self) -> Reg {
        let r = self.n_f;
        self.n_f += 1;
        r
    }

    fn fresh_i(&mut self) -> Reg {
        let r = self.n_i;
        self.n_i += 1;
        r
    }

    /// Emit `dst = 0.0` and return the register (straight-line code, so a
    /// fresh constant per use keeps the lowering simple).
    fn zero_f(&mut self) -> Reg {
        let z = self.fresh_f();
        self.instrs.push(Instr::ConstF(z, 0.0));
        z
    }

    /// Emit `dst = f64::from(i_src != 0 … as produced by a compare)`.
    fn bool_to_f(&mut self, i_src: Reg) -> Reg {
        let d = self.fresh_f();
        self.instrs.push(Instr::IToF(d, i_src));
        d
    }

    /// Emit a broadcast constant; returns its F register.
    pub(crate) fn emit_const(&mut self, v: f64) -> Reg {
        let d = self.fresh_f();
        self.instrs.push(Instr::ConstF(d, v));
        d
    }

    /// Emit one unary op over `s`; returns the result's F register.
    pub(crate) fn emit_unary(&mut self, op: UnaryOp, s: Reg) -> Reg {
        use UnaryOp::*;
        let m1 = |f: MathFn, lw: &mut Self| {
            let d = lw.fresh_f();
            lw.instrs.push(Instr::Math1(f, d, s));
            d
        };
        match op {
            Neg => {
                let d = self.fresh_f();
                self.instrs.push(Instr::NegF(d, s));
                d
            }
            Abs => m1(MathFn::Abs, self),
            Sin => m1(MathFn::Sin, self),
            Cos => m1(MathFn::Cos, self),
            Tan => m1(MathFn::Tan, self),
            Exp => m1(MathFn::Exp, self),
            Log => m1(MathFn::Log, self),
            Sqrt => m1(MathFn::Sqrt, self),
            Floor => m1(MathFn::Floor, self),
            Ceil => m1(MathFn::Ceil, self),
            Not => {
                // f64::from(x == 0.0), like the RPN interpreter
                let z = self.zero_f();
                let i = self.fresh_i();
                self.instrs.push(Instr::CmpF(Cmp::Eq, i, s, z));
                self.bool_to_f(i)
            }
        }
    }

    /// Emit `a ** c` strength-reduced to [`Instr::PowIC`]; the caller
    /// must have checked [`powic_exponent`].
    pub(crate) fn emit_pow_const(&mut self, a: Reg, e: i32) -> Reg {
        let d = self.fresh_f();
        self.instrs.push(Instr::PowIC(d, a, e));
        d
    }

    /// Emit one binary op over `a`, `b`; returns the result's F register.
    pub(crate) fn emit_binary(&mut self, op: BinOp, a: Reg, b: Reg) -> Reg {
        use BinOp::*;
        let bin = |mk: fn(Reg, Reg, Reg) -> Instr, lw: &mut Self| {
            let d = lw.fresh_f();
            lw.instrs.push(mk(d, a, b));
            d
        };
        let cmp = |c: Cmp, lw: &mut Self| {
            let i = lw.fresh_i();
            lw.instrs.push(Instr::CmpF(c, i, a, b));
            lw.bool_to_f(i)
        };
        match op {
            Add => bin(Instr::AddF, self),
            Sub => bin(Instr::SubF, self),
            Mul => bin(Instr::MulF, self),
            Div => bin(Instr::DivF, self),
            Pow => bin(Instr::PowF, self),
            Mod => bin(Instr::RemF, self),
            Max => bin(Instr::MaxF, self),
            Min => bin(Instr::MinF, self),
            Hypot => bin(|d, a, b| Instr::Math2(Math2Fn::Hypot, d, a, b), self),
            Atan2 => bin(|d, a, b| Instr::Math2(Math2Fn::Atan2, d, a, b), self),
            Eq => cmp(Cmp::Eq, self),
            Ne => cmp(Cmp::Ne, self),
            Lt => cmp(Cmp::Lt, self),
            Le => cmp(Cmp::Le, self),
            Gt => cmp(Cmp::Gt, self),
            Ge => cmp(Cmp::Ge, self),
            And | Or => {
                // f64::from(x != 0.0 <op> y != 0.0)
                let z = self.zero_f();
                let ia = self.fresh_i();
                self.instrs.push(Instr::CmpF(Cmp::Ne, ia, a, z));
                let ib = self.fresh_i();
                self.instrs.push(Instr::CmpF(Cmp::Ne, ib, b, z));
                let id = self.fresh_i();
                self.instrs.push(if matches!(op, And) {
                    Instr::AndI(id, ia, ib)
                } else {
                    Instr::OrI(id, ia, ib)
                });
                self.bool_to_f(id)
            }
        }
    }

    /// Emit the value a consumer would observe if the register were
    /// materialized as an array of `dtype` and then staged back as f64
    /// for the next kernel — the whole-program plane uses this to fuse
    /// *across* a statement whose dtype is not F64 while staying bitwise
    /// identical to the materialize-then-stage route: `astype(I64)` is
    /// `v as i64` and staging is `as f64` (FToI + IToF); `astype(Bool)`
    /// stores `v != 0.0` and stages as 0.0/1.0 (CmpF-Ne + IToF).
    pub(crate) fn emit_materialize_cast(&mut self, s: Reg, dtype: DType) -> Reg {
        match dtype {
            DType::F64 => s,
            DType::I64 => {
                let i = self.fresh_i();
                self.instrs.push(Instr::FToI(i, s));
                self.bool_to_f(i)
            }
            DType::Bool => {
                let z = self.zero_f();
                let i = self.fresh_i();
                self.instrs.push(Instr::CmpF(Cmp::Ne, i, s, z));
                self.bool_to_f(i)
            }
        }
    }

    /// Lower one node; returns the F register holding its value.
    fn go(&mut self, e: &Expr<'_, '_>, aligned: &HashMap<u64, u64>) -> Reg {
        match e {
            Expr::Leaf(a) => {
                let id = aligned.get(&a.id()).copied().unwrap_or_else(|| a.id());
                self.params[&id]
            }
            Expr::Scalar(v) => self.emit_const(*v),
            Expr::Unary(op, e) => {
                let s = self.go(e, aligned);
                self.emit_unary(*op, s)
            }
            Expr::Binary(op, l, r) => {
                // `x ** c` with a small integral constant exponent:
                // strength-reduce to powi without materializing the rhs,
                // exactly as the RPN plane does for uniform chunks.
                if let (BinOp::Pow, Expr::Scalar(c)) = (op, r.as_ref()) {
                    if let Some(e) = powic_exponent(*c) {
                        let a = self.go(l, aligned);
                        return self.emit_pow_const(a, e);
                    }
                }
                let a = self.go(l, aligned);
                let b = self.go(r, aligned);
                self.emit_binary(*op, a, b)
            }
        }
    }
}

enum NodeVal<'x, 'c> {
    Borrowed(&'x DistArray<'c>),
    Arr(DistArray<'c>),
    Scalar(f64),
}

impl<'x, 'c> NodeVal<'x, 'c> {
    fn as_ref(&self) -> &DistArray<'c> {
        match self {
            NodeVal::Borrowed(a) => a,
            NodeVal::Arr(a) => a,
            NodeVal::Scalar(_) => panic!("scalar where array expected"),
        }
    }
}

fn unary_of<'c>(a: &DistArray<'c>, op: UnaryOp) -> DistArray<'c> {
    use UnaryOp::*;
    match op {
        Neg => -a,
        Abs => a.abs(),
        Not => a.logical_not(),
        Sin => a.sin(),
        Cos => a.cos(),
        Tan => a.tan(),
        Exp => a.exp(),
        Log => a.ln(),
        Sqrt => a.sqrt(),
        Floor => a.floor(),
        Ceil => a.ceil(),
    }
}

fn scalar_unary(op: UnaryOp, v: f64) -> f64 {
    use UnaryOp::*;
    match op {
        Neg => -v,
        Abs => v.abs(),
        Not => f64::from(u8::from(v == 0.0)),
        Sin => v.sin(),
        Cos => v.cos(),
        Tan => v.tan(),
        Exp => v.exp(),
        Log => v.ln(),
        Sqrt => v.sqrt(),
        Floor => v.floor(),
        Ceil => v.ceil(),
    }
}

macro_rules! expr_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<'x, 'c> std::ops::$trait for Expr<'x, 'c> {
            type Output = Expr<'x, 'c>;
            fn $method(self, rhs: Expr<'x, 'c>) -> Expr<'x, 'c> {
                Expr::Binary($op, Box::new(self), Box::new(rhs))
            }
        }
        impl<'x, 'c> std::ops::$trait<f64> for Expr<'x, 'c> {
            type Output = Expr<'x, 'c>;
            fn $method(self, rhs: f64) -> Expr<'x, 'c> {
                Expr::Binary($op, Box::new(self), Box::new(Expr::Scalar(rhs)))
            }
        }
    };
}

expr_binop!(Add, add, BinOp::Add);
expr_binop!(Sub, sub, BinOp::Sub);
expr_binop!(Mul, mul, BinOp::Mul);
expr_binop!(Div, div, BinOp::Div);
expr_binop!(Rem, rem, BinOp::Mod);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OdinContext;
    use crate::protocol::Dist;

    #[test]
    fn fused_matches_unfused_and_serial() {
        let ctx = OdinContext::with_workers(3);
        let x = ctx.linspace(0.0, 2.0, 21);
        let y = ctx.linspace(1.0, 3.0, 21);
        // sqrt(x² + y²) — the paper's hypot
        let make = || (Expr::leaf(&x).pow(2.0) + Expr::leaf(&y).pow(2.0)).sqrt();
        let fused = make().eval();
        let unfused = make().eval_unfused();
        let xs = x.to_vec();
        let ys = y.to_vec();
        let expect: Vec<f64> = xs.iter().zip(&ys).map(|(a, b)| a.hypot(*b)).collect();
        let f = fused.to_vec();
        let u = unfused.to_vec();
        for i in 0..expect.len() {
            assert!((f[i] - expect[i]).abs() < 1e-12);
            assert!((u[i] - expect[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn fusion_sends_one_command_for_many_ops() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.linspace(0.0, 1.0, 50);
        ctx.reset_stats();
        let e = Expr::leaf(&x).pow(2.0) * 3.0 + Expr::leaf(&x) * 2.0 + 1.0;
        assert_eq!(e.n_ops(), 5);
        let _r = e.eval();
        let fused_msgs = ctx.stats().ctrl_msgs;
        ctx.reset_stats();
        let e2 = Expr::leaf(&x).pow(2.0) * 3.0 + Expr::leaf(&x) * 2.0 + 1.0;
        let _r2 = e2.eval_unfused();
        let unfused_msgs = ctx.stats().ctrl_msgs;
        assert!(
            fused_msgs < unfused_msgs,
            "fused {fused_msgs} vs unfused {unfused_msgs}"
        );
    }

    #[test]
    fn fused_aligns_non_conformable_leaves() {
        let ctx = OdinContext::with_workers(3);
        let x = ctx.arange_f64(0.0, 1.0, 12, Dist::Block);
        let y = ctx.arange_f64(0.0, 1.0, 12, Dist::Cyclic);
        let r = (Expr::leaf(&x) + Expr::leaf(&y)).eval();
        let expect: Vec<f64> = (0..12).map(|g| 2.0 * g as f64).collect();
        assert_eq!(r.to_vec(), expect);
    }

    #[test]
    fn integer_programs_stay_integer() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.arange(6);
        let r = (Expr::leaf(&x) * 2.0 + 1.0).eval();
        assert_eq!(r.dtype(), crate::buffer::DType::I64);
        assert_eq!(r.to_vec_i64(), vec![1, 3, 5, 7, 9, 11]);
    }

    #[test]
    fn jitted_matches_interpreted_rpn_bitwise() {
        let ctx = OdinContext::with_workers(3);
        let x = ctx.linspace(0.0, 2.0, 103);
        let y = ctx.linspace(1.0, 3.0, 103);
        let make = || {
            (Expr::leaf(&x).pow(2.0) + Expr::leaf(&y).pow(2.0))
                .sqrt()
                .sin()
                * (Expr::leaf(&x) * 0.5).exp()
                + (Expr::leaf(&y) % 0.7)
        };
        let jit = make().eval().to_vec();
        let rpn = make().eval_rpn().to_vec();
        for i in 0..jit.len() {
            assert_eq!(jit[i].to_bits(), rpn[i].to_bits(), "lane {i}");
        }
    }

    #[test]
    fn structurally_identical_exprs_register_one_kernel() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.linspace(0.0, 1.0, 40);
        let a = (Expr::leaf(&x) * 2.0 + 1.0).eval();
        ctx.reset_stats();
        let b = (Expr::leaf(&x) * 2.0 + 1.0).eval();
        // second eval reuses the registered kernel: one EvalKernel
        // broadcast only, well under 100 bytes
        let s = ctx.stats();
        assert_eq!(s.ctrl_msgs, 2);
        assert!(s.ctrl_bytes / s.ctrl_msgs < 100);
        drop(b);
        assert_eq!(
            a.to_vec(),
            x.to_vec().iter().map(|v| v * 2.0 + 1.0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fused_reduction_matches_two_pass_bitwise() {
        let ctx = OdinContext::with_workers(3);
        let x = ctx.linspace(0.0, 3.0, 101);
        let fused = (Expr::leaf(&x).sin() * Expr::leaf(&x)).sum();
        let two_pass = (Expr::leaf(&x).sin() * Expr::leaf(&x)).eval().sum();
        assert_eq!(fused.to_bits(), two_pass.to_bits());
        let fmax = (Expr::leaf(&x).cos()).max();
        let tmax = (Expr::leaf(&x).cos()).eval().max();
        assert_eq!(fmax.to_bits(), tmax.to_bits());
        let fmin = (Expr::leaf(&x).cos()).min();
        let tmin = (Expr::leaf(&x).cos()).eval().min();
        assert_eq!(fmin.to_bits(), tmin.to_bits());
    }

    #[test]
    fn scalar_folding_in_unfused_path() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.linspace(0.0, 1.0, 5);
        // (2 + 3) * x → constant folded on the master in the eager path
        let e = (Expr::scalar(2.0) + Expr::scalar(3.0)) * Expr::leaf(&x);
        let r = e.eval_unfused();
        assert_eq!(r.to_vec(), vec![0.0, 1.25, 2.5, 3.75, 5.0]);
    }
}
