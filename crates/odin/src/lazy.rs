//! Lazy expressions and loop fusion (§III: "ODIN can optimize distributed
//! array expressions. These optimizations include: loop fusion, …").
//!
//! An [`Expr`] is built without touching the workers; [`Expr::eval`]
//! compiles it to a single fused RPN program executed in one pass over
//! each worker's segment — no intermediate arrays, one control message.
//! [`Expr::eval_unfused`] materializes every node instead (what eager
//! evaluation does); experiment E6 measures the difference.

use crate::array::DistArray;
use crate::buffer::DType;
use crate::protocol::{ArrayMeta, BinOp, Cmd, FusedOp, UnaryOp};

/// A lazy elementwise expression over distributed arrays.
pub enum Expr<'x, 'c> {
    /// A distributed array operand.
    Leaf(&'x DistArray<'c>),
    /// A broadcast constant.
    Scalar(f64),
    /// Unary node.
    Unary(UnaryOp, Box<Expr<'x, 'c>>),
    /// Binary node.
    Binary(BinOp, Box<Expr<'x, 'c>>, Box<Expr<'x, 'c>>),
}

impl<'x, 'c> Expr<'x, 'c> {
    /// Wrap an array operand.
    pub fn leaf(a: &'x DistArray<'c>) -> Self {
        Expr::Leaf(a)
    }

    /// Wrap a constant.
    pub fn scalar(v: f64) -> Self {
        Expr::Scalar(v)
    }

    fn un(self, op: UnaryOp) -> Self {
        Expr::Unary(op, Box::new(self))
    }

    /// Square root node.
    pub fn sqrt(self) -> Self {
        self.un(UnaryOp::Sqrt)
    }
    /// Sine node.
    pub fn sin(self) -> Self {
        self.un(UnaryOp::Sin)
    }
    /// Cosine node.
    pub fn cos(self) -> Self {
        self.un(UnaryOp::Cos)
    }
    /// Exponential node.
    pub fn exp(self) -> Self {
        self.un(UnaryOp::Exp)
    }
    /// Absolute-value node.
    pub fn abs(self) -> Self {
        self.un(UnaryOp::Abs)
    }
    /// Power with a scalar exponent.
    pub fn pow(self, e: f64) -> Self {
        Expr::Binary(BinOp::Pow, Box::new(self), Box::new(Expr::Scalar(e)))
    }

    fn first_leaf(&self) -> Option<&'x DistArray<'c>> {
        match self {
            Expr::Leaf(a) => Some(a),
            Expr::Scalar(_) => None,
            Expr::Unary(_, e) => e.first_leaf(),
            Expr::Binary(_, a, b) => a.first_leaf().or_else(|| b.first_leaf()),
        }
    }

    fn collect_leaves(&self, out: &mut Vec<&'x DistArray<'c>>) {
        match self {
            Expr::Leaf(a) => out.push(a),
            Expr::Scalar(_) => {}
            Expr::Unary(_, e) => e.collect_leaves(out),
            Expr::Binary(_, a, b) => {
                a.collect_leaves(out);
                b.collect_leaves(out);
            }
        }
    }

    /// Number of operation nodes (for reporting).
    pub fn n_ops(&self) -> usize {
        match self {
            Expr::Leaf(_) | Expr::Scalar(_) => 0,
            Expr::Unary(_, e) => 1 + e.n_ops(),
            Expr::Binary(_, a, b) => 1 + a.n_ops() + b.n_ops(),
        }
    }

    fn compile(&self, aligned: &std::collections::HashMap<u64, u64>, program: &mut Vec<FusedOp>) {
        match self {
            Expr::Leaf(a) => {
                let id = aligned.get(&a.id()).copied().unwrap_or_else(|| a.id());
                program.push(FusedOp::PushArray(id));
            }
            Expr::Scalar(v) => program.push(FusedOp::PushScalar(*v)),
            Expr::Unary(op, e) => {
                e.compile(aligned, program);
                program.push(FusedOp::Unary(*op));
            }
            Expr::Binary(op, a, b) => {
                a.compile(aligned, program);
                b.compile(aligned, program);
                program.push(FusedOp::Binary(*op));
            }
        }
    }

    /// Evaluate with loop fusion: one control message, one pass, no
    /// temporaries.
    pub fn eval(&self) -> DistArray<'c> {
        let template = self
            .first_leaf()
            .expect("expression needs at least one array operand");
        let ctx = template.ctx();
        let t_meta = template.meta();
        let mut leaves = Vec::new();
        self.collect_leaves(&mut leaves);
        // Align non-conformable leaves first (kept alive until the fused
        // command has been issued — commands are processed in order, so
        // issuing Free afterwards is safe).
        let mut aligned = std::collections::HashMap::new();
        let mut temps: Vec<DistArray<'c>> = Vec::new();
        for leaf in &leaves {
            let m = leaf.meta();
            assert_eq!(m.shape, t_meta.shape, "fused operands must share a shape");
            if !m.conformable(&t_meta) && !aligned.contains_key(&leaf.id()) {
                let moved = leaf.redistribute(t_meta.dist);
                aligned.insert(leaf.id(), moved.id());
                temps.push(moved);
            }
        }
        let mut program = Vec::new();
        self.compile(&aligned, &mut program);
        let out = ctx.alloc_id();
        // dtype: mirror the worker-side inference conservatively as f64
        // unless the program is all-integer (master keeps it simple and
        // trusts the worker, recording f64 for mixed programs).
        let out_dtype = self.infer_dtype();
        ctx.send_cmd(&Cmd::EvalFused {
            out,
            template: template.id(),
            program,
        });
        let out_meta = ArrayMeta {
            dtype: out_dtype,
            ..t_meta
        };
        ctx.record_meta(out, out_meta);
        drop(temps);
        DistArray::from_id(ctx, out)
    }

    fn infer_dtype(&self) -> DType {
        match self {
            Expr::Leaf(a) => a.dtype(),
            Expr::Scalar(v) => {
                if v.fract() == 0.0 {
                    DType::I64
                } else {
                    DType::F64
                }
            }
            Expr::Unary(op, e) => crate::buffer::unary_result_dtype(*op, e.infer_dtype()),
            Expr::Binary(op, a, b) => {
                crate::buffer::binary_result_dtype(*op, a.infer_dtype(), b.infer_dtype())
            }
        }
    }

    /// Evaluate eagerly, materializing every intermediate node — the
    /// fusion-OFF baseline for experiment E6.
    pub fn eval_unfused(&self) -> DistArray<'c> {
        match self.eval_node() {
            NodeVal::Arr(a) => a,
            NodeVal::Borrowed(a) => {
                // force a copy so the caller owns the result
                a.astype(a.dtype())
            }
            NodeVal::Scalar(_) => panic!("expression needs at least one array operand"),
        }
    }

    fn eval_node(&self) -> NodeVal<'x, 'c> {
        match self {
            Expr::Leaf(a) => NodeVal::Borrowed(a),
            Expr::Scalar(v) => NodeVal::Scalar(*v),
            Expr::Unary(op, e) => match e.eval_node() {
                NodeVal::Scalar(v) => NodeVal::Scalar(scalar_unary(*op, v)),
                NodeVal::Borrowed(a) => NodeVal::Arr(unary_of(a, *op)),
                NodeVal::Arr(a) => NodeVal::Arr(unary_of(&a, *op)),
            },
            Expr::Binary(op, l, r) => {
                let lv = l.eval_node();
                let rv = r.eval_node();
                match (lv, rv) {
                    (NodeVal::Scalar(a), NodeVal::Scalar(b)) => {
                        NodeVal::Scalar(crate::buffer::binop_f64(*op, a, b))
                    }
                    (NodeVal::Scalar(s), rv) => {
                        NodeVal::Arr(rv.as_ref().binary_scalar(s, *op, true))
                    }
                    (lv, NodeVal::Scalar(s)) => {
                        NodeVal::Arr(lv.as_ref().binary_scalar(s, *op, false))
                    }
                    (lv, rv) => NodeVal::Arr(lv.as_ref().binary(rv.as_ref(), *op)),
                }
            }
        }
    }
}

enum NodeVal<'x, 'c> {
    Borrowed(&'x DistArray<'c>),
    Arr(DistArray<'c>),
    Scalar(f64),
}

impl<'x, 'c> NodeVal<'x, 'c> {
    fn as_ref(&self) -> &DistArray<'c> {
        match self {
            NodeVal::Borrowed(a) => a,
            NodeVal::Arr(a) => a,
            NodeVal::Scalar(_) => panic!("scalar where array expected"),
        }
    }
}

fn unary_of<'c>(a: &DistArray<'c>, op: UnaryOp) -> DistArray<'c> {
    use UnaryOp::*;
    match op {
        Neg => -a,
        Abs => a.abs(),
        Not => a.logical_not(),
        Sin => a.sin(),
        Cos => a.cos(),
        Tan => a.tan(),
        Exp => a.exp(),
        Log => a.ln(),
        Sqrt => a.sqrt(),
        Floor => a.floor(),
        Ceil => a.ceil(),
    }
}

fn scalar_unary(op: UnaryOp, v: f64) -> f64 {
    use UnaryOp::*;
    match op {
        Neg => -v,
        Abs => v.abs(),
        Not => f64::from(u8::from(v == 0.0)),
        Sin => v.sin(),
        Cos => v.cos(),
        Tan => v.tan(),
        Exp => v.exp(),
        Log => v.ln(),
        Sqrt => v.sqrt(),
        Floor => v.floor(),
        Ceil => v.ceil(),
    }
}

macro_rules! expr_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<'x, 'c> std::ops::$trait for Expr<'x, 'c> {
            type Output = Expr<'x, 'c>;
            fn $method(self, rhs: Expr<'x, 'c>) -> Expr<'x, 'c> {
                Expr::Binary($op, Box::new(self), Box::new(rhs))
            }
        }
        impl<'x, 'c> std::ops::$trait<f64> for Expr<'x, 'c> {
            type Output = Expr<'x, 'c>;
            fn $method(self, rhs: f64) -> Expr<'x, 'c> {
                Expr::Binary($op, Box::new(self), Box::new(Expr::Scalar(rhs)))
            }
        }
    };
}

expr_binop!(Add, add, BinOp::Add);
expr_binop!(Sub, sub, BinOp::Sub);
expr_binop!(Mul, mul, BinOp::Mul);
expr_binop!(Div, div, BinOp::Div);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OdinContext;
    use crate::protocol::Dist;

    #[test]
    fn fused_matches_unfused_and_serial() {
        let ctx = OdinContext::with_workers(3);
        let x = ctx.linspace(0.0, 2.0, 21);
        let y = ctx.linspace(1.0, 3.0, 21);
        // sqrt(x² + y²) — the paper's hypot
        let make = || (Expr::leaf(&x).pow(2.0) + Expr::leaf(&y).pow(2.0)).sqrt();
        let fused = make().eval();
        let unfused = make().eval_unfused();
        let xs = x.to_vec();
        let ys = y.to_vec();
        let expect: Vec<f64> = xs.iter().zip(&ys).map(|(a, b)| a.hypot(*b)).collect();
        let f = fused.to_vec();
        let u = unfused.to_vec();
        for i in 0..expect.len() {
            assert!((f[i] - expect[i]).abs() < 1e-12);
            assert!((u[i] - expect[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn fusion_sends_one_command_for_many_ops() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.linspace(0.0, 1.0, 50);
        ctx.reset_stats();
        let e = Expr::leaf(&x).pow(2.0) * 3.0 + Expr::leaf(&x) * 2.0 + 1.0;
        assert_eq!(e.n_ops(), 5);
        let _r = e.eval();
        let fused_msgs = ctx.stats().ctrl_msgs;
        ctx.reset_stats();
        let e2 = Expr::leaf(&x).pow(2.0) * 3.0 + Expr::leaf(&x) * 2.0 + 1.0;
        let _r2 = e2.eval_unfused();
        let unfused_msgs = ctx.stats().ctrl_msgs;
        assert!(
            fused_msgs < unfused_msgs,
            "fused {fused_msgs} vs unfused {unfused_msgs}"
        );
    }

    #[test]
    fn fused_aligns_non_conformable_leaves() {
        let ctx = OdinContext::with_workers(3);
        let x = ctx.arange_f64(0.0, 1.0, 12, Dist::Block);
        let y = ctx.arange_f64(0.0, 1.0, 12, Dist::Cyclic);
        let r = (Expr::leaf(&x) + Expr::leaf(&y)).eval();
        let expect: Vec<f64> = (0..12).map(|g| 2.0 * g as f64).collect();
        assert_eq!(r.to_vec(), expect);
    }

    #[test]
    fn integer_programs_stay_integer() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.arange(6);
        let r = (Expr::leaf(&x) * 2.0 + 1.0).eval();
        assert_eq!(r.dtype(), crate::buffer::DType::I64);
        assert_eq!(r.to_vec_i64(), vec![1, 3, 5, 7, 9, 11]);
    }

    #[test]
    fn scalar_folding_in_unfused_path() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.linspace(0.0, 1.0, 5);
        // (2 + 3) * x → constant folded on the master in the eager path
        let e = (Expr::scalar(2.0) + Expr::scalar(3.0)) * Expr::leaf(&x);
        let r = e.eval_unfused();
        assert_eq!(r.to_vec(), vec![0.0, 1.25, 2.5, 3.75, 5.0]);
    }
}
