//! Typed local storage for array segments, with NumPy-style dtype
//! promotion (`bool < i64 < f64`). ODIN inherits NumPy's dtype machinery
//! in the paper; this module is its equivalent for the three numeric
//! kinds the reproduction supports.

use comm::{CommError, Cursor, Wire};

use crate::protocol::{BinOp, UnaryOp};

/// Element type of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DType {
    /// Booleans (comparison results).
    Bool,
    /// 64-bit signed integers.
    I64,
    /// 64-bit floats.
    F64,
}

impl DType {
    /// NumPy-style promotion: the smallest dtype containing both.
    pub fn promote(self, other: DType) -> DType {
        use DType::*;
        match (self, other) {
            (F64, _) | (_, F64) => F64,
            (I64, _) | (_, I64) => I64,
            (Bool, Bool) => Bool,
        }
    }
}

/// A contiguous typed buffer: one worker's segment of a distributed array.
#[derive(Debug, Clone, PartialEq)]
pub enum Buffer {
    /// Boolean storage.
    Bool(Vec<bool>),
    /// Integer storage.
    I64(Vec<i64>),
    /// Float storage.
    F64(Vec<f64>),
}

impl Buffer {
    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            Buffer::Bool(v) => v.len(),
            Buffer::I64(v) => v.len(),
            Buffer::F64(v) => v.len(),
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The buffer's dtype.
    pub fn dtype(&self) -> DType {
        match self {
            Buffer::Bool(_) => DType::Bool,
            Buffer::I64(_) => DType::I64,
            Buffer::F64(_) => DType::F64,
        }
    }

    /// Zero-filled buffer of `dtype`.
    pub fn zeros(dtype: DType, n: usize) -> Buffer {
        match dtype {
            DType::Bool => Buffer::Bool(vec![false; n]),
            DType::I64 => Buffer::I64(vec![0; n]),
            DType::F64 => Buffer::F64(vec![0.0; n]),
        }
    }

    /// Element at `i` widened to `f64` (bools as 0/1).
    pub fn get_f64(&self, i: usize) -> f64 {
        match self {
            Buffer::Bool(v) => f64::from(u8::from(v[i])),
            Buffer::I64(v) => v[i] as f64,
            Buffer::F64(v) => v[i],
        }
    }

    /// Element at `i` as `i64` (floats truncated).
    pub fn get_i64(&self, i: usize) -> i64 {
        match self {
            Buffer::Bool(v) => i64::from(v[i]),
            Buffer::I64(v) => v[i],
            Buffer::F64(v) => v[i] as i64,
        }
    }

    /// Convert to `dtype`, copying.
    pub fn astype(&self, dtype: DType) -> Buffer {
        if self.dtype() == dtype {
            return self.clone();
        }
        let n = self.len();
        match dtype {
            DType::F64 => Buffer::F64((0..n).map(|i| self.get_f64(i)).collect()),
            DType::I64 => Buffer::I64((0..n).map(|i| self.get_i64(i)).collect()),
            DType::Bool => Buffer::Bool((0..n).map(|i| self.get_f64(i) != 0.0).collect()),
        }
    }

    /// Borrow as `f64` slice (panics if not F64).
    pub fn as_f64(&self) -> &[f64] {
        match self {
            Buffer::F64(v) => v,
            other => panic!("expected f64 buffer, found {:?}", other.dtype()),
        }
    }

    /// Mutably borrow as `f64` slice (panics if not F64).
    pub fn as_f64_mut(&mut self) -> &mut [f64] {
        match self {
            Buffer::F64(v) => v,
            other => panic!("expected f64 buffer, found {:?}", other.dtype()),
        }
    }

    /// Borrow as `i64` slice (panics if not I64).
    pub fn as_i64(&self) -> &[i64] {
        match self {
            Buffer::I64(v) => v,
            other => panic!("expected i64 buffer, found {:?}", other.dtype()),
        }
    }

    /// Borrow as `bool` slice (panics if not Bool).
    pub fn as_bool(&self) -> &[bool] {
        match self {
            Buffer::Bool(v) => v,
            other => panic!("expected bool buffer, found {:?}", other.dtype()),
        }
    }

    /// Extract a strided subsequence (1-D slice materialization).
    pub fn gather_indices(&self, idx: impl Iterator<Item = usize>) -> Buffer {
        match self {
            Buffer::Bool(v) => Buffer::Bool(idx.map(|i| v[i]).collect()),
            Buffer::I64(v) => Buffer::I64(idx.map(|i| v[i]).collect()),
            Buffer::F64(v) => Buffer::F64(idx.map(|i| v[i]).collect()),
        }
    }

    /// Concatenate buffers of the same dtype.
    pub fn concat(pieces: Vec<Buffer>) -> Buffer {
        let dtype = pieces.first().map(|b| b.dtype()).unwrap_or(DType::F64);
        let mut out = Buffer::zeros(dtype, 0);
        for p in pieces {
            assert_eq!(p.dtype(), dtype, "concat dtype mismatch");
            match (&mut out, p) {
                (Buffer::Bool(o), Buffer::Bool(v)) => o.extend(v),
                (Buffer::I64(o), Buffer::I64(v)) => o.extend(v),
                (Buffer::F64(o), Buffer::F64(v)) => o.extend(v),
                _ => unreachable!(),
            }
        }
        out
    }
}

/// The result dtype of a unary op applied to `d`.
pub fn unary_result_dtype(op: UnaryOp, d: DType) -> DType {
    use UnaryOp::*;
    match op {
        Neg => {
            if d == DType::Bool {
                DType::I64
            } else {
                d
            }
        }
        Abs => {
            if d == DType::Bool {
                DType::I64
            } else {
                d
            }
        }
        Not => DType::Bool,
        // transcendental ufuncs always produce floats, as in NumPy
        Sin | Cos | Tan | Exp | Log | Sqrt | Floor | Ceil => DType::F64,
    }
}

/// The result dtype of a binary op on `(a, b)`.
pub fn binary_result_dtype(op: BinOp, a: DType, b: DType) -> DType {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Max | Min => {
            let p = a.promote(b);
            if p == DType::Bool {
                DType::I64
            } else {
                p
            }
        }
        Div | Pow | Hypot | Atan2 => DType::F64,
        Mod => a.promote(b),
        Eq | Ne | Lt | Le | Gt | Ge | And | Or => DType::Bool,
    }
}

/// Apply a unary ufunc elementwise.
pub fn apply_unary(op: UnaryOp, a: &Buffer) -> Buffer {
    use UnaryOp::*;
    let out_dtype = unary_result_dtype(op, a.dtype());
    match op {
        Neg => match a {
            Buffer::F64(v) => Buffer::F64(v.iter().map(|x| -x).collect()),
            _ => Buffer::I64((0..a.len()).map(|i| -a.get_i64(i)).collect()),
        },
        Abs => match a {
            Buffer::F64(v) => Buffer::F64(v.iter().map(|x| x.abs()).collect()),
            _ => Buffer::I64((0..a.len()).map(|i| a.get_i64(i).abs()).collect()),
        },
        Not => Buffer::Bool((0..a.len()).map(|i| a.get_f64(i) == 0.0).collect()),
        _ => {
            let f: fn(f64) -> f64 = match op {
                Sin => f64::sin,
                Cos => f64::cos,
                Tan => f64::tan,
                Exp => f64::exp,
                Log => f64::ln,
                Sqrt => f64::sqrt,
                Floor => f64::floor,
                Ceil => f64::ceil,
                _ => unreachable!(),
            };
            debug_assert_eq!(out_dtype, DType::F64);
            Buffer::F64((0..a.len()).map(|i| f(a.get_f64(i))).collect())
        }
    }
}

/// Evaluate one binary op on two f64 operands.
pub fn binop_f64(op: BinOp, x: f64, y: f64) -> f64 {
    use BinOp::*;
    match op {
        Add => x + y,
        Sub => x - y,
        Mul => x * y,
        Div => x / y,
        Pow => x.powf(y),
        Mod => x % y,
        Max => x.max(y),
        Min => x.min(y),
        Hypot => x.hypot(y),
        Atan2 => x.atan2(y),
        _ => unreachable!("comparison handled separately"),
    }
}

fn binop_i64(op: BinOp, x: i64, y: i64) -> i64 {
    use BinOp::*;
    match op {
        Add => x.wrapping_add(y),
        Sub => x.wrapping_sub(y),
        Mul => x.wrapping_mul(y),
        Mod => {
            if y == 0 {
                0
            } else {
                x.rem_euclid(y)
            }
        }
        Max => x.max(y),
        Min => x.min(y),
        _ => unreachable!(),
    }
}

fn binop_cmp(op: BinOp, x: f64, y: f64) -> bool {
    use BinOp::*;
    match op {
        Eq => x == y,
        Ne => x != y,
        Lt => x < y,
        Le => x <= y,
        Gt => x > y,
        Ge => x >= y,
        And => x != 0.0 && y != 0.0,
        Or => x != 0.0 || y != 0.0,
        _ => unreachable!(),
    }
}

/// Apply a binary ufunc elementwise to equal-length buffers, with
/// promotion.
pub fn apply_binary(op: BinOp, a: &Buffer, b: &Buffer) -> Buffer {
    assert_eq!(a.len(), b.len(), "binary ufunc length mismatch");
    let out = binary_result_dtype(op, a.dtype(), b.dtype());
    let n = a.len();
    // fast monomorphic loops for the dominant f64∘f64 arithmetic cases
    if let (Buffer::F64(x), Buffer::F64(y)) = (a, b) {
        let zip = |f: fn(f64, f64) -> f64| -> Buffer {
            Buffer::F64(x.iter().zip(y.iter()).map(|(&u, &v)| f(u, v)).collect())
        };
        match op {
            BinOp::Add => return zip(|u, v| u + v),
            BinOp::Sub => return zip(|u, v| u - v),
            BinOp::Mul => return zip(|u, v| u * v),
            BinOp::Div => return zip(|u, v| u / v),
            BinOp::Max => return zip(f64::max),
            BinOp::Min => return zip(f64::min),
            BinOp::Hypot => return zip(f64::hypot),
            _ => {}
        }
    }
    match out {
        DType::F64 => Buffer::F64(
            (0..n)
                .map(|i| binop_f64(op, a.get_f64(i), b.get_f64(i)))
                .collect(),
        ),
        DType::I64 => Buffer::I64(
            (0..n)
                .map(|i| binop_i64(op, a.get_i64(i), b.get_i64(i)))
                .collect(),
        ),
        DType::Bool => Buffer::Bool(
            (0..n)
                .map(|i| binop_cmp(op, a.get_f64(i), b.get_f64(i)))
                .collect(),
        ),
    }
}

/// Apply a binary ufunc between a buffer and a broadcast scalar.
pub fn apply_binary_scalar(op: BinOp, a: &Buffer, scalar: f64, scalar_left: bool) -> Buffer {
    // Scalars arrive as f64 on the wire; integer identity is preserved
    // when both the buffer and the scalar are integral.
    let scalar_dtype = if scalar.fract() == 0.0 && scalar.abs() < 2f64.powi(53) {
        DType::I64
    } else {
        DType::F64
    };
    let out = binary_result_dtype(op, a.dtype(), scalar_dtype);
    let n = a.len();
    // strength reduction: x ** small-integer runs as powi
    if op == BinOp::Pow
        && !scalar_left
        && out == DType::F64
        && scalar.fract() == 0.0
        && scalar.abs() <= 8.0
    {
        let e = scalar as i32;
        return Buffer::F64((0..n).map(|i| a.get_f64(i).powi(e)).collect());
    }
    let pick = |x: f64| {
        if scalar_left {
            (scalar, x)
        } else {
            (x, scalar)
        }
    };
    match out {
        DType::F64 => Buffer::F64(
            (0..n)
                .map(|i| {
                    let (x, y) = pick(a.get_f64(i));
                    binop_f64(op, x, y)
                })
                .collect(),
        ),
        DType::I64 => Buffer::I64(
            (0..n)
                .map(|i| {
                    let (x, y) = if scalar_left {
                        (scalar as i64, a.get_i64(i))
                    } else {
                        (a.get_i64(i), scalar as i64)
                    };
                    binop_i64(op, x, y)
                })
                .collect(),
        ),
        DType::Bool => Buffer::Bool(
            (0..n)
                .map(|i| {
                    let (x, y) = pick(a.get_f64(i));
                    binop_cmp(op, x, y)
                })
                .collect(),
        ),
    }
}

impl Wire for DType {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            DType::Bool => 0,
            DType::I64 => 1,
            DType::F64 => 2,
        });
    }
    fn wire_size(&self) -> usize {
        1
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        match u8::decode(cur)? {
            0 => Ok(DType::Bool),
            1 => Ok(DType::I64),
            2 => Ok(DType::F64),
            b => Err(CommError::Decode(format!("bad dtype byte {b}"))),
        }
    }
}

impl Wire for Buffer {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.dtype().encode(buf);
        match self {
            Buffer::Bool(v) => v.encode(buf),
            Buffer::I64(v) => v.encode(buf),
            Buffer::F64(v) => v.encode(buf),
        }
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        match DType::decode(cur)? {
            DType::Bool => Ok(Buffer::Bool(Vec::decode(cur)?)),
            DType::I64 => Ok(Buffer::I64(Vec::decode(cur)?)),
            DType::F64 => Ok(Buffer::F64(Vec::decode(cur)?)),
        }
    }
    fn wire_size(&self) -> usize {
        // dtype byte + length prefix + fixed-width elements (bools are
        // one byte each on the wire).
        let elem = match self {
            Buffer::Bool(_) => 1,
            Buffer::I64(_) | Buffer::F64(_) => 8,
        };
        1 + 8 + self.len() * elem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_ladder() {
        assert_eq!(DType::Bool.promote(DType::Bool), DType::Bool);
        assert_eq!(DType::Bool.promote(DType::I64), DType::I64);
        assert_eq!(DType::I64.promote(DType::F64), DType::F64);
        assert_eq!(DType::F64.promote(DType::Bool), DType::F64);
    }

    #[test]
    fn unary_ops() {
        let a = Buffer::F64(vec![0.0, 1.0, 4.0]);
        assert_eq!(
            apply_unary(UnaryOp::Sqrt, &a),
            Buffer::F64(vec![0.0, 1.0, 2.0])
        );
        let b = Buffer::I64(vec![-2, 3]);
        assert_eq!(apply_unary(UnaryOp::Neg, &b), Buffer::I64(vec![2, -3]));
        assert_eq!(apply_unary(UnaryOp::Abs, &b), Buffer::I64(vec![2, 3]));
        // sin of ints promotes to float
        let c = Buffer::I64(vec![0]);
        assert_eq!(apply_unary(UnaryOp::Sin, &c), Buffer::F64(vec![0.0]));
        // logical not
        let d = Buffer::Bool(vec![true, false]);
        assert_eq!(
            apply_unary(UnaryOp::Not, &d),
            Buffer::Bool(vec![false, true])
        );
    }

    #[test]
    fn binary_promotion() {
        let i = Buffer::I64(vec![1, 2, 3]);
        let f = Buffer::F64(vec![0.5, 0.5, 0.5]);
        assert_eq!(
            apply_binary(BinOp::Add, &i, &f),
            Buffer::F64(vec![1.5, 2.5, 3.5])
        );
        assert_eq!(apply_binary(BinOp::Add, &i, &i), Buffer::I64(vec![2, 4, 6]));
        // int/int division is float (true division, like NumPy / Python 3)
        assert_eq!(
            apply_binary(BinOp::Div, &i, &i),
            Buffer::F64(vec![1.0, 1.0, 1.0])
        );
        // bool + bool promotes to int
        let b = Buffer::Bool(vec![true, true, false]);
        assert_eq!(apply_binary(BinOp::Add, &b, &b), Buffer::I64(vec![2, 2, 0]));
    }

    #[test]
    fn comparisons_yield_bool() {
        let a = Buffer::F64(vec![1.0, 2.0, 3.0]);
        let b = Buffer::F64(vec![2.0, 2.0, 2.0]);
        assert_eq!(
            apply_binary(BinOp::Lt, &a, &b),
            Buffer::Bool(vec![true, false, false])
        );
        assert_eq!(
            apply_binary(BinOp::Ge, &a, &b),
            Buffer::Bool(vec![false, true, true])
        );
    }

    #[test]
    fn scalar_broadcast_both_sides() {
        let a = Buffer::F64(vec![1.0, 2.0]);
        assert_eq!(
            apply_binary_scalar(BinOp::Sub, &a, 1.0, false),
            Buffer::F64(vec![0.0, 1.0])
        );
        assert_eq!(
            apply_binary_scalar(BinOp::Sub, &a, 1.0, true),
            Buffer::F64(vec![0.0, -1.0])
        );
        // integer scalar keeps integer arrays integral
        let i = Buffer::I64(vec![3, 4]);
        assert_eq!(
            apply_binary_scalar(BinOp::Mul, &i, 2.0, false),
            Buffer::I64(vec![6, 8])
        );
        // fractional scalar promotes
        assert_eq!(
            apply_binary_scalar(BinOp::Mul, &i, 0.5, false),
            Buffer::F64(vec![1.5, 2.0])
        );
    }

    #[test]
    fn astype_conversions() {
        let f = Buffer::F64(vec![0.0, 1.7, -2.3]);
        assert_eq!(f.astype(DType::I64), Buffer::I64(vec![0, 1, -2]));
        assert_eq!(f.astype(DType::Bool), Buffer::Bool(vec![false, true, true]));
        let b = Buffer::Bool(vec![true, false]);
        assert_eq!(b.astype(DType::F64), Buffer::F64(vec![1.0, 0.0]));
    }

    #[test]
    fn wire_roundtrip() {
        for buf in [
            Buffer::F64(vec![1.5, -2.5]),
            Buffer::I64(vec![7, -9]),
            Buffer::Bool(vec![true, false, true]),
        ] {
            let bytes = comm::encode_to_vec(&buf);
            assert_eq!(buf.wire_size(), bytes.len());
            let back: Buffer = comm::decode_from_slice(&bytes).unwrap();
            assert_eq!(back, buf);
        }
    }

    #[test]
    fn hypot_and_atan2() {
        let a = Buffer::F64(vec![3.0]);
        let b = Buffer::F64(vec![4.0]);
        assert_eq!(apply_binary(BinOp::Hypot, &a, &b), Buffer::F64(vec![5.0]));
        let t = apply_binary(BinOp::Atan2, &b, &a);
        assert!((t.as_f64()[0] - (4.0f64).atan2(3.0)).abs() < 1e-15);
    }

    #[test]
    fn gather_indices_and_concat() {
        let a = Buffer::I64(vec![10, 20, 30, 40, 50]);
        let g = a.gather_indices([4, 2, 0].into_iter());
        assert_eq!(g, Buffer::I64(vec![50, 30, 10]));
        let c = Buffer::concat(vec![g, Buffer::I64(vec![99])]);
        assert_eq!(c, Buffer::I64(vec![50, 30, 10, 99]));
    }
}
