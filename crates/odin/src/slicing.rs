//! Distributed slicing and redistribution (worker side).
//!
//! Arrays are distributed along axis 0 (row distribution); a slice along
//! axis 0 therefore moves whole rows between workers, while slices along
//! the other axes are purely local strided gathers. This is the machinery
//! behind the paper's §III-G claim that `dy = y[1:] - y[:-1]` "requires
//! some small amount of inter-node communication … ODIN performs this
//! communication automatically".

use std::cell::RefCell;
use std::rc::Rc;

use comm::{Comm, CommError, Cursor, Wire};

use crate::buffer::Buffer;
use crate::protocol::{ArrayMeta, Dist};

/// Reserved tag for the split-phase exchanges below. Safe as a fixed tag:
/// workers execute commands in SPMD order and channels are FIFO, so two
/// exchanges can never have messages in flight that would cross-match.
const XCHG_TAG: comm::Tag = 0x2FFF_0002;

/// All-to-all exchange with compute/communication overlap: post
/// nonblocking sends to every peer, run `local` (the local-copy phase of
/// the caller) while the payloads are in flight, then drain incoming
/// messages in arrival order. `incoming[peer]` is what `peer` sent here;
/// the self entry is moved across without touching the network. Segment
/// payloads at or above the comm's zero-copy threshold transfer as region
/// handles (ownership move, no encode/decode round-trip).
fn exchange_overlapped<T: Wire + Clone + Send + Sync + 'static>(
    comm: &Comm,
    mut outgoing: Vec<Vec<T>>,
    local: impl FnOnce(),
) -> Vec<Vec<T>> {
    let p = comm.size();
    let me = comm.rank();
    debug_assert_eq!(outgoing.len(), p);
    let mut incoming: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
    incoming[me] = std::mem::take(&mut outgoing[me]);
    if p == 1 {
        local();
        return incoming;
    }
    let mut sreqs = Vec::with_capacity(p - 1);
    for (peer, msg) in outgoing.into_iter().enumerate() {
        if peer == me {
            continue;
        }
        sreqs.push(comm.isend_zc(peer, XCHG_TAG, msg).expect("exchange isend"));
    }
    local();
    let mut peers: Vec<usize> = (0..p).filter(|&peer| peer != me).collect();
    let mut rreqs: Vec<comm::Request> = peers
        .iter()
        .map(|&peer| {
            comm.irecv(comm::Src::Rank(peer), XCHG_TAG)
                .expect("exchange irecv")
        })
        .collect();
    while !rreqs.is_empty() {
        let (idx, done) = comm.waitany(&mut rreqs).expect("exchange wait");
        let peer = peers.remove(idx);
        let (payload, _) = done.expect("receive completion carries a payload");
        incoming[peer] = match payload {
            comm::Payload::Bytes(bytes) => {
                let v = comm::decode_from_slice(&bytes).expect("bad exchange payload");
                comm.put_buf(bytes);
                v
            }
            comm::Payload::Region(region) => region
                .take::<Vec<T>>()
                .expect("exchange region payload is not Vec<T>"),
        };
    }
    for req in sreqs {
        comm.wait(req).expect("exchange send wait");
    }
    incoming
}

/// Row-routing plan for the general slice/redistribute paths: which flat
/// source elements ship to which peer and where rows staying local land.
/// A pure function of the array's shape, its distribution, and the
/// request (per rank), so cached entries never need invalidation — an
/// equal key always reproduces an equal route.
struct RoutePlan {
    /// Per peer: output/global rows shipped there.
    peer_rows: Vec<Vec<usize>>,
    /// Per peer: flat source element indices, in shipment order.
    peer_idx: Vec<Vec<usize>>,
    /// `(output lid, source element base)` for rows staying on this rank.
    local_rows: Vec<(usize, usize)>,
}

/// Exact cache key for a [`RoutePlan`]. Rank and communicator size are
/// implicit: the cache is per worker thread.
#[derive(PartialEq)]
enum RouteKey {
    Slice {
        shape: Vec<usize>,
        dist: Dist,
        specs: Vec<SliceSpec>,
    },
    Redistribute {
        shape: Vec<usize>,
        dist: Dist,
        new_dist: Dist,
    },
}

/// Retained routes per worker; LRU-evicted beyond this.
const ROUTE_CACHE_MAX: usize = 16;

thread_local! {
    static ROUTES: RefCell<Vec<(RouteKey, Rc<RoutePlan>)>> = const { RefCell::new(Vec::new()) };
}

/// Look up (or build and insert) the route for `key`. Building is purely
/// local index arithmetic — no communication — so hit/miss asymmetry
/// across workers is harmless; the counters feed `CommStats::plan_hits`
/// / `plan_misses` like the `dmap` plan cache.
fn cached_route(comm: &Comm, key: RouteKey, build: impl FnOnce() -> RoutePlan) -> Rc<RoutePlan> {
    let hit = ROUTES.with(|c| {
        let mut c = c.borrow_mut();
        c.iter().position(|(k, _)| *k == key).map(|i| {
            let e = c.remove(i);
            let plan = Rc::clone(&e.1);
            c.push(e);
            plan
        })
    });
    if let Some(plan) = hit {
        comm.record_plan_hit();
        return plan;
    }
    comm.record_plan_miss();
    let plan = Rc::new(build());
    ROUTES.with(|c| {
        let mut c = c.borrow_mut();
        if c.len() == ROUTE_CACHE_MAX {
            c.remove(0);
        }
        c.push((key, Rc::clone(&plan)));
    });
    plan
}

/// A half-open strided range `start..stop` with positive `step`
/// (negative indices are resolved by the master-side API before encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceSpec {
    /// First index.
    pub start: usize,
    /// One past the last candidate index.
    pub stop: usize,
    /// Stride (≥ 1).
    pub step: usize,
}

impl SliceSpec {
    /// Construct (panics on zero step or inverted range).
    pub fn new(start: usize, stop: usize, step: usize) -> Self {
        assert!(step >= 1, "slice step must be ≥ 1");
        assert!(start <= stop, "slice start after stop");
        SliceSpec { start, stop, step }
    }

    /// The identity slice over a dimension of length `n`.
    pub fn full(n: usize) -> Self {
        SliceSpec {
            start: 0,
            stop: n,
            step: 1,
        }
    }

    /// Number of selected indices.
    pub fn len(&self) -> usize {
        (self.stop - self.start).div_ceil(self.step)
    }

    /// Whether the slice selects nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `i` is selected.
    pub fn contains(&self, i: usize) -> bool {
        i >= self.start && i < self.stop && (i - self.start).is_multiple_of(self.step)
    }

    /// Output position of selected index `i`.
    pub fn position_of(&self, i: usize) -> usize {
        debug_assert!(self.contains(i));
        (i - self.start) / self.step
    }

    /// The `k`-th selected index.
    pub fn index_at(&self, k: usize) -> usize {
        self.start + k * self.step
    }
}

impl Wire for SliceSpec {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.start.encode(buf);
        self.stop.encode(buf);
        self.step.encode(buf);
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        Ok(SliceSpec {
            start: usize::decode(cur)?,
            stop: usize::decode(cur)?,
            step: usize::decode(cur)?,
        })
    }
}

/// Within-row (slab) offsets selected by `specs` over trailing dims
/// `dims` (`specs.len() == dims.len()`), in output order.
pub fn slab_offsets(dims: &[usize], specs: &[SliceSpec]) -> Vec<usize> {
    assert_eq!(dims.len(), specs.len());
    // strides of the slab, row-major
    let mut strides = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    let mut out = vec![0usize];
    for (d, spec) in specs.iter().enumerate() {
        let mut next = Vec::with_capacity(out.len() * spec.len());
        for &base in &out {
            for k in 0..spec.len() {
                next.push(base + spec.index_at(k) * strides[d]);
            }
        }
        out = next;
    }
    out
}

/// Materialize a slice of a distributed array. Collective over the worker
/// communicator. `specs` has one entry per dimension of `meta.shape`.
pub fn slice_worker(
    comm: &Comm,
    meta: &ArrayMeta,
    data: &Buffer,
    specs: &[SliceSpec],
) -> (ArrayMeta, Buffer) {
    assert_eq!(specs.len(), meta.ndim(), "one slice spec per dimension");
    assert_eq!(meta.axis, 0, "arrays are distributed along axis 0");
    let p = comm.size();
    let rank = comm.rank();
    let src_map = meta.axis_map(p, rank);
    let row_spec = specs[0];
    // Output metadata: same dist along axis 0, sliced shape.
    let out_shape: Vec<usize> = specs.iter().map(|s| s.len()).collect();
    let out_meta = ArrayMeta {
        shape: out_shape,
        axis: 0,
        dist: meta.dist,
        dtype: meta.dtype,
    };
    let out_map = out_meta.axis_map(p, rank);
    let slab_dims = &meta.shape[1..];
    let offsets = slab_offsets(slab_dims, &specs[1..]);
    let slab = meta.slab();
    let out_slab = offsets.len();
    // For each locally owned source row selected by the slice, compute the
    // destination row and owner; ship ONE flat payload per peer (row list
    // + concatenated row data), not one message per row.
    let rank = comm.rank();
    let mut out = Buffer::zeros(meta.dtype, out_map.my_count() * out_slab);
    // Fast path: block → block, unit row step, identity slab selection.
    // Every transfer is then a contiguous run per peer — pure memcpy plus
    // at most P descriptor messages (the common shifted-slice case of the
    // paper's finite-difference example).
    let identity_slab =
        out_slab == slab && (slab == 0 || (offsets[0] == 0 && offsets[slab - 1] + 1 == slab));
    if meta.dist == crate::protocol::Dist::Block && row_spec.step == 1 && identity_slab {
        let src_start = src_map.my_block_start().expect("block map");
        let src_end = src_start + src_map.my_count();
        let g_lo = src_start.max(row_spec.start);
        let g_hi = src_end.min(row_spec.stop);
        let mut outgoing: Vec<Vec<(usize, Buffer)>> = (0..p).map(|_| Vec::new()).collect();
        let mut local_copy: Option<(usize, usize, usize)> = None;
        if g_lo < g_hi {
            for (owner, out_msgs) in outgoing.iter_mut().enumerate() {
                let o_map = out_meta.axis_map(p, owner);
                let o_start = o_map.my_block_start().expect("block map");
                let o_end = o_start + o_map.my_count();
                // out rows this owner holds, intersected with mine
                let lo = (g_lo - row_spec.start).max(o_start);
                let hi = (g_hi - row_spec.start).min(o_end);
                if lo >= hi {
                    continue;
                }
                let src_base = (lo + row_spec.start - src_start) * slab;
                let n_elems = (hi - lo) * slab;
                if owner == rank {
                    local_copy = Some(((lo - o_start) * out_slab, src_base, n_elems));
                } else {
                    let flat = data.gather_indices(src_base..src_base + n_elems);
                    out_msgs.push((lo, flat));
                }
            }
        }
        // The local memcpy runs while the remote payloads are in flight.
        let incoming = exchange_overlapped(comm, outgoing, || {
            if let Some((dst_base, src_base, n_elems)) = local_copy {
                copy_rows(&mut out, dst_base, data, src_base, n_elems);
            }
        });
        let my_out_start = out_map.my_block_start().expect("block map");
        for (lo, flat) in incoming.into_iter().flatten() {
            let dst_base = (lo - my_out_start) * out_slab;
            let n_elems = flat.len();
            copy_rows(&mut out, dst_base, &flat, 0, n_elems);
        }
        return (out_meta, out);
    }
    let plan = cached_route(
        comm,
        RouteKey::Slice {
            shape: meta.shape.clone(),
            dist: meta.dist,
            specs: specs.to_vec(),
        },
        || {
            let mut peer_rows: Vec<Vec<usize>> = (0..p).map(|_| Vec::new()).collect();
            let mut peer_idx: Vec<Vec<usize>> = (0..p).map(|_| Vec::new()).collect();
            let mut local_rows: Vec<(usize, usize)> = Vec::new();
            for l in 0..src_map.my_count() {
                let g = src_map.local_to_global(l);
                if !row_spec.contains(g) {
                    continue;
                }
                let out_row = row_spec.position_of(g);
                let owner = out_map.owner_of(out_row).expect("structured map");
                let base = l * slab;
                if owner == rank {
                    // local fast path: no serialization round-trip;
                    // deferred into the overlap window below
                    local_rows.push((out_map.global_to_local(out_row).unwrap(), base));
                } else {
                    peer_rows[owner].push(out_row);
                    peer_idx[owner].extend(offsets.iter().map(|&o| base + o));
                }
            }
            RoutePlan {
                peer_rows,
                peer_idx,
                local_rows,
            }
        },
    );
    let outgoing: Vec<Vec<(Vec<usize>, Buffer)>> = plan
        .peer_rows
        .iter()
        .zip(&plan.peer_idx)
        .map(|(rows, idx)| {
            if rows.is_empty() {
                Vec::new()
            } else {
                vec![(rows.clone(), data.gather_indices(idx.iter().copied()))]
            }
        })
        .collect();
    let incoming = exchange_overlapped(comm, outgoing, || {
        let contiguous =
            offsets.len() == slab && slab > 0 && offsets[0] == 0 && offsets[slab - 1] + 1 == slab;
        for &(lo, base) in &plan.local_rows {
            if contiguous {
                copy_rows(&mut out, lo * out_slab, data, base, out_slab);
            } else {
                let row = data.gather_indices(offsets.iter().map(|&o| base + o));
                copy_rows(&mut out, lo * out_slab, &row, 0, out_slab);
            }
        }
    });
    for batch in incoming.into_iter().flatten() {
        let (rows, flat) = batch;
        for (k, out_row) in rows.into_iter().enumerate() {
            let lo = out_map
                .global_to_local(out_row)
                .expect("row routed to wrong owner");
            copy_rows(&mut out, lo * out_slab, &flat, k * out_slab, out_slab);
        }
    }
    (out_meta, out)
}

/// Redistribute an array to a new distribution along axis 0. Collective.
pub fn redistribute_worker(
    comm: &Comm,
    meta: &ArrayMeta,
    data: &Buffer,
    new_dist: crate::protocol::Dist,
) -> (ArrayMeta, Buffer) {
    let p = comm.size();
    let rank = comm.rank();
    let src_map = meta.axis_map(p, rank);
    let out_meta = ArrayMeta {
        shape: meta.shape.clone(),
        axis: 0,
        dist: new_dist,
        dtype: meta.dtype,
    };
    let out_map = out_meta.axis_map(p, rank);
    let slab = meta.slab();
    let rank = comm.rank();
    let mut out = Buffer::zeros(meta.dtype, out_map.my_count() * slab);
    let plan = cached_route(
        comm,
        RouteKey::Redistribute {
            shape: meta.shape.clone(),
            dist: meta.dist,
            new_dist,
        },
        || {
            let mut peer_rows: Vec<Vec<usize>> = (0..p).map(|_| Vec::new()).collect();
            let mut peer_idx: Vec<Vec<usize>> = (0..p).map(|_| Vec::new()).collect();
            let mut local_rows: Vec<(usize, usize)> = Vec::new();
            for l in 0..src_map.my_count() {
                let g = src_map.local_to_global(l);
                let owner = out_map.owner_of(g).expect("structured map");
                let base = l * slab;
                if owner == rank {
                    local_rows.push((out_map.global_to_local(g).unwrap(), base));
                    continue;
                }
                peer_rows[owner].push(g);
                peer_idx[owner].extend(base..base + slab);
            }
            RoutePlan {
                peer_rows,
                peer_idx,
                local_rows,
            }
        },
    );
    let outgoing: Vec<Vec<(Vec<usize>, Buffer)>> = plan
        .peer_rows
        .iter()
        .zip(&plan.peer_idx)
        .map(|(rows, idx)| {
            if rows.is_empty() {
                Vec::new()
            } else {
                vec![(rows.clone(), data.gather_indices(idx.iter().copied()))]
            }
        })
        .collect();
    let incoming = exchange_overlapped(comm, outgoing, || {
        for &(lo, base) in &plan.local_rows {
            copy_rows(&mut out, lo * slab, data, base, slab);
        }
    });
    for (rows, flat) in incoming.into_iter().flatten() {
        for (k, g) in rows.into_iter().enumerate() {
            let lo = out_map
                .global_to_local(g)
                .expect("row routed to wrong owner");
            copy_rows(&mut out, lo * slab, &flat, k * slab, slab);
        }
    }
    (out_meta, out)
}

/// Copy `n` elements from `src[src_at..]` into `out[at..]`.
fn copy_rows(out: &mut Buffer, at: usize, src: &Buffer, src_at: usize, n: usize) {
    match (out, src) {
        (Buffer::F64(o), Buffer::F64(r)) => o[at..at + n].copy_from_slice(&r[src_at..src_at + n]),
        (Buffer::I64(o), Buffer::I64(r)) => o[at..at + n].copy_from_slice(&r[src_at..src_at + n]),
        (Buffer::Bool(o), Buffer::Bool(r)) => o[at..at + n].copy_from_slice(&r[src_at..src_at + n]),
        _ => panic!("row dtype mismatch"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_len_and_indexing() {
        let s = SliceSpec::new(1, 10, 3); // 1, 4, 7
        assert_eq!(s.len(), 3);
        assert!(s.contains(4));
        assert!(!s.contains(5));
        assert!(!s.contains(10));
        assert_eq!(s.position_of(7), 2);
        assert_eq!(s.index_at(1), 4);
        assert!(SliceSpec::new(3, 3, 1).is_empty());
        assert_eq!(SliceSpec::full(5).len(), 5);
    }

    #[test]
    fn slab_offsets_2d() {
        // slab dims [4], take every other element: offsets 0, 2
        assert_eq!(slab_offsets(&[4], &[SliceSpec::new(0, 4, 2)]), vec![0, 2]);
        // slab dims [2,3] row-major; slice [0..2, 1..3] → offsets
        // (0,1)=1 (0,2)=2 (1,1)=4 (1,2)=5
        assert_eq!(
            slab_offsets(&[2, 3], &[SliceSpec::full(2), SliceSpec::new(1, 3, 1)]),
            vec![1, 2, 4, 5]
        );
        // empty spec list (scalar slab)
        assert_eq!(slab_offsets(&[], &[]), vec![0]);
    }
}
