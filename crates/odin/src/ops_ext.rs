//! Extended NumPy-parity operations: `where`, `cumsum`, `argmin/argmax`,
//! `clip`, `dot`, `concatenate`. These round out the paper's §III-A claim
//! that "all NumPy array creation routines \[and\] built-in functions" have
//! distributed counterparts.

use crate::array::DistArray;
use crate::buffer::DType;
use crate::context::OdinContext;
use crate::protocol::{ArrayMeta, BinOp, Cmd, Dist};

impl<'c> DistArray<'c> {
    /// `np.where(self, a, b)`: elementwise `self ? a : b`. `self` is the
    /// condition (any dtype; nonzero = true).
    pub fn select(&self, a: &DistArray<'c>, b: &DistArray<'c>) -> DistArray<'c> {
        let mc = self.meta();
        let ma = a.meta();
        let mb = b.meta();
        assert_eq!(mc.shape, ma.shape, "where: shape mismatch");
        assert_eq!(mc.shape, mb.shape, "where: shape mismatch");
        // align both branches (and the condition) to the condition's
        // layout using the redistribution machinery
        let a_al;
        let a_ref = if ma.conformable(&mc) {
            a
        } else {
            a_al = a.redistribute(mc.dist);
            &a_al
        };
        let b_al;
        let b_ref = if mb.conformable(&mc) {
            b
        } else {
            b_al = b.redistribute(mc.dist);
            &b_al
        };
        let out = self.ctx().alloc_id();
        let out_meta = ArrayMeta {
            dtype: a_ref.dtype().promote(b_ref.dtype()),
            ..mc.clone()
        };
        self.ctx().send_cmd(&Cmd::Select {
            out,
            cond: self.id(),
            a: a_ref.id(),
            b: b_ref.id(),
        });
        self.ctx().record_meta(out, out_meta);
        DistArray::from_id(self.ctx(), out)
    }

    /// Inclusive prefix sum (`np.cumsum`) of a 1-D array; a distributed
    /// scan (local prefix + exscan of per-worker totals). The scan needs
    /// globally-contiguous segments, so non-block arrays are redistributed
    /// first and the result is block-distributed.
    pub fn cumsum(&self) -> DistArray<'c> {
        let meta = self.meta();
        assert_eq!(meta.ndim(), 1, "cumsum supports 1-D arrays");
        if meta.dist != Dist::Block {
            return self.redistribute(Dist::Block).cumsum();
        }
        let out = self.ctx().alloc_id();
        let out_meta = ArrayMeta {
            dtype: match meta.dtype {
                DType::Bool => DType::I64,
                d => d,
            },
            ..meta
        };
        self.ctx().send_cmd(&Cmd::CumSum { out, a: self.id() });
        self.ctx().record_meta(out, out_meta);
        DistArray::from_id(self.ctx(), out)
    }

    fn arg_reduce(&self, is_max: bool) -> (usize, f64) {
        assert!(!self.is_empty(), "arg reduction of an empty array");
        let pending: crate::context::Pending<'_, (f64, usize)> =
            self.ctx().dispatch_single(&Cmd::ArgReduce {
                a: self.id(),
                is_max,
            });
        let (v, idx) = pending.wait();
        (idx, v)
    }

    /// Global flat index of the maximum element (ties → lowest index).
    pub fn argmax(&self) -> usize {
        self.arg_reduce(true).0
    }

    /// Global flat index of the minimum element.
    pub fn argmin(&self) -> usize {
        self.arg_reduce(false).0
    }

    /// Clamp every element into `[lo, hi]` (`np.clip`).
    pub fn clip(&self, lo: f64, hi: f64) -> DistArray<'c> {
        let clipped_lo = self.binary_scalar(lo, BinOp::Max, false);
        clipped_lo.binary_scalar(hi, BinOp::Min, false)
    }

    /// Dot product of two 1-D arrays.
    pub fn dot(&self, other: &DistArray<'c>) -> f64 {
        assert_eq!(self.meta().ndim(), 1, "dot takes 1-D arrays");
        (self * other).sum()
    }

    /// Matrix product of two 2-D arrays: `self` `[m,k]` stays block-row
    /// distributed; `other` `[k,n]` is allgathered to every worker (the
    /// tall-×-skinny pattern). Result is `[m,n]` with `self`'s layout.
    pub fn matmul(&self, other: &DistArray<'c>) -> DistArray<'c> {
        let ma = self.meta();
        let mb = other.meta();
        assert_eq!(ma.ndim(), 2, "matmul takes 2-D arrays");
        assert_eq!(mb.ndim(), 2, "matmul takes 2-D arrays");
        assert_eq!(ma.shape[1], mb.shape[0], "matmul inner dims must agree");
        let out = self.ctx().alloc_id();
        let out_meta = ArrayMeta {
            shape: vec![ma.shape[0], mb.shape[1]],
            axis: 0,
            dist: ma.dist,
            dtype: DType::F64,
        };
        self.ctx().send_cmd(&Cmd::MatMul {
            out,
            a: self.id(),
            b: other.id(),
        });
        self.ctx().record_meta(out, out_meta);
        DistArray::from_id(self.ctx(), out)
    }

    /// Concatenate with another 1-D array; result is block-distributed.
    pub fn concat(&self, other: &DistArray<'c>) -> DistArray<'c> {
        let ma = self.meta();
        let mb = other.meta();
        assert_eq!(ma.ndim(), 1, "concat supports 1-D arrays");
        assert_eq!(mb.ndim(), 1, "concat supports 1-D arrays");
        let out = self.ctx().alloc_id();
        let out_meta = ArrayMeta {
            shape: vec![ma.shape[0] + mb.shape[0]],
            axis: 0,
            dist: Dist::Block,
            dtype: ma.dtype.promote(mb.dtype),
        };
        self.ctx().send_cmd(&Cmd::Concat {
            out,
            a: self.id(),
            b: other.id(),
        });
        self.ctx().record_meta(out, out_meta);
        DistArray::from_id(self.ctx(), out)
    }
}

impl OdinContext {
    /// `np.where` as a free function on the context.
    pub fn where_<'c>(
        &'c self,
        cond: &DistArray<'c>,
        a: &DistArray<'c>,
        b: &DistArray<'c>,
    ) -> DistArray<'c> {
        cond.select(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Dist;

    #[test]
    fn select_matches_serial() {
        let ctx = OdinContext::with_workers(3);
        let x = ctx.linspace(-5.0, 5.0, 21);
        let zero = ctx.zeros(&[21], DType::F64);
        let mask = x.gt(&zero);
        let picked = mask.select(&x, &zero); // relu
        let xs = x.to_vec();
        let got = picked.to_vec();
        for (g, x) in got.iter().zip(xs) {
            assert_eq!(*g, x.max(0.0));
        }
    }

    #[test]
    fn select_aligns_layouts() {
        let ctx = OdinContext::with_workers(2);
        let cond = ctx
            .arange_f64(0.0, 1.0, 9, Dist::Cyclic)
            .binary_scalar(4.0, BinOp::Lt, false);
        let a = ctx.full(&[9], 1.0, Dist::Block);
        let b = ctx.full(&[9], 2.0, Dist::BlockCyclic(2));
        let r = cond.select(&a, &b);
        assert_eq!(
            r.to_vec(),
            vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0, 2.0]
        );
        assert_eq!(r.dist(), Dist::Cyclic); // condition's layout wins
    }

    #[test]
    fn cumsum_matches_serial() {
        for workers in [1, 3, 4] {
            let ctx = OdinContext::with_workers(workers);
            let x = ctx.arange(10); // 0..9
            let c = x.cumsum();
            assert_eq!(
                c.to_vec_i64(),
                vec![0, 1, 3, 6, 10, 15, 21, 28, 36, 45],
                "workers={workers}"
            );
            // float path
            let y = ctx.linspace(0.5, 5.0, 10);
            let cy = y.cumsum().to_vec();
            let ys = y.to_vec();
            let mut acc = 0.0;
            for (i, v) in ys.iter().enumerate() {
                acc += v;
                assert!((cy[i] - acc).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn argminmax_find_global_extremes() {
        let ctx = OdinContext::with_workers(3);
        let vals = vec![3.0, -1.0, 7.0, 7.0, 0.0, -1.0, 2.0];
        let x = ctx.from_vec(&vals, Dist::Cyclic);
        assert_eq!(x.argmax(), 2); // first of the tied 7s
        assert_eq!(x.argmin(), 1); // first of the tied -1s
    }

    #[test]
    fn clip_bounds_values() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.linspace(-2.0, 2.0, 9);
        let c = x.clip(-1.0, 1.0);
        assert_eq!(c.min(), -1.0);
        assert_eq!(c.max(), 1.0);
        let got = c.to_vec();
        for (g, x) in got.iter().zip(x.to_vec()) {
            assert_eq!(*g, x.clamp(-1.0, 1.0));
        }
    }

    #[test]
    fn dot_product() {
        let ctx = OdinContext::with_workers(3);
        let x = ctx.linspace(1.0, 4.0, 4); // 1,2,3,4
        let y = ctx.full(&[4], 2.0, Dist::Cyclic); // non-conformable on purpose
        assert!((x.dot(&y) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn concat_joins_across_layouts() {
        let ctx = OdinContext::with_workers(3);
        let a = ctx.arange_f64(0.0, 1.0, 5, Dist::Cyclic);
        let b = ctx.arange_f64(100.0, 1.0, 3, Dist::Block);
        let c = a.concat(&b);
        assert_eq!(c.len(), 8);
        assert_eq!(
            c.to_vec(),
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 100.0, 101.0, 102.0]
        );
        assert_eq!(c.dist(), Dist::Block);
    }

    #[test]
    fn matmul_matches_serial() {
        for workers in [1, 3] {
            let ctx = OdinContext::with_workers(workers);
            let a = ctx.random(&[7, 4], 1);
            let b = ctx.random(&[4, 3], 2);
            let c = a.matmul(&b);
            assert_eq!(c.shape(), vec![7, 3]);
            let av = a.to_vec();
            let bv = b.to_vec();
            let cv = c.to_vec();
            for i in 0..7 {
                for j in 0..3 {
                    let expect: f64 = (0..4).map(|k| av[i * 4 + k] * bv[k * 3 + j]).sum();
                    assert!(
                        (cv[i * 3 + j] - expect).abs() < 1e-12,
                        "c[{i}][{j}] workers={workers}"
                    );
                }
            }
        }
    }

    #[test]
    fn matmul_identity() {
        let ctx = OdinContext::with_workers(2);
        let a = ctx.random(&[5, 5], 9);
        // identity from a table of from_vec? build via where-style: use
        // arange trick: I[i][j] = 1 if i == j
        let flat: Vec<f64> = (0..25)
            .map(|g| if g / 5 == g % 5 { 1.0 } else { 0.0 })
            .collect();
        let eye_flat = ctx.from_vec(&flat, Dist::Block);
        drop(eye_flat);
        // from_vec only makes 1-D arrays; build the 2-D identity worker-side
        let eye = ctx.zeros(&[5, 5], DType::F64);
        ctx.run_spmd(&[&eye], |scope, args| {
            let id = args[0];
            let map = scope.axis_map(id);
            let gids = map.my_gids();
            let buf = scope.local_mut(id).as_f64_mut();
            for (l, g) in gids.into_iter().enumerate() {
                buf[l * 5 + g] = 1.0;
            }
        });
        let c = a.matmul(&eye);
        assert_eq!(c.to_vec(), a.to_vec());
    }

    #[test]
    fn where_free_function() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.arange(6).astype(DType::F64);
        let mask = x.binary_scalar(2.5, BinOp::Gt, false);
        let y = ctx.full(&[6], -1.0, Dist::Block);
        let r = ctx.where_(&mask, &x, &y);
        assert_eq!(r.to_vec(), vec![-1.0, -1.0, -1.0, 3.0, 4.0, 5.0]);
    }
}
