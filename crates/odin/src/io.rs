//! Distributed file IO (§III-H): every worker writes/reads its own chunk
//! in parallel; the master only touches a small header. Files round-trip
//! across different worker counts because chunks are keyed by global row
//! ids, "full control to read or write any arbitrary distributed file
//! format".

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::array::DistArray;
use crate::buffer::Buffer;
use crate::context::OdinContext;
use crate::protocol::ArrayMeta;

fn header_path(base: &Path) -> PathBuf {
    base.with_extension("odin")
}

fn part_path(base: &Path, rank: usize) -> PathBuf {
    base.with_extension(format!("part{rank}"))
}

impl OdinContext {
    /// Save an array: one header (master) plus one chunk file per worker,
    /// written concurrently by the workers themselves.
    pub fn save(&self, arr: &DistArray<'_>, base: impl AsRef<Path>) -> std::io::Result<()> {
        let base: PathBuf = base.as_ref().to_path_buf();
        let meta = arr.meta();
        // header: meta + part count
        {
            let mut f = std::fs::File::create(header_path(&base))?;
            let payload = comm::encode_to_vec(&(
                meta.shape.clone(),
                match meta.dist {
                    crate::protocol::Dist::Block => 0u64,
                    crate::protocol::Dist::Cyclic => 1,
                    crate::protocol::Dist::BlockCyclic(b) => 2 + b as u64,
                },
                self.n_workers(),
            ));
            f.write_all(&payload)?;
        }
        let base2 = base.clone();
        self.run_spmd(&[arr], move |scope, args| {
            let id = args[0];
            let map = scope.axis_map(id);
            let payload = comm::encode_to_vec(&(map.my_gids(), scope.local(id).clone()));
            let path = part_path(&base2, scope.rank());
            std::fs::write(path, payload).expect("chunk write failed");
        });
        Ok(())
    }

    /// Load an array saved by [`Self::save`], with any worker count: each
    /// worker scans the chunk files and keeps the rows it owns under a
    /// block distribution.
    pub fn load(&self, base: impl AsRef<Path>) -> std::io::Result<DistArray<'_>> {
        let base: PathBuf = base.as_ref().to_path_buf();
        let mut bytes = Vec::new();
        std::fs::File::open(header_path(&base))?.read_to_end(&mut bytes)?;
        let (shape, _dist_code, n_parts): (Vec<usize>, u64, usize) =
            comm::decode_from_slice(&bytes)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        // probe one chunk for the dtype
        let probe = std::fs::read(part_path(&base, 0))?;
        let (_, probe_buf): (Vec<usize>, Buffer) = comm::decode_from_slice(&probe)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let dtype = probe_buf.dtype();
        let out = self.zeros(&shape, dtype);
        let meta: ArrayMeta = out.meta();
        let slab = meta.slab();
        let base2 = base.clone();
        self.run_spmd(&[&out], move |scope, args| {
            let id = args[0];
            let map = scope.axis_map(id);
            let mut parts: Vec<usize> = (0..n_parts).collect();
            // stagger the scan so workers do not all hit part 0 first
            parts.rotate_left(scope.rank() % n_parts.max(1));
            for p in parts {
                let bytes = std::fs::read(part_path(&base2, p)).expect("chunk read failed");
                let (gids, buf): (Vec<usize>, Buffer) =
                    comm::decode_from_slice(&bytes).expect("bad chunk encoding");
                let dst = scope.local_mut(id);
                // block maps answer ownership arithmetically; consecutive
                // owned gids are copied as one run
                let mut k = 0;
                while k < gids.len() {
                    match map.global_to_local(gids[k]) {
                        None => k += 1,
                        Some(l_dst) => {
                            let mut run = 1;
                            while k + run < gids.len()
                                && gids[k + run] == gids[k] + run
                                && map.global_to_local(gids[k + run]) == Some(l_dst + run)
                            {
                                run += 1;
                            }
                            copy_row(dst, l_dst * slab, &buf, k * slab, run * slab);
                            k += run;
                        }
                    }
                }
            }
        });
        Ok(out)
    }
}

fn copy_row(dst: &mut Buffer, dst_at: usize, src: &Buffer, src_at: usize, n: usize) {
    match (dst, src) {
        (Buffer::F64(d), Buffer::F64(s)) => {
            d[dst_at..dst_at + n].copy_from_slice(&s[src_at..src_at + n])
        }
        (Buffer::I64(d), Buffer::I64(s)) => {
            d[dst_at..dst_at + n].copy_from_slice(&s[src_at..src_at + n])
        }
        (Buffer::Bool(d), Buffer::Bool(s)) => {
            d[dst_at..dst_at + n].copy_from_slice(&s[src_at..src_at + n])
        }
        _ => panic!("chunk dtype mismatch"),
    }
}

/// Remove the files created by [`OdinContext::save`].
pub fn remove_saved(base: impl AsRef<Path>, n_parts: usize) {
    let base = base.as_ref();
    let _ = std::fs::remove_file(header_path(base));
    for r in 0..n_parts {
        let _ = std::fs::remove_file(part_path(base, r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DType;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("odin_io_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn roundtrip_same_worker_count() {
        let base = tmp("same");
        let ctx = OdinContext::with_workers(3);
        let x = ctx.random(&[20], 9);
        let orig = x.to_vec();
        ctx.save(&x, &base).unwrap();
        let y = ctx.load(&base).unwrap();
        assert_eq!(y.to_vec(), orig);
        remove_saved(&base, 3);
    }

    #[test]
    fn roundtrip_across_worker_counts() {
        let base = tmp("cross");
        let orig = {
            let ctx = OdinContext::with_workers(4);
            let x = ctx.random(&[25], 13);
            ctx.save(&x, &base).unwrap();
            x.to_vec()
        };
        {
            let ctx = OdinContext::with_workers(2);
            let y = ctx.load(&base).unwrap();
            assert_eq!(y.to_vec(), orig);
        }
        remove_saved(&base, 4);
    }

    #[test]
    fn integer_arrays_roundtrip() {
        let base = tmp("ints");
        let ctx = OdinContext::with_workers(2);
        let x = ctx.arange(15);
        ctx.save(&x, &base).unwrap();
        let y = ctx.load(&base).unwrap();
        assert_eq!(y.dtype(), DType::I64);
        assert_eq!(y.to_vec_i64(), x.to_vec_i64());
        remove_saved(&base, 2);
    }

    #[test]
    fn two_d_arrays_roundtrip() {
        let base = tmp("twod");
        let ctx = OdinContext::with_workers(3);
        let x = ctx.random(&[6, 5], 21);
        let orig = x.to_vec();
        ctx.save(&x, &base).unwrap();
        let y = ctx.load(&base).unwrap();
        assert_eq!(y.shape(), vec![6, 5]);
        assert_eq!(y.to_vec(), orig);
        remove_saved(&base, 3);
    }
}
