//! Whole-program trace capture and dataflow optimization (DESIGN §14).
//!
//! A [`Program`] records multi-statement lazy computations — expression
//! assignments, reductions, redistributes — into an interned dataflow
//! graph instead of executing them eagerly. [`Program::run`] then
//! optimizes across statements before touching the workers:
//!
//! - **cross-statement fusion**: producer/consumer elementwise statements
//!   with the same template geometry merge into one Seamless kernel (one
//!   [`Cmd::EvalKernelMulti`] launch materializes several arrays and
//!   folds several reductions),
//! - **CSE**: structural interning means a repeated expression fragment
//!   compiles and runs once,
//! - **DSE**: statements whose results are never read and never requested
//!   as outputs don't launch at all,
//! - **communication-avoiding scheduling**: the eager per-expression leaf
//!   redistribute done inside `Expr::eval` is deferred and pooled, so a
//!   non-conformable operand consumed by N statements moves at most once
//!   per target distribution (through the same cached-route redistribute
//!   machinery).
//!
//! Execution stays **bitwise-identical** to statement-at-a-time
//! [`Expr::eval`](crate::lazy::Expr::eval): fused kernels reuse the exact
//! same `Lowerer` emitters (same FP operation order per statement), and
//! fusing across a non-F64 intermediate inserts the materialize/stage
//! round-trip cast the eager path would have performed. The one
//! documented divergence: a reduction result consumed via
//! [`Program::reduce`] + [`PExpr::from`] is typed `F64`, while pasting
//! the same value back in as an integral `Expr::Scalar` literal would
//! infer `I64`.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::array::DistArray;
use crate::buffer::{binary_result_dtype, unary_result_dtype, DType};
use crate::context::OdinContext;
use crate::lazy::{powic_exponent, Lowerer};
use crate::protocol::{ArrayMeta, BinOp, Cmd, Dist, KernelOut, ReduceKind, UnaryOp};
use seamless::bytecode::{CompiledFunc, Instr, Reg, RegFile};
use seamless::Type;

/// Handle to a traced array statement (an assignment or redistribute);
/// feed it back into expressions via [`PExpr::from`], or request it as a
/// program output in [`Program::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Traced {
    stmt: usize,
}

/// Handle to a traced reduction; read its value from
/// [`ProgramRun::scalar`], or feed it into later statements via
/// [`PExpr::from`] (it becomes an f64 scalar parameter of the fused
/// kernel, resolved from the earlier launch's reply).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracedScalar {
    stmt: usize,
}

/// A lazy expression inside a [`Program`] trace: the owned counterpart of
/// [`Expr`](crate::lazy::Expr), extended with references to earlier
/// traced statements ([`Traced`]) and reductions ([`TracedScalar`]).
#[derive(Debug, Clone)]
pub struct PExpr {
    node: PNode,
}

#[derive(Debug, Clone)]
enum PNode {
    /// Index into the program's leaf table.
    Leaf(usize),
    Scalar(f64),
    /// Value of an earlier array statement.
    Ref(usize),
    /// Value of an earlier reduction statement.
    ScalarRef(usize),
    Unary(UnaryOp, Box<PNode>),
    Binary(BinOp, Box<PNode>, Box<PNode>),
}

impl PExpr {
    /// Wrap a constant.
    pub fn scalar(v: f64) -> Self {
        PExpr {
            node: PNode::Scalar(v),
        }
    }

    fn un(self, op: UnaryOp) -> Self {
        PExpr {
            node: PNode::Unary(op, Box::new(self.node)),
        }
    }

    /// Square root node.
    pub fn sqrt(self) -> Self {
        self.un(UnaryOp::Sqrt)
    }
    /// Sine node.
    pub fn sin(self) -> Self {
        self.un(UnaryOp::Sin)
    }
    /// Cosine node.
    pub fn cos(self) -> Self {
        self.un(UnaryOp::Cos)
    }
    /// Exponential node.
    pub fn exp(self) -> Self {
        self.un(UnaryOp::Exp)
    }
    /// Absolute-value node.
    pub fn abs(self) -> Self {
        self.un(UnaryOp::Abs)
    }
    /// Tangent node.
    pub fn tan(self) -> Self {
        self.un(UnaryOp::Tan)
    }
    /// Natural-logarithm node.
    pub fn ln(self) -> Self {
        self.un(UnaryOp::Log)
    }
    /// Floor node.
    pub fn floor(self) -> Self {
        self.un(UnaryOp::Floor)
    }
    /// Ceiling node.
    pub fn ceil(self) -> Self {
        self.un(UnaryOp::Ceil)
    }
    /// Power with a scalar exponent (small integral exponents
    /// strength-reduce exactly like the single-expression planes).
    pub fn pow(self, e: f64) -> Self {
        PExpr {
            node: PNode::Binary(BinOp::Pow, Box::new(self.node), Box::new(PNode::Scalar(e))),
        }
    }
    /// Elementwise maximum.
    pub fn max_with(self, rhs: PExpr) -> Self {
        PExpr {
            node: PNode::Binary(BinOp::Max, Box::new(self.node), Box::new(rhs.node)),
        }
    }
    /// Elementwise minimum.
    pub fn min_with(self, rhs: PExpr) -> Self {
        PExpr {
            node: PNode::Binary(BinOp::Min, Box::new(self.node), Box::new(rhs.node)),
        }
    }
}

impl From<Traced> for PExpr {
    fn from(t: Traced) -> Self {
        PExpr {
            node: PNode::Ref(t.stmt),
        }
    }
}

impl From<TracedScalar> for PExpr {
    fn from(s: TracedScalar) -> Self {
        PExpr {
            node: PNode::ScalarRef(s.stmt),
        }
    }
}

impl From<f64> for PExpr {
    fn from(v: f64) -> Self {
        PExpr::scalar(v)
    }
}

macro_rules! pexpr_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl std::ops::$trait for PExpr {
            type Output = PExpr;
            fn $method(self, rhs: PExpr) -> PExpr {
                PExpr {
                    node: PNode::Binary($op, Box::new(self.node), Box::new(rhs.node)),
                }
            }
        }
        impl std::ops::$trait<f64> for PExpr {
            type Output = PExpr;
            fn $method(self, rhs: f64) -> PExpr {
                PExpr {
                    node: PNode::Binary($op, Box::new(self.node), Box::new(PNode::Scalar(rhs))),
                }
            }
        }
    };
}

pexpr_binop!(Add, add, BinOp::Add);
pexpr_binop!(Sub, sub, BinOp::Sub);
pexpr_binop!(Mul, mul, BinOp::Mul);
pexpr_binop!(Div, div, BinOp::Div);
pexpr_binop!(Rem, rem, BinOp::Mod);

impl std::ops::Neg for PExpr {
    type Output = PExpr;
    fn neg(self) -> PExpr {
        self.un(UnaryOp::Neg)
    }
}

/// Structural identity of an interned dataflow node. Two statements that
/// build the same tree over the same operands share every node — that's
/// the CSE pass, paid at trace time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum NodeKey {
    Leaf(usize),
    Scalar(u64),
    Ref(usize),
    ScalarRef(usize),
    Unary(UnaryOp, usize),
    Binary(BinOp, usize, usize),
}

#[derive(Debug, Clone)]
struct Node {
    key: NodeKey,
    dtype: DType,
    /// Node id of the leftmost array operand below (or at) this node —
    /// the statement-template rule `Expr::eval` uses, propagated.
    tref: Option<usize>,
}

#[derive(Debug, Clone)]
enum StmtKind {
    Eval { root: usize },
    Reduce { root: usize, kind: ReduceKind },
    Redistribute { src: usize },
}

#[derive(Debug, Clone)]
struct Stmt {
    kind: StmtKind,
    /// Output meta: template geometry with the statement's result dtype
    /// (for reductions: the template geometry the fold runs at).
    out_meta: ArrayMeta,
}

/// Optimization decisions of one [`Program::run`], also mirrored into the
/// obs registry as `fusion.*` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramStats {
    /// Statements recorded in the trace.
    pub statements: u64,
    /// Fused kernel launches actually issued.
    pub kernel_launches: u64,
    /// Launches statement-at-a-time execution would have issued (one per
    /// recorded eval/reduce statement).
    pub baseline_launches: u64,
    /// Structurally repeated operation nodes that were interned instead
    /// of re-recorded (`fusion.cse_hits`).
    pub cse_hits: u64,
    /// Recorded statements dropped because nothing reads them
    /// (`fusion.dse_eliminated`).
    pub dse_eliminated: u64,
    /// Alignment redistributes actually issued.
    pub redistributes_issued: u64,
    /// Alignment redistributes statement-at-a-time execution would have
    /// issued (one per non-conformable operand per statement).
    pub baseline_redistributes: u64,
    /// Baseline redistributes avoided by pooling moves per (operand,
    /// distribution) pair (`fusion.redistributes_merged`).
    pub redistributes_merged: u64,
    /// Baseline launches avoided by fusion + CSE + DSE
    /// (`fusion.launches_saved`).
    pub launches_saved: u64,
    /// Elements moved by the issued alignment redistributes (counted via
    /// `dmap` owner maps).
    pub elems_moved: u64,
}

/// Results of one [`Program::run`]: the requested arrays, every traced
/// reduction value, and the optimizer's [`ProgramStats`].
pub struct ProgramRun<'c> {
    arrays: HashMap<usize, DistArray<'c>>,
    scalars: HashMap<usize, f64>,
    stats: ProgramStats,
}

impl<'c> ProgramRun<'c> {
    /// Take ownership of a requested output array. Panics if `t` wasn't
    /// in the `outputs` of [`Program::run`] or was already taken.
    pub fn array(&mut self, t: Traced) -> DistArray<'c> {
        self.arrays
            .remove(&t.stmt)
            .expect("statement was not requested as an output (or already taken)")
    }

    /// Value of a traced reduction.
    pub fn scalar(&self, s: TracedScalar) -> f64 {
        *self.scalars.get(&s.stmt).expect("unknown traced reduction")
    }

    /// The optimizer's decisions for this run.
    pub fn stats(&self) -> ProgramStats {
        self.stats
    }
}

/// Which array feeds a fused-kernel parameter: a program leaf or the
/// materialized output of an earlier statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ArrayInput {
    Leaf(usize),
    Ref(usize),
}

/// Distinct operands of one statement, in first-seen left-to-right order
/// (the parameter-binding order `Expr::lower` uses).
struct StmtInputs {
    arrays: Vec<ArrayInput>,
    scalars: Vec<usize>,
}

struct Group {
    /// Shared template geometry (dtype-free).
    t_meta: ArrayMeta,
    stmts: Vec<usize>,
}

enum Step {
    Kernel(usize),
    Redistribute(usize),
}

struct LoweredGroup {
    program: seamless::bytecode::Program,
    array_inputs: Vec<ArrayInput>,
    scalar_inputs: Vec<usize>,
    /// `(stmt, register)` per harvested output, in statement order.
    outs: Vec<(usize, Reg)>,
}

/// A recording scope for multi-statement lazy computation over one
/// [`OdinContext`]; create with [`OdinContext::trace`], execute with
/// [`Program::run`].
pub struct Program<'x, 'c> {
    ctx: &'c OdinContext,
    leaves: Vec<&'x DistArray<'c>>,
    leaf_slots: HashMap<u64, usize>,
    nodes: Vec<Node>,
    interned: HashMap<NodeKey, usize>,
    stmts: Vec<Stmt>,
    cse_hits: u64,
}

impl OdinContext {
    /// Open a whole-program trace: statements recorded on the returned
    /// [`Program`] execute together, optimized across statement
    /// boundaries, when [`Program::run`] is called.
    pub fn trace<'x>(&self) -> Program<'x, '_> {
        Program {
            ctx: self,
            leaves: Vec::new(),
            leaf_slots: HashMap::new(),
            nodes: Vec::new(),
            interned: HashMap::new(),
            stmts: Vec::new(),
            cse_hits: 0,
        }
    }
}

impl<'x, 'c> Program<'x, 'c> {
    /// Wrap an array operand (registered once per distinct array).
    pub fn leaf(&mut self, a: &'x DistArray<'c>) -> PExpr {
        let slot = match self.leaf_slots.get(&a.id()) {
            Some(&s) => s,
            None => {
                self.leaves.push(a);
                self.leaf_slots.insert(a.id(), self.leaves.len() - 1);
                self.leaves.len() - 1
            }
        };
        PExpr {
            node: PNode::Leaf(slot),
        }
    }

    /// Record an elementwise assignment; the result is usable in later
    /// statements via [`PExpr::from`] and requestable as an output.
    pub fn assign(&mut self, e: impl Into<PExpr>) -> Traced {
        let root = self.intern(&e.into().node);
        let out_meta = self.stmt_meta(root);
        self.stmts.push(Stmt {
            kind: StmtKind::Eval { root },
            out_meta,
        });
        Traced {
            stmt: self.stmts.len() - 1,
        }
    }

    /// Record a whole-array reduction over an expression (fused into the
    /// same kernel pass as the statements around it when possible).
    pub fn reduce(&mut self, e: impl Into<PExpr>, kind: ReduceKind) -> TracedScalar {
        let root = self.intern(&e.into().node);
        let mut out_meta = self.stmt_meta(root);
        out_meta.dtype = DType::F64;
        self.stmts.push(Stmt {
            kind: StmtKind::Reduce { root, kind },
            out_meta,
        });
        TracedScalar {
            stmt: self.stmts.len() - 1,
        }
    }

    /// Traced sum reduction.
    pub fn sum(&mut self, e: impl Into<PExpr>) -> TracedScalar {
        self.reduce(e, ReduceKind::Sum)
    }

    /// Traced max reduction.
    pub fn max(&mut self, e: impl Into<PExpr>) -> TracedScalar {
        self.reduce(e, ReduceKind::Max)
    }

    /// Traced min reduction.
    pub fn min(&mut self, e: impl Into<PExpr>) -> TracedScalar {
        self.reduce(e, ReduceKind::Min)
    }

    /// Record an explicit redistribute of an earlier statement's result.
    pub fn redistribute(&mut self, t: Traced, dist: Dist) -> Traced {
        let src = &self.stmts[t.stmt];
        assert!(
            !matches!(src.kind, StmtKind::Reduce { .. }),
            "cannot redistribute a reduction"
        );
        let out_meta = ArrayMeta {
            dist,
            ..src.out_meta.clone()
        };
        self.stmts.push(Stmt {
            kind: StmtKind::Redistribute { src: t.stmt },
            out_meta,
        });
        Traced {
            stmt: self.stmts.len() - 1,
        }
    }

    /// Template meta for a statement rooted at `root`: the leftmost array
    /// operand's geometry with the expression's result dtype — exactly
    /// the rule `Expr::eval` applies per statement.
    fn stmt_meta(&self, root: usize) -> ArrayMeta {
        let t = self.nodes[root]
            .tref
            .expect("traced statement needs at least one array operand");
        let t_meta = self.operand_meta(t);
        // Mirror Expr::align's shape assertion for every array operand.
        let inputs = self.node_inputs(root);
        for a in &inputs.arrays {
            assert_eq!(
                self.input_meta(*a).shape,
                t_meta.shape,
                "fused operands must share a shape"
            );
        }
        ArrayMeta {
            dtype: self.nodes[root].dtype,
            ..t_meta
        }
    }

    fn operand_meta(&self, node: usize) -> ArrayMeta {
        match self.nodes[node].key {
            NodeKey::Leaf(slot) => self.leaves[slot].meta(),
            NodeKey::Ref(s) => self.stmts[s].out_meta.clone(),
            _ => unreachable!("template node must be an array operand"),
        }
    }

    fn input_meta(&self, input: ArrayInput) -> ArrayMeta {
        match input {
            ArrayInput::Leaf(slot) => self.leaves[slot].meta(),
            ArrayInput::Ref(s) => self.stmts[s].out_meta.clone(),
        }
    }

    /// Intern one owned AST node into the shared graph, returning its id.
    /// Repeated operation nodes count as CSE hits.
    fn intern(&mut self, n: &PNode) -> usize {
        let (key, dtype, tref_child) = match n {
            PNode::Leaf(slot) => (NodeKey::Leaf(*slot), self.leaves[*slot].dtype(), None),
            PNode::Scalar(v) => {
                let dt = if v.fract() == 0.0 {
                    DType::I64
                } else {
                    DType::F64
                };
                (NodeKey::Scalar(v.to_bits()), dt, None)
            }
            PNode::Ref(s) => {
                assert!(
                    !matches!(self.stmts[*s].kind, StmtKind::Reduce { .. }),
                    "PExpr::from(Traced) requires an array statement"
                );
                (NodeKey::Ref(*s), self.stmts[*s].out_meta.dtype, None)
            }
            // Reductions resolve to f64 scalars on the master; see the
            // module docs for the (documented) dtype divergence from
            // pasting the value back in as an integral literal.
            PNode::ScalarRef(s) => {
                assert!(
                    matches!(self.stmts[*s].kind, StmtKind::Reduce { .. }),
                    "PExpr::from(TracedScalar) requires a reduction statement"
                );
                (NodeKey::ScalarRef(*s), DType::F64, None)
            }
            PNode::Unary(op, e) => {
                let c = self.intern(e);
                (
                    NodeKey::Unary(*op, c),
                    unary_result_dtype(*op, self.nodes[c].dtype),
                    self.nodes[c].tref,
                )
            }
            PNode::Binary(op, a, b) => {
                let ca = self.intern(a);
                let cb = self.intern(b);
                (
                    NodeKey::Binary(*op, ca, cb),
                    binary_result_dtype(*op, self.nodes[ca].dtype, self.nodes[cb].dtype),
                    self.nodes[ca].tref.or(self.nodes[cb].tref),
                )
            }
        };
        if let Some(&id) = self.interned.get(&key) {
            if matches!(key, NodeKey::Unary(..) | NodeKey::Binary(..)) {
                self.cse_hits += 1;
            }
            return id;
        }
        let id = self.nodes.len();
        let tref = match key {
            NodeKey::Leaf(_) | NodeKey::Ref(_) => Some(id),
            _ => tref_child,
        };
        self.nodes.push(Node { key, dtype, tref });
        self.interned.insert(key, id);
        id
    }

    /// Distinct array/scalar operands reachable from `root`, first-seen
    /// left-to-right (DFS matching `Lowerer::go`'s emission order).
    fn node_inputs(&self, root: usize) -> StmtInputs {
        let mut arrays = Vec::new();
        let mut scalars = Vec::new();
        let mut seen_arr = HashSet::new();
        let mut seen_sc = HashSet::new();
        let mut visited = HashSet::new();
        self.walk_inputs(
            root,
            &mut visited,
            &mut |inp| {
                if seen_arr.insert(inp) {
                    arrays.push(inp);
                }
            },
            &mut |s| {
                if seen_sc.insert(s) {
                    scalars.push(s);
                }
            },
        );
        StmtInputs { arrays, scalars }
    }

    fn walk_inputs(
        &self,
        node: usize,
        visited: &mut HashSet<usize>,
        on_array: &mut impl FnMut(ArrayInput),
        on_scalar: &mut impl FnMut(usize),
    ) {
        if !visited.insert(node) {
            return;
        }
        match self.nodes[node].key {
            NodeKey::Leaf(slot) => on_array(ArrayInput::Leaf(slot)),
            NodeKey::Ref(s) => on_array(ArrayInput::Ref(s)),
            NodeKey::ScalarRef(s) => on_scalar(s),
            NodeKey::Scalar(_) => {}
            NodeKey::Unary(_, c) => self.walk_inputs(c, visited, on_array, on_scalar),
            NodeKey::Binary(_, a, b) => {
                self.walk_inputs(a, visited, on_array, on_scalar);
                self.walk_inputs(b, visited, on_array, on_scalar);
            }
        }
    }

    /// Execute the trace. `outputs` names the array statements the caller
    /// wants materialized and returned; every traced reduction is always
    /// computed. Consumes the program (a trace runs once).
    pub fn run(self, outputs: &[Traced]) -> ProgramRun<'c> {
        let requested: HashSet<usize> = outputs.iter().map(|t| t.stmt).collect();
        for &s in &requested {
            assert!(
                !matches!(self.stmts[s].kind, StmtKind::Reduce { .. }),
                "reductions are read via ProgramRun::scalar, not as array outputs"
            );
        }

        // ---- Liveness (DSE) --------------------------------------------
        let mut live = vec![false; self.stmts.len()];
        let mut stack: Vec<usize> = (0..self.stmts.len())
            .filter(|&i| {
                requested.contains(&i) || matches!(self.stmts[i].kind, StmtKind::Reduce { .. })
            })
            .collect();
        while let Some(s) = stack.pop() {
            if std::mem::replace(&mut live[s], true) {
                continue;
            }
            match self.stmts[s].kind {
                StmtKind::Eval { root } | StmtKind::Reduce { root, .. } => {
                    let inputs = self.node_inputs(root);
                    for a in inputs.arrays {
                        if let ArrayInput::Ref(d) = a {
                            stack.push(d);
                        }
                    }
                    for d in inputs.scalars {
                        stack.push(d);
                    }
                }
                StmtKind::Redistribute { src } => stack.push(src),
            }
        }
        let dse_eliminated = live.iter().filter(|&&l| !l).count() as u64;

        // ---- Grouping (cross-statement fusion) -------------------------
        let mut steps: Vec<Step> = Vec::new();
        let mut groups: Vec<Group> = Vec::new();
        let mut stmt_step: HashMap<usize, usize> = HashMap::new();
        let mut stmt_group: HashMap<usize, usize> = HashMap::new();
        for (s, alive) in live.iter().enumerate() {
            if !alive {
                continue;
            }
            match self.stmts[s].kind {
                StmtKind::Redistribute { .. } => {
                    steps.push(Step::Redistribute(s));
                    stmt_step.insert(s, steps.len() - 1);
                }
                StmtKind::Eval { root } | StmtKind::Reduce { root, .. } => {
                    let sig = sig_of(&self.stmts[s].out_meta);
                    let inputs = self.node_inputs(root);
                    let mut min_step = 0usize;
                    for a in &inputs.arrays {
                        if let ArrayInput::Ref(d) = a {
                            let dstep = stmt_step[d];
                            let same_group = matches!(self.stmts[*d].kind, StmtKind::Eval { .. })
                                && sig_of(&self.stmts[*d].out_meta) == sig;
                            min_step = min_step.max(if same_group { dstep } else { dstep + 1 });
                        }
                    }
                    for d in &inputs.scalars {
                        min_step = min_step.max(stmt_step[d] + 1);
                    }
                    // Join the latest compatible kernel group at or after
                    // min_step, else open a new one. Arrays are SSA, so
                    // any group not before a dependency is safe.
                    let mut joined = None;
                    for idx in (min_step..steps.len()).rev() {
                        if let Step::Kernel(g) = steps[idx] {
                            if sig_of(&groups[g].t_meta) == sig {
                                joined = Some((idx, g));
                                break;
                            }
                        }
                    }
                    let (step_idx, g) = match joined {
                        Some((idx, g)) => {
                            groups[g].stmts.push(s);
                            (idx, g)
                        }
                        None => {
                            groups.push(Group {
                                t_meta: ArrayMeta {
                                    dtype: DType::F64,
                                    ..self.stmts[s].out_meta.clone()
                                },
                                stmts: vec![s],
                            });
                            steps.push(Step::Kernel(groups.len() - 1));
                            (steps.len() - 1, groups.len() - 1)
                        }
                    };
                    stmt_step.insert(s, step_idx);
                    stmt_group.insert(s, g);
                }
            }
        }

        // ---- Materialization decisions ---------------------------------
        // An eval statement becomes a worker array iff something outside
        // its own fused kernel reads it: a requested output, a
        // redistribute, or a consumer in a different group.
        let mut mat_needed: HashSet<usize> = requested.clone();
        for (s, alive) in live.iter().enumerate() {
            if !alive {
                continue;
            }
            match self.stmts[s].kind {
                StmtKind::Redistribute { src } => {
                    mat_needed.insert(src);
                }
                StmtKind::Eval { root } | StmtKind::Reduce { root, .. } => {
                    for a in self.node_inputs(root).arrays {
                        if let ArrayInput::Ref(d) = a {
                            if stmt_group.get(&d) != stmt_group.get(&s)
                                || matches!(self.stmts[d].kind, StmtKind::Redistribute { .. })
                            {
                                mat_needed.insert(d);
                            }
                        }
                    }
                }
            }
        }

        // ---- Baseline accounting (what statement-at-a-time would do) ---
        let mut baseline_launches = 0u64;
        let mut baseline_redistributes = 0u64;
        for s in 0..self.stmts.len() {
            if let StmtKind::Eval { root } | StmtKind::Reduce { root, .. } = self.stmts[s].kind {
                baseline_launches += 1;
                let t_meta = &self.stmts[s].out_meta;
                for a in self.node_inputs(root).arrays {
                    if !self.input_meta(a).conformable(t_meta) {
                        baseline_redistributes += 1;
                    }
                }
            }
        }

        // ---- Lower each group to one fused kernel ----------------------
        let lowered: Vec<LoweredGroup> = groups
            .iter()
            .map(|g| self.lower_group(g, &stmt_group, &mat_needed))
            .collect();

        // ---- Execute ---------------------------------------------------
        let ctx = self.ctx;
        let mut mat: HashMap<usize, DistArray<'c>> = HashMap::new();
        let mut aligned: HashMap<(ArrayInput, Dist), DistArray<'c>> = HashMap::new();
        let mut scalar_vals: HashMap<usize, f64> = HashMap::new();
        let mut pendings: VecDeque<(crate::context::Pending<'c, Vec<f64>>, Vec<usize>)> =
            VecDeque::new();
        let mut redistributes_issued = 0u64;
        let mut elems_moved = 0u64;
        let mut kernel_launches = 0u64;

        for step in &steps {
            match *step {
                Step::Redistribute(s) => {
                    let StmtKind::Redistribute { src } = self.stmts[s].kind else {
                        unreachable!()
                    };
                    let out = mat[&src].redistribute(self.stmts[s].out_meta.dist);
                    mat.insert(s, out);
                }
                Step::Kernel(g) => {
                    let lg = &lowered[g];
                    let group = &groups[g];
                    // Pooled alignment: each (operand, distribution) pair
                    // moves at most once for the whole program.
                    let mut input_ids: Vec<u64> = Vec::with_capacity(lg.array_inputs.len());
                    for &inp in &lg.array_inputs {
                        let src_meta = self.input_meta(inp);
                        if src_meta.conformable(&group.t_meta) {
                            input_ids.push(match inp {
                                ArrayInput::Leaf(slot) => self.leaves[slot].id(),
                                ArrayInput::Ref(d) => mat[&d].id(),
                            });
                        } else {
                            let key = (inp, group.t_meta.dist);
                            if let Some(copy) = aligned.get(&key) {
                                input_ids.push(copy.id());
                            } else {
                                let src_arr: &DistArray<'c> = match inp {
                                    ArrayInput::Leaf(slot) => self.leaves[slot],
                                    ArrayInput::Ref(d) => &mat[&d],
                                };
                                let copy = src_arr.redistribute(group.t_meta.dist);
                                redistributes_issued += 1;
                                elems_moved +=
                                    moved_elems(&src_meta, group.t_meta.dist, ctx.n_workers());
                                input_ids.push(copy.id());
                                aligned.insert(key, copy);
                            }
                        }
                    }
                    // Resolve scalar parameters, draining earlier replies
                    // in order until each value is known.
                    let mut scalars: Vec<f64> = Vec::with_capacity(lg.scalar_inputs.len());
                    for &d in &lg.scalar_inputs {
                        while !scalar_vals.contains_key(&d) {
                            let (p, idxs) = pendings
                                .pop_front()
                                .expect("scheduler ordered a scalar before its reduction");
                            let vals = p.wait();
                            for (i, stmt) in idxs.into_iter().enumerate() {
                                scalar_vals.insert(stmt, vals[i]);
                            }
                        }
                        scalars.push(scalar_vals[&d]);
                    }
                    let kernel = ctx.register_kernel_program(lg.program.clone());
                    let template = input_ids[0];
                    let mut outs: Vec<KernelOut> = Vec::with_capacity(lg.outs.len());
                    let mut reduce_stmts: Vec<usize> = Vec::new();
                    for &(s, reg) in &lg.outs {
                        match self.stmts[s].kind {
                            StmtKind::Reduce { kind, .. } => {
                                reduce_stmts.push(s);
                                outs.push(KernelOut::Reduce { kind, reg });
                            }
                            StmtKind::Eval { .. } => {
                                let id = ctx.alloc_id();
                                ctx.record_meta(id, self.stmts[s].out_meta.clone());
                                mat.insert(s, DistArray::from_id(ctx, id));
                                outs.push(KernelOut::Array {
                                    id,
                                    dtype: self.stmts[s].out_meta.dtype,
                                    reg,
                                });
                            }
                            StmtKind::Redistribute { .. } => unreachable!(),
                        }
                    }
                    let cmd = Cmd::EvalKernelMulti {
                        kernel,
                        template,
                        inputs: input_ids,
                        scalars,
                        outs,
                        // Fused groups compute in f64; workers tier up to
                        // the probed native multi-output body when the
                        // compile plane is available.
                        dtype: DType::F64,
                        native: true,
                    };
                    kernel_launches += 1;
                    if reduce_stmts.is_empty() {
                        ctx.send_cmd(&cmd);
                    } else {
                        let pending = ctx.dispatch_single::<Vec<f64>>(&cmd);
                        pendings.push_back((pending, reduce_stmts));
                    }
                }
            }
        }
        while let Some((p, idxs)) = pendings.pop_front() {
            let vals = p.wait();
            for (i, stmt) in idxs.into_iter().enumerate() {
                scalar_vals.insert(stmt, vals[i]);
            }
        }

        let stats = ProgramStats {
            statements: self.stmts.len() as u64,
            kernel_launches,
            baseline_launches,
            cse_hits: self.cse_hits,
            dse_eliminated,
            redistributes_issued,
            baseline_redistributes,
            redistributes_merged: baseline_redistributes.saturating_sub(redistributes_issued),
            launches_saved: baseline_launches.saturating_sub(kernel_launches),
            elems_moved,
        };
        if obs::enabled() {
            let g = obs::global();
            g.counter("fusion.cse_hits").add(stats.cse_hits);
            g.counter("fusion.dse_eliminated").add(stats.dse_eliminated);
            g.counter("fusion.redistributes_merged")
                .add(stats.redistributes_merged);
            g.counter("fusion.launches_saved").add(stats.launches_saved);
        }

        // Keep only the requested arrays; everything else (fused
        // intermediates, aligned copies) frees now — after every command
        // has been issued, so the FIFO worker queues stay consistent.
        let arrays: HashMap<usize, DistArray<'c>> = requested
            .iter()
            .map(|&s| (s, mat.remove(&s).expect("requested output not produced")))
            .collect();
        drop(mat);
        drop(aligned);
        ProgramRun {
            arrays,
            scalars: scalar_vals,
            stats,
        }
    }

    /// Lower one fused group to straight-line bytecode through the shared
    /// [`Lowerer`] emitters — per statement, exactly the instructions
    /// `Expr::lower` would emit, with shared subexpressions emitted once
    /// and cross-statement refs either read from the producer's register
    /// (plus the materialize/stage cast when its dtype isn't F64) or
    /// bound as parameters.
    fn lower_group(
        &self,
        group: &Group,
        stmt_group: &HashMap<usize, usize>,
        mat_needed: &HashSet<usize>,
    ) -> LoweredGroup {
        let this_group = stmt_group[&group.stmts[0]];
        let mut array_inputs: Vec<ArrayInput> = Vec::new();
        let mut seen_arr: HashSet<ArrayInput> = HashSet::new();
        let mut scalar_inputs: Vec<usize> = Vec::new();
        let mut seen_sc: HashSet<usize> = HashSet::new();
        let internal = |inp: &ArrayInput| matches!(inp, ArrayInput::Ref(d) if stmt_group.get(d) == Some(&this_group));
        for &s in &group.stmts {
            let (StmtKind::Eval { root } | StmtKind::Reduce { root, .. }) = self.stmts[s].kind
            else {
                unreachable!()
            };
            let inputs = self.node_inputs(root);
            for a in inputs.arrays {
                if !internal(&a) && seen_arr.insert(a) {
                    array_inputs.push(a);
                }
            }
            for d in inputs.scalars {
                if seen_sc.insert(d) {
                    scalar_inputs.push(d);
                }
            }
        }
        assert!(
            !array_inputs.is_empty(),
            "a fused group needs at least one external array operand"
        );
        let n_arr = array_inputs.len();
        let n_params = n_arr + scalar_inputs.len();
        let arr_reg: HashMap<ArrayInput, Reg> = array_inputs
            .iter()
            .enumerate()
            .map(|(k, &a)| (a, k as Reg))
            .collect();
        let sc_reg: HashMap<usize, Reg> = scalar_inputs
            .iter()
            .enumerate()
            .map(|(k, &d)| (d, (n_arr + k) as Reg))
            .collect();
        let mut lw = Lowerer::with_params(HashMap::new(), n_params);
        let mut memo: HashMap<usize, Reg> = HashMap::new();
        let mut root_regs: HashMap<usize, Reg> = HashMap::new();
        for &s in &group.stmts {
            let (StmtKind::Eval { root } | StmtKind::Reduce { root, .. }) = self.stmts[s].kind
            else {
                unreachable!()
            };
            let r = self.emit_node(root, &mut lw, &mut memo, &arr_reg, &sc_reg, &root_regs);
            root_regs.insert(s, r);
        }
        // Harvested outputs: materialized evals + reductions, statement
        // order. Fully fused intermediates ship no output at all.
        let mut outs: Vec<(usize, Reg)> = Vec::new();
        for &s in &group.stmts {
            let keep = match self.stmts[s].kind {
                StmtKind::Reduce { .. } => true,
                StmtKind::Eval { .. } => mat_needed.contains(&s),
                StmtKind::Redistribute { .. } => unreachable!(),
            };
            if keep {
                outs.push((s, root_regs[&s]));
            }
        }
        assert!(!outs.is_empty(), "fused group produced nothing observable");
        let ret = outs.last().expect("non-empty").1;
        lw.instrs.push(Instr::Ret(Some((RegFile::F, ret))));
        let f = CompiledFunc {
            // Same name as Expr::lower: a single-statement group produces
            // byte-identical code and re-uses its kernel registration.
            name: "expr".into(),
            params: (0..n_params).map(|k| (RegFile::F, k as Reg)).collect(),
            param_types: vec![Type::Float; n_params],
            ret: Type::Float,
            reg_counts: [lw.n_f as usize, lw.n_i as usize, 0, 0],
            instrs: lw.instrs,
        };
        LoweredGroup {
            program: seamless::bytecode::Program {
                funcs: vec![f],
                externs: Vec::new(),
            },
            array_inputs,
            scalar_inputs,
            outs,
        }
    }

    /// Emit one interned node (memoized — CSE at the register level);
    /// returns the F register holding its value.
    fn emit_node(
        &self,
        node: usize,
        lw: &mut Lowerer,
        memo: &mut HashMap<usize, Reg>,
        arr_reg: &HashMap<ArrayInput, Reg>,
        sc_reg: &HashMap<usize, Reg>,
        root_regs: &HashMap<usize, Reg>,
    ) -> Reg {
        if let Some(&r) = memo.get(&node) {
            return r;
        }
        let r = match self.nodes[node].key {
            NodeKey::Leaf(slot) => arr_reg[&ArrayInput::Leaf(slot)],
            NodeKey::Scalar(bits) => lw.emit_const(f64::from_bits(bits)),
            NodeKey::ScalarRef(d) => sc_reg[&d],
            NodeKey::Ref(d) => match root_regs.get(&d) {
                // Producer fused into this very kernel: read its root
                // register through the materialize/stage cast so the
                // value matches the eager materialize-then-stage route.
                Some(&src) => lw.emit_materialize_cast(src, self.stmts[d].out_meta.dtype),
                None => arr_reg[&ArrayInput::Ref(d)],
            },
            NodeKey::Unary(op, c) => {
                let s = self.emit_node(c, lw, memo, arr_reg, sc_reg, root_regs);
                lw.emit_unary(op, s)
            }
            NodeKey::Binary(op, a, b) => {
                let pow_const = if op == BinOp::Pow {
                    match self.nodes[b].key {
                        NodeKey::Scalar(bits) => powic_exponent(f64::from_bits(bits)),
                        _ => None,
                    }
                } else {
                    None
                };
                if let Some(e) = pow_const {
                    let ar = self.emit_node(a, lw, memo, arr_reg, sc_reg, root_regs);
                    lw.emit_pow_const(ar, e)
                } else {
                    let ar = self.emit_node(a, lw, memo, arr_reg, sc_reg, root_regs);
                    let br = self.emit_node(b, lw, memo, arr_reg, sc_reg, root_regs);
                    lw.emit_binary(op, ar, br)
                }
            }
        };
        memo.insert(node, r);
        r
    }
}

fn sig_of(meta: &ArrayMeta) -> (Vec<usize>, usize, Dist) {
    (meta.shape.clone(), meta.axis, meta.dist)
}

/// Elements a redistribute of `src_meta` to `dist` must move, measured
/// through `dmap` owner maps (rows whose owner changes × slab size).
fn moved_elems(src_meta: &ArrayMeta, dist: Dist, n_workers: usize) -> u64 {
    let rows = src_meta.shape[src_meta.axis];
    let a = dist_map(src_meta.dist, rows, n_workers);
    let b = dist_map(dist, rows, n_workers);
    let moved = a.moved_count(&b).unwrap_or(rows);
    (moved * src_meta.slab()) as u64
}

fn dist_map(d: Dist, n: usize, p: usize) -> dmap::DistMap {
    match d {
        Dist::Block => dmap::DistMap::block(n, p, 0),
        Dist::Cyclic => dmap::DistMap::cyclic(n, p, 0),
        Dist::BlockCyclic(b) => dmap::DistMap::block_cyclic(n, b, p, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lazy::Expr;

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn traced_single_statement_matches_expr_eval_bitwise() {
        let ctx = OdinContext::with_workers(3);
        let x = ctx.linspace(0.0, 2.0, 101);
        let y = ctx.linspace(1.0, 3.0, 101);
        let eager = ((Expr::leaf(&x).pow(2.0) + Expr::leaf(&y).pow(2.0)).sqrt() * 0.5).eval();

        let mut p = ctx.trace();
        let (xl, yl) = (p.leaf(&x), p.leaf(&y));
        let t = p.assign((xl.pow(2.0) + yl.pow(2.0)).sqrt() * 0.5);
        let mut run = p.run(&[t]);
        let traced = run.array(t);
        assert_eq!(bits(&traced.to_vec()), bits(&eager.to_vec()));
        // Single-statement groups lower to byte-identical kernels, so the
        // second plane re-used the first plane's registration.
        assert_eq!(run.stats().kernel_launches, 1);
    }

    #[test]
    fn single_statement_group_reuses_the_expr_kernel_registration() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.linspace(0.0, 1.0, 64);
        let _warm = (Expr::leaf(&x) * 2.0 + 1.0).eval();
        ctx.reset_stats();
        let mut p = ctx.trace();
        let xl = p.leaf(&x);
        let t = p.assign(xl * 2.0 + 1.0);
        let mut run = p.run(&[t]);
        let _a = run.array(t);
        // One EvalKernelMulti broadcast and nothing else: the bytecode
        // matched the already-registered Expr kernel.
        let st = ctx.stats();
        assert_eq!(st.ctrl_msgs, 2, "re-registration happened");
    }

    #[test]
    fn cse_and_dse_are_counted_and_results_match() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.linspace(0.25, 4.0, 53);
        let eager = {
            let shared = || Expr::leaf(&x).sqrt() * 2.0;
            ((shared() + 1.0).eval(), (shared() * 3.0).eval())
        };
        let mut p = ctx.trace();
        let xl = p.leaf(&x);
        let shared = xl.clone().sqrt() * 2.0;
        let a = p.assign(shared.clone() + 1.0);
        let b = p.assign(shared * 3.0);
        let dead = p.assign(xl * 123.0); // never read, never requested
        let _ = dead;
        let mut run = p.run(&[a, b]);
        assert_eq!(bits(&run.array(a).to_vec()), bits(&eager.0.to_vec()));
        assert_eq!(bits(&run.array(b).to_vec()), bits(&eager.1.to_vec()));
        let st = run.stats();
        assert!(st.cse_hits >= 2, "sqrt and mul should intern: {st:?}");
        assert_eq!(st.dse_eliminated, 1);
        assert_eq!(st.kernel_launches, 1, "both statements fuse: {st:?}");
        assert_eq!(st.launches_saved, 2);
    }

    #[test]
    fn leaf_moved_at_most_once_across_statements() {
        let ctx = OdinContext::with_workers(3);
        let x = ctx.arange_f64(0.0, 1.0, 24, Dist::Block);
        let c = ctx.arange_f64(0.0, 2.0, 24, Dist::Cyclic);
        // Eager: each statement re-aligns the cyclic leaf.
        let e1 = (Expr::leaf(&x) + Expr::leaf(&c)).eval();
        let e2 = (Expr::leaf(&x) * Expr::leaf(&c)).sum();

        let mut p = ctx.trace();
        let (xl, cl) = (p.leaf(&x), p.leaf(&c));
        let t1 = p.assign(xl.clone() + cl.clone());
        let r2 = p.sum(xl * cl);
        let mut run = p.run(&[t1]);
        assert_eq!(bits(&run.array(t1).to_vec()), bits(&e1.to_vec()));
        assert_eq!(run.scalar(r2).to_bits(), e2.to_bits());
        let st = run.stats();
        assert_eq!(st.baseline_redistributes, 2);
        assert_eq!(st.redistributes_issued, 1);
        assert_eq!(st.redistributes_merged, 1);
        assert!(st.elems_moved > 0);
    }

    #[test]
    fn scalar_refs_flow_between_fused_kernels() {
        let ctx = OdinContext::with_workers(3);
        let r = ctx.linspace(0.3, 1.7, 41);
        let pvec = ctx.linspace(0.9, 0.1, 41);
        // Eager two-phase: alpha = sum(r·r)/sum(p·p); y = r − p·alpha.
        let rr = (Expr::leaf(&r) * Expr::leaf(&r)).sum();
        let pp = (Expr::leaf(&pvec) * Expr::leaf(&pvec)).sum();
        let alpha = rr / pp;
        let eager = (Expr::leaf(&r) - Expr::leaf(&pvec) * alpha).eval();

        let mut p = ctx.trace();
        let (rl, pl) = (p.leaf(&r), p.leaf(&pvec));
        let rr_t = p.sum(rl.clone() * rl.clone());
        let pp_t = p.sum(pl.clone() * pl.clone());
        let alpha_e = PExpr::from(rr_t) / PExpr::from(pp_t);
        let y = p.assign(rl - pl * alpha_e);
        let mut run = p.run(&[y]);
        assert_eq!(run.scalar(rr_t).to_bits(), rr.to_bits());
        assert_eq!(run.scalar(pp_t).to_bits(), pp.to_bits());
        assert_eq!(bits(&run.array(y).to_vec()), bits(&eager.to_vec()));
        // Two launches: the fused reduction pair, then the update (which
        // must wait for the scalars).
        assert_eq!(run.stats().kernel_launches, 2);
    }

    #[test]
    fn explicit_redistribute_statements_execute_in_order() {
        let ctx = OdinContext::with_workers(3);
        let x = ctx.arange_f64(0.0, 1.0, 18, Dist::Block);
        let mut p = ctx.trace();
        let xl = p.leaf(&x);
        let t = p.assign(xl * 2.0);
        let moved = p.redistribute(t, Dist::Cyclic);
        let back = p.assign(PExpr::from(moved) + 1.0);
        let mut run = p.run(&[moved, back]);
        let m = run.array(moved);
        assert_eq!(m.meta().dist, Dist::Cyclic);
        let expect: Vec<f64> = x.to_vec().iter().map(|v| v * 2.0).collect();
        assert_eq!(m.to_vec(), expect);
        let expect2: Vec<f64> = expect.iter().map(|v| v + 1.0).collect();
        assert_eq!(run.array(back).to_vec(), expect2);
    }

    #[test]
    fn fusing_across_integer_intermediates_matches_materialization() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.arange(37);
        // x*3 is integer-typed; the consumer must see the same values as
        // if it had been materialized as I64 and re-staged.
        let eager_mid = (Expr::leaf(&x) * 3.0).eval();
        assert_eq!(eager_mid.dtype(), DType::I64);
        let eager = (Expr::leaf(&eager_mid) * 0.5 + 0.25).eval();

        let mut p = ctx.trace();
        let xl = p.leaf(&x);
        let mid = p.assign(xl * 3.0);
        let out = p.assign(PExpr::from(mid) * 0.5 + 0.25);
        let mut run = p.run(&[out]);
        assert_eq!(bits(&run.array(out).to_vec()), bits(&eager.to_vec()));
        // Both statements still fused into one launch.
        assert_eq!(run.stats().kernel_launches, 1);
    }
}
