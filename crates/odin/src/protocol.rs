//! The master↔worker control protocol.
//!
//! Every global-mode operation becomes one small, Wire-encoded [`Cmd`]
//! broadcast to all workers. The paper (§III-B) claims these control
//! messages carry "very little to no array data … at most tens of bytes";
//! experiment E2 measures exactly the encodings defined here.

use comm::{CommError, Cursor, Wire};

use crate::buffer::{Buffer, DType};
use crate::slicing::SliceSpec;

/// Distribution of the distributed axis (mirrors [`dmap::Distribution`]
/// but is wire-encodable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dist {
    /// Contiguous blocks.
    Block,
    /// Round-robin elements.
    Cyclic,
    /// Round-robin blocks of the given size.
    BlockCyclic(usize),
}

impl Dist {
    /// Convert to the dmap vocabulary.
    pub fn to_dmap(self) -> dmap::Distribution {
        match self {
            Dist::Block => dmap::Distribution::Block,
            Dist::Cyclic => dmap::Distribution::Cyclic,
            Dist::BlockCyclic(b) => dmap::Distribution::BlockCyclic(b),
        }
    }
}

/// Metadata describing a distributed array: its global shape, which axis
/// is distributed, how, and the element dtype.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayMeta {
    /// Global shape.
    pub shape: Vec<usize>,
    /// The distributed axis.
    pub axis: usize,
    /// Distribution along that axis.
    pub dist: Dist,
    /// Element type.
    pub dtype: DType,
}

impl ArrayMeta {
    /// Total global element count.
    pub fn n_global(&self) -> usize {
        self.shape.iter().product()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Elements per index of the distributed axis (the "slab" size).
    pub fn slab(&self) -> usize {
        self.shape
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != self.axis)
            .map(|(_, &d)| d)
            .product()
    }

    /// The [`dmap::DistMap`] of the distributed axis for worker `rank` of
    /// `n_workers`.
    pub fn axis_map(&self, n_workers: usize, rank: usize) -> dmap::DistMap {
        dmap::DistMap::with_distribution(
            self.dist.to_dmap(),
            self.shape[self.axis],
            n_workers,
            rank,
        )
    }

    /// Local element count on worker `rank`.
    pub fn local_len(&self, n_workers: usize, rank: usize) -> usize {
        self.axis_map(n_workers, rank).my_count() * self.slab()
    }

    /// Two arrays are conformable when their segments line up with no
    /// communication: same shape, axis and distribution.
    pub fn conformable(&self, other: &ArrayMeta) -> bool {
        self.shape == other.shape && self.axis == other.axis && self.dist == other.dist
    }
}

/// Unary elementwise operations (a representative subset of NumPy's
/// unary ufuncs, which the paper says are "trivially parallelized").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Logical not.
    Not,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Tangent.
    Tan,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Square root.
    Sqrt,
    /// Floor.
    Floor,
    /// Ceiling.
    Ceil,
}

/// Binary elementwise operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// True division (always float, as in NumPy).
    Div,
    /// Power.
    Pow,
    /// Remainder.
    Mod,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
    /// `hypot(x, y)` — the paper's running example (§III-C).
    Hypot,
    /// `atan2(y, x)`.
    Atan2,
    /// Equality comparison.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

/// Whole-array reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceKind {
    /// Sum of elements.
    Sum,
    /// Product of elements.
    Prod,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Count of nonzero (true) elements.
    CountNonzero,
}

/// How a freshly created array is filled.
#[derive(Debug, Clone, PartialEq)]
pub enum Fill {
    /// All zeros.
    Zeros,
    /// Constant value (cast to the meta's dtype).
    Full(f64),
    /// `start + step * gid` along the flattened global index.
    Arange {
        /// First value.
        start: f64,
        /// Increment per element.
        step: f64,
    },
    /// `n` evenly spaced points from `start` to `stop` inclusive.
    Linspace {
        /// First value.
        start: f64,
        /// Last value.
        stop: f64,
    },
    /// Deterministic pseudo-random uniform [0,1): value depends only on
    /// (seed, global index), so results are identical for any worker
    /// count (the paper's per-node seeds made results depend on the node
    /// count; determinism is the better engineering choice and E3 relies
    /// on it).
    Random {
        /// RNG seed.
        seed: u64,
    },
}

/// One step of a fused elementwise program (RPN over a per-element stack):
/// the compiled form of a lazy expression (§III loop fusion).
#[derive(Debug, Clone, PartialEq)]
pub enum FusedOp {
    /// Push the element of the given array.
    PushArray(u64),
    /// Push a constant.
    PushScalar(f64),
    /// Apply a unary op to the stack top.
    Unary(UnaryOp),
    /// Apply a binary op to the top two entries (pushed left-to-right).
    Binary(BinOp),
}

/// One worker→master reply. Control replies and small results travel as
/// encoded wire bytes; whole array segments (the `Fetch` gather — the
/// heaviest master-bound mover) at or above the comm's zero-copy
/// threshold travel as a typed segment whose [`Buffer`] is *moved*
/// through the reply channel — no encode on the worker, no decode on the
/// master. [`ReplyMsg::wire_len`] reports the encoded-equivalent size
/// either way, so master-side byte accounting is arm-independent.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyMsg {
    /// Encoded reply payload (the classic wire path).
    Bytes(Vec<u8>),
    /// A transferable array segment: the global ids this worker owns and
    /// the segment data, in `gids` order.
    Segment {
        /// Global row ids, in segment order.
        gids: Vec<usize>,
        /// Segment storage, moved (not serialized) to the master.
        data: Buffer,
    },
}

impl ReplyMsg {
    /// Encoded-equivalent size in bytes: what this reply would occupy on
    /// the wire. Used for master-side traffic accounting so stats do not
    /// depend on which arm a reply took.
    pub fn wire_len(&self) -> usize {
        match self {
            ReplyMsg::Bytes(b) => b.len(),
            ReplyMsg::Segment { gids, data } => gids.wire_size() + data.wire_size(),
        }
    }

    /// Collapse to encoded bytes. Free for the `Bytes` arm; a `Segment`
    /// is encoded as the `(gids, data)` tuple (wire-compatible with what
    /// the encode path would have sent), for consumers that only
    /// understand bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            ReplyMsg::Bytes(b) => b,
            ReplyMsg::Segment { gids, data } => {
                let mut buf = Vec::with_capacity(gids.wire_size() + data.wire_size());
                gids.encode(&mut buf);
                data.encode(&mut buf);
                buf
            }
        }
    }
}

/// A control command broadcast from the master to every worker.
#[derive(Debug, Clone, PartialEq)]
pub enum Cmd {
    /// Allocate and fill a new array.
    Create {
        /// Fresh array id.
        id: u64,
        /// Metadata.
        meta: ArrayMeta,
        /// Fill rule.
        fill: Fill,
    },
    /// Adopt master-provided data (the one *data-carrying* command).
    SetData {
        /// Fresh array id.
        id: u64,
        /// Metadata.
        meta: ArrayMeta,
        /// This worker's segment (each worker receives its own copy).
        data: Buffer,
    },
    /// `out = op(a)` elementwise.
    Unary {
        /// Output id.
        out: u64,
        /// Input id.
        a: u64,
        /// Operation.
        op: UnaryOp,
    },
    /// `out = a op b` elementwise (operands must be conformable — the
    /// master inserts redistributions beforehand when they are not).
    Binary {
        /// Output id.
        out: u64,
        /// Left input id.
        a: u64,
        /// Right input id.
        b: u64,
        /// Operation.
        op: BinOp,
    },
    /// `out = a op scalar` (or `scalar op a`).
    BinaryScalar {
        /// Output id.
        out: u64,
        /// Array input id.
        a: u64,
        /// Broadcast scalar.
        scalar: f64,
        /// Operation.
        op: BinOp,
        /// Whether the scalar is the left operand.
        scalar_left: bool,
    },
    /// `out = a.astype(dtype)`.
    AsType {
        /// Output id.
        out: u64,
        /// Input id.
        a: u64,
        /// Target dtype.
        dtype: DType,
    },
    /// Materialize `a` under a new distribution (workers alltoallv).
    Redistribute {
        /// Output id.
        out: u64,
        /// Input id.
        a: u64,
        /// New distribution.
        dist: Dist,
        /// New distributed axis.
        axis: usize,
    },
    /// Materialize a slice of `a` (one spec per dimension).
    Slice {
        /// Output id.
        out: u64,
        /// Input id.
        a: u64,
        /// Per-dimension slice specs.
        specs: Vec<SliceSpec>,
    },
    /// Evaluate a fused elementwise program over conformable inputs.
    EvalFused {
        /// Output id.
        out: u64,
        /// Template array id (defines the output meta before dtype).
        template: u64,
        /// RPN program.
        program: Vec<FusedOp>,
    },
    /// Reduce `a`; worker 0 replies with the scalar (axis `None`) or the
    /// workers cooperatively build array `out` (axis `Some`).
    Reduce {
        /// Input id.
        a: u64,
        /// Reduction.
        kind: ReduceKind,
        /// Axis to reduce over, or `None` for a full reduction.
        axis: Option<usize>,
        /// Output id when `axis` is `Some`.
        out: u64,
    },
    /// Every worker sends its segment (with axis gids) to the master.
    Fetch {
        /// Input id.
        a: u64,
    },
    /// Call a registered local function (local mode, §III-C).
    CallLocal {
        /// Registered function id.
        fn_id: u64,
        /// Array-id arguments.
        arrays: Vec<u64>,
        /// Scalar arguments.
        scalars: Vec<f64>,
    },
    /// Drop an array.
    Free {
        /// Array id.
        id: u64,
    },
    /// Synchronization point: every worker replies with `()`.
    Ping,
    /// Stop the worker loop.
    Shutdown,
    /// `out[i] = cond[i] ? a[i] : b[i]` (all conformable) — `np.where`.
    Select {
        /// Output id.
        out: u64,
        /// Condition array id.
        cond: u64,
        /// Taken where cond is true.
        a: u64,
        /// Taken where cond is false.
        b: u64,
    },
    /// Inclusive prefix sum along a 1-D array (distributed scan).
    CumSum {
        /// Output id.
        out: u64,
        /// Input id.
        a: u64,
    },
    /// Index of the extreme element; worker 0 replies `(index, value)`.
    ArgReduce {
        /// Input id.
        a: u64,
        /// True for argmax, false for argmin.
        is_max: bool,
    },
    /// Concatenate two 1-D arrays into `out` (block distributed).
    Concat {
        /// Output id.
        out: u64,
        /// First input.
        a: u64,
        /// Second input.
        b: u64,
    },
    /// `out = a · b` for 2-D arrays: `a` stays block-row distributed,
    /// `b` is allgathered (suitable for tall-×-skinny products).
    MatMul {
        /// Output id.
        out: u64,
        /// Left operand `[m, k]`.
        a: u64,
        /// Right operand `[k, n]`.
        b: u64,
    },
    /// Ship compiled Seamless bytecode to every worker once; subsequent
    /// [`Cmd::EvalKernel`] invokes reference it by id (the kernel plane,
    /// DESIGN §10). This is the only command besides `SetData` whose size
    /// scales with its payload — it is paid once per kernel per pool.
    RegisterKernel {
        /// Fresh kernel id.
        id: u64,
        /// Extern-free compiled program (entry function at index 0).
        program: seamless::bytecode::Program,
    },
    /// Run a registered kernel elementwise over conformable inputs —
    /// tens of bytes of control traffic per invoke, like every other
    /// command. With `reduce` set, the map and the reduction run as one
    /// pass with no materialized intermediate (`out` is then unused and
    /// worker 0 replies with the scalar).
    EvalKernel {
        /// Output id (ignored when `reduce` is `Some`).
        out: u64,
        /// Registered kernel id.
        kernel: u64,
        /// Template array id (defines the output meta before dtype).
        template: u64,
        /// Input array ids, in kernel-parameter order.
        inputs: Vec<u64>,
        /// Output dtype (the master decides; workers astype).
        out_dtype: DType,
        /// Fused reduction tail, if any.
        reduce: Option<ReduceKind>,
        /// Compute dtype — which monomorphization runs: `F64` stages f64
        /// rows through `run_f64_chunk`, `I64`/`Bool` stage i64 rows
        /// through `run_i64_chunk`. Independent of `out_dtype`.
        dtype: DType,
        /// Whether the worker may dispatch the probed native tier for
        /// this invoke (`false` pins the VM, e.g. `Tier::Vm` kernels).
        native: bool,
    },
    /// Run a registered kernel once and harvest *several* register rows:
    /// the whole-program optimizer (DESIGN §14) fuses a group of traced
    /// statements into one function, so one launch can materialize many
    /// arrays and fold many reductions. Workers reply with the reduction
    /// scalars (rank 0, in `outs` order) iff any [`KernelOut::Reduce`]
    /// is present.
    EvalKernelMulti {
        /// Registered kernel id.
        kernel: u64,
        /// Template array id (defines the shared output meta).
        template: u64,
        /// Input array ids, in kernel array-parameter order.
        inputs: Vec<u64>,
        /// Scalar parameter values (resolved reduction results), in
        /// kernel scalar-parameter order after the array parameters.
        scalars: Vec<f64>,
        /// What to harvest from the evaluated register file.
        outs: Vec<KernelOut>,
        /// Compute dtype of the fused body (traces are f64 today, but
        /// the tag keeps the two kernel commands symmetric on the wire).
        dtype: DType,
        /// Whether the worker may dispatch the probed native tier.
        native: bool,
    },
}

/// One harvested output of a fused multi-statement kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelOut {
    /// Materialize a float-register row as a new distributed array.
    Array {
        /// Output array id.
        id: u64,
        /// Output dtype (workers astype the raw f64 row).
        dtype: DType,
        /// Float register holding the statement's root value.
        reg: u16,
    },
    /// Fold a float-register row through a whole-array reduction.
    Reduce {
        /// Reduction kind.
        kind: ReduceKind,
        /// Float register holding the reduced expression's raw value.
        reg: u16,
    },
}

impl Wire for KernelOut {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            KernelOut::Array { id, dtype, reg } => {
                buf.push(0);
                id.encode(buf);
                dtype.encode(buf);
                reg.encode(buf);
            }
            KernelOut::Reduce { kind, reg } => {
                buf.push(1);
                kind.encode(buf);
                reg.encode(buf);
            }
        }
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        match u8::decode(cur)? {
            0 => Ok(KernelOut::Array {
                id: u64::decode(cur)?,
                dtype: DType::decode(cur)?,
                reg: u16::decode(cur)?,
            }),
            1 => Ok(KernelOut::Reduce {
                kind: ReduceKind::decode(cur)?,
                reg: u16::decode(cur)?,
            }),
            b => Err(CommError::Decode(format!("bad KernelOut byte {b}"))),
        }
    }
}

// ---- Wire impls -----------------------------------------------------------

macro_rules! wire_enum_unit {
    ($t:ty, $($variant:ident = $b:expr),* $(,)?) => {
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.push(match self { $(<$t>::$variant => $b),* });
            }
            fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
                match u8::decode(cur)? {
                    $($b => Ok(<$t>::$variant),)*
                    b => Err(CommError::Decode(format!(
                        "bad {} byte {b}", stringify!($t)
                    ))),
                }
            }
        }
    };
}

wire_enum_unit!(
    UnaryOp,
    Neg = 0,
    Abs = 1,
    Not = 2,
    Sin = 3,
    Cos = 4,
    Tan = 5,
    Exp = 6,
    Log = 7,
    Sqrt = 8,
    Floor = 9,
    Ceil = 10
);
wire_enum_unit!(
    BinOp,
    Add = 0,
    Sub = 1,
    Mul = 2,
    Div = 3,
    Pow = 4,
    Mod = 5,
    Max = 6,
    Min = 7,
    Hypot = 8,
    Atan2 = 9,
    Eq = 10,
    Ne = 11,
    Lt = 12,
    Le = 13,
    Gt = 14,
    Ge = 15,
    And = 16,
    Or = 17
);
wire_enum_unit!(
    ReduceKind,
    Sum = 0,
    Prod = 1,
    Min = 2,
    Max = 3,
    CountNonzero = 4
);

impl Wire for Dist {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Dist::Block => buf.push(0),
            Dist::Cyclic => buf.push(1),
            Dist::BlockCyclic(b) => {
                buf.push(2);
                b.encode(buf);
            }
        }
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        match u8::decode(cur)? {
            0 => Ok(Dist::Block),
            1 => Ok(Dist::Cyclic),
            2 => Ok(Dist::BlockCyclic(usize::decode(cur)?)),
            b => Err(CommError::Decode(format!("bad dist byte {b}"))),
        }
    }
}

impl Wire for ArrayMeta {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.shape.encode(buf);
        self.axis.encode(buf);
        self.dist.encode(buf);
        self.dtype.encode(buf);
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        Ok(ArrayMeta {
            shape: Vec::decode(cur)?,
            axis: usize::decode(cur)?,
            dist: Dist::decode(cur)?,
            dtype: DType::decode(cur)?,
        })
    }
}

impl Wire for Fill {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Fill::Zeros => buf.push(0),
            Fill::Full(v) => {
                buf.push(1);
                v.encode(buf);
            }
            Fill::Arange { start, step } => {
                buf.push(2);
                start.encode(buf);
                step.encode(buf);
            }
            Fill::Linspace { start, stop } => {
                buf.push(3);
                start.encode(buf);
                stop.encode(buf);
            }
            Fill::Random { seed } => {
                buf.push(4);
                seed.encode(buf);
            }
        }
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        match u8::decode(cur)? {
            0 => Ok(Fill::Zeros),
            1 => Ok(Fill::Full(f64::decode(cur)?)),
            2 => Ok(Fill::Arange {
                start: f64::decode(cur)?,
                step: f64::decode(cur)?,
            }),
            3 => Ok(Fill::Linspace {
                start: f64::decode(cur)?,
                stop: f64::decode(cur)?,
            }),
            4 => Ok(Fill::Random {
                seed: u64::decode(cur)?,
            }),
            b => Err(CommError::Decode(format!("bad fill byte {b}"))),
        }
    }
}

impl Wire for FusedOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            FusedOp::PushArray(id) => {
                buf.push(0);
                id.encode(buf);
            }
            FusedOp::PushScalar(v) => {
                buf.push(1);
                v.encode(buf);
            }
            FusedOp::Unary(op) => {
                buf.push(2);
                op.encode(buf);
            }
            FusedOp::Binary(op) => {
                buf.push(3);
                op.encode(buf);
            }
        }
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        match u8::decode(cur)? {
            0 => Ok(FusedOp::PushArray(u64::decode(cur)?)),
            1 => Ok(FusedOp::PushScalar(f64::decode(cur)?)),
            2 => Ok(FusedOp::Unary(UnaryOp::decode(cur)?)),
            3 => Ok(FusedOp::Binary(BinOp::decode(cur)?)),
            b => Err(CommError::Decode(format!("bad fusedop byte {b}"))),
        }
    }
}

impl Wire for Cmd {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Cmd::Create { id, meta, fill } => {
                buf.push(0);
                id.encode(buf);
                meta.encode(buf);
                fill.encode(buf);
            }
            Cmd::SetData { id, meta, data } => {
                buf.push(1);
                id.encode(buf);
                meta.encode(buf);
                data.encode(buf);
            }
            Cmd::Unary { out, a, op } => {
                buf.push(2);
                out.encode(buf);
                a.encode(buf);
                op.encode(buf);
            }
            Cmd::Binary { out, a, b, op } => {
                buf.push(3);
                out.encode(buf);
                a.encode(buf);
                b.encode(buf);
                op.encode(buf);
            }
            Cmd::BinaryScalar {
                out,
                a,
                scalar,
                op,
                scalar_left,
            } => {
                buf.push(4);
                out.encode(buf);
                a.encode(buf);
                scalar.encode(buf);
                op.encode(buf);
                scalar_left.encode(buf);
            }
            Cmd::AsType { out, a, dtype } => {
                buf.push(5);
                out.encode(buf);
                a.encode(buf);
                dtype.encode(buf);
            }
            Cmd::Redistribute { out, a, dist, axis } => {
                buf.push(6);
                out.encode(buf);
                a.encode(buf);
                dist.encode(buf);
                axis.encode(buf);
            }
            Cmd::Slice { out, a, specs } => {
                buf.push(7);
                out.encode(buf);
                a.encode(buf);
                specs.encode(buf);
            }
            Cmd::EvalFused {
                out,
                template,
                program,
            } => {
                buf.push(8);
                out.encode(buf);
                template.encode(buf);
                program.encode(buf);
            }
            Cmd::Reduce { a, kind, axis, out } => {
                buf.push(9);
                a.encode(buf);
                kind.encode(buf);
                axis.map(|x| x as u64).encode(buf);
                out.encode(buf);
            }
            Cmd::Fetch { a } => {
                buf.push(10);
                a.encode(buf);
            }
            Cmd::CallLocal {
                fn_id,
                arrays,
                scalars,
            } => {
                buf.push(11);
                fn_id.encode(buf);
                arrays.encode(buf);
                scalars.encode(buf);
            }
            Cmd::Free { id } => {
                buf.push(12);
                id.encode(buf);
            }
            Cmd::Ping => buf.push(13),
            Cmd::Shutdown => buf.push(14),
            Cmd::Select { out, cond, a, b } => {
                buf.push(15);
                out.encode(buf);
                cond.encode(buf);
                a.encode(buf);
                b.encode(buf);
            }
            Cmd::CumSum { out, a } => {
                buf.push(16);
                out.encode(buf);
                a.encode(buf);
            }
            Cmd::ArgReduce { a, is_max } => {
                buf.push(17);
                a.encode(buf);
                is_max.encode(buf);
            }
            Cmd::Concat { out, a, b } => {
                buf.push(18);
                out.encode(buf);
                a.encode(buf);
                b.encode(buf);
            }
            Cmd::MatMul { out, a, b } => {
                buf.push(19);
                out.encode(buf);
                a.encode(buf);
                b.encode(buf);
            }
            Cmd::RegisterKernel { id, program } => {
                buf.push(20);
                id.encode(buf);
                program.encode(buf);
            }
            Cmd::EvalKernel {
                out,
                kernel,
                template,
                inputs,
                out_dtype,
                reduce,
                dtype,
                native,
            } => {
                buf.push(21);
                out.encode(buf);
                kernel.encode(buf);
                template.encode(buf);
                inputs.encode(buf);
                out_dtype.encode(buf);
                reduce.encode(buf);
                dtype.encode(buf);
                native.encode(buf);
            }
            Cmd::EvalKernelMulti {
                kernel,
                template,
                inputs,
                scalars,
                outs,
                dtype,
                native,
            } => {
                buf.push(22);
                kernel.encode(buf);
                template.encode(buf);
                inputs.encode(buf);
                scalars.encode(buf);
                outs.encode(buf);
                dtype.encode(buf);
                native.encode(buf);
            }
        }
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        match u8::decode(cur)? {
            0 => Ok(Cmd::Create {
                id: u64::decode(cur)?,
                meta: ArrayMeta::decode(cur)?,
                fill: Fill::decode(cur)?,
            }),
            1 => Ok(Cmd::SetData {
                id: u64::decode(cur)?,
                meta: ArrayMeta::decode(cur)?,
                data: Buffer::decode(cur)?,
            }),
            2 => Ok(Cmd::Unary {
                out: u64::decode(cur)?,
                a: u64::decode(cur)?,
                op: UnaryOp::decode(cur)?,
            }),
            3 => Ok(Cmd::Binary {
                out: u64::decode(cur)?,
                a: u64::decode(cur)?,
                b: u64::decode(cur)?,
                op: BinOp::decode(cur)?,
            }),
            4 => Ok(Cmd::BinaryScalar {
                out: u64::decode(cur)?,
                a: u64::decode(cur)?,
                scalar: f64::decode(cur)?,
                op: BinOp::decode(cur)?,
                scalar_left: bool::decode(cur)?,
            }),
            5 => Ok(Cmd::AsType {
                out: u64::decode(cur)?,
                a: u64::decode(cur)?,
                dtype: DType::decode(cur)?,
            }),
            6 => Ok(Cmd::Redistribute {
                out: u64::decode(cur)?,
                a: u64::decode(cur)?,
                dist: Dist::decode(cur)?,
                axis: usize::decode(cur)?,
            }),
            7 => Ok(Cmd::Slice {
                out: u64::decode(cur)?,
                a: u64::decode(cur)?,
                specs: Vec::decode(cur)?,
            }),
            8 => Ok(Cmd::EvalFused {
                out: u64::decode(cur)?,
                template: u64::decode(cur)?,
                program: Vec::decode(cur)?,
            }),
            9 => Ok(Cmd::Reduce {
                a: u64::decode(cur)?,
                kind: ReduceKind::decode(cur)?,
                axis: Option::<u64>::decode(cur)?.map(|x| x as usize),
                out: u64::decode(cur)?,
            }),
            10 => Ok(Cmd::Fetch {
                a: u64::decode(cur)?,
            }),
            11 => Ok(Cmd::CallLocal {
                fn_id: u64::decode(cur)?,
                arrays: Vec::decode(cur)?,
                scalars: Vec::decode(cur)?,
            }),
            12 => Ok(Cmd::Free {
                id: u64::decode(cur)?,
            }),
            13 => Ok(Cmd::Ping),
            14 => Ok(Cmd::Shutdown),
            15 => Ok(Cmd::Select {
                out: u64::decode(cur)?,
                cond: u64::decode(cur)?,
                a: u64::decode(cur)?,
                b: u64::decode(cur)?,
            }),
            16 => Ok(Cmd::CumSum {
                out: u64::decode(cur)?,
                a: u64::decode(cur)?,
            }),
            17 => Ok(Cmd::ArgReduce {
                a: u64::decode(cur)?,
                is_max: bool::decode(cur)?,
            }),
            18 => Ok(Cmd::Concat {
                out: u64::decode(cur)?,
                a: u64::decode(cur)?,
                b: u64::decode(cur)?,
            }),
            19 => Ok(Cmd::MatMul {
                out: u64::decode(cur)?,
                a: u64::decode(cur)?,
                b: u64::decode(cur)?,
            }),
            20 => Ok(Cmd::RegisterKernel {
                id: u64::decode(cur)?,
                program: seamless::bytecode::Program::decode(cur)?,
            }),
            21 => Ok(Cmd::EvalKernel {
                out: u64::decode(cur)?,
                kernel: u64::decode(cur)?,
                template: u64::decode(cur)?,
                inputs: Vec::decode(cur)?,
                out_dtype: DType::decode(cur)?,
                reduce: Option::<ReduceKind>::decode(cur)?,
                dtype: DType::decode(cur)?,
                native: bool::decode(cur)?,
            }),
            22 => Ok(Cmd::EvalKernelMulti {
                kernel: u64::decode(cur)?,
                template: u64::decode(cur)?,
                inputs: Vec::decode(cur)?,
                scalars: Vec::decode(cur)?,
                outs: Vec::decode(cur)?,
                dtype: DType::decode(cur)?,
                native: bool::decode(cur)?,
            }),
            b => Err(CommError::Decode(format!("bad cmd byte {b}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm::{decode_from_slice, encode_to_vec};

    fn meta() -> ArrayMeta {
        ArrayMeta {
            shape: vec![100, 4],
            axis: 0,
            dist: Dist::Block,
            dtype: DType::F64,
        }
    }

    fn tiny_program() -> seamless::bytecode::Program {
        let m = seamless::parser::parse_module("def k(x, y):\n    return hypot(x, y)\n").unwrap();
        seamless::compile::compile_program(&m, "k", &[seamless::Type::Float, seamless::Type::Float])
            .unwrap()
    }

    #[test]
    fn meta_geometry() {
        let m = meta();
        assert_eq!(m.n_global(), 400);
        assert_eq!(m.slab(), 4);
        assert_eq!(m.ndim(), 2);
        let map = m.axis_map(3, 0);
        assert_eq!(map.my_count(), 34);
        assert_eq!(m.local_len(3, 0), 136);
    }

    #[test]
    fn conformability() {
        let a = meta();
        let mut b = meta();
        assert!(a.conformable(&b));
        b.dist = Dist::Cyclic;
        assert!(!a.conformable(&b));
        let mut c = meta();
        c.dtype = DType::I64; // dtype does NOT affect conformability
        assert!(a.conformable(&c));
    }

    #[test]
    fn cmd_roundtrips() {
        let cmds = vec![
            Cmd::Create {
                id: 7,
                meta: meta(),
                fill: Fill::Linspace {
                    start: 0.0,
                    stop: 1.0,
                },
            },
            Cmd::Unary {
                out: 8,
                a: 7,
                op: UnaryOp::Sqrt,
            },
            Cmd::Binary {
                out: 9,
                a: 7,
                b: 8,
                op: BinOp::Hypot,
            },
            Cmd::BinaryScalar {
                out: 10,
                a: 9,
                scalar: 2.5,
                op: BinOp::Pow,
                scalar_left: false,
            },
            Cmd::Redistribute {
                out: 11,
                a: 10,
                dist: Dist::BlockCyclic(16),
                axis: 0,
            },
            Cmd::Slice {
                out: 12,
                a: 11,
                specs: vec![SliceSpec::new(1, 99, 1), SliceSpec::new(0, 4, 2)],
            },
            Cmd::EvalFused {
                out: 13,
                template: 7,
                program: vec![
                    FusedOp::PushArray(7),
                    FusedOp::PushScalar(2.0),
                    FusedOp::Binary(BinOp::Pow),
                    FusedOp::Unary(UnaryOp::Sqrt),
                ],
            },
            Cmd::Reduce {
                a: 13,
                kind: ReduceKind::Sum,
                axis: Some(1),
                out: 14,
            },
            Cmd::Reduce {
                a: 13,
                kind: ReduceKind::Max,
                axis: None,
                out: 0,
            },
            Cmd::Fetch { a: 14 },
            Cmd::CallLocal {
                fn_id: 3,
                arrays: vec![7, 14],
                scalars: vec![1.5],
            },
            Cmd::Free { id: 7 },
            Cmd::Ping,
            Cmd::Shutdown,
            Cmd::SetData {
                id: 20,
                meta: meta(),
                data: Buffer::F64(vec![1.0, 2.0]),
            },
            Cmd::AsType {
                out: 21,
                a: 20,
                dtype: DType::I64,
            },
            Cmd::RegisterKernel {
                id: 1,
                program: tiny_program(),
            },
            Cmd::EvalKernel {
                out: 22,
                kernel: 1,
                template: 7,
                inputs: vec![7, 8],
                out_dtype: DType::F64,
                reduce: Some(ReduceKind::Sum),
                dtype: DType::F64,
                native: true,
            },
            Cmd::EvalKernel {
                out: 23,
                kernel: 2,
                template: 7,
                inputs: vec![7],
                out_dtype: DType::Bool,
                reduce: None,
                dtype: DType::I64,
                native: false,
            },
        ];
        for cmd in cmds {
            let bytes = encode_to_vec(&cmd);
            let back: Cmd = decode_from_slice(&bytes).unwrap();
            assert_eq!(back, cmd);
        }
    }

    #[test]
    fn control_commands_are_small() {
        // The paper's claim: control messages are "at most tens of bytes".
        let ops = vec![
            encode_to_vec(&Cmd::Unary {
                out: u64::MAX,
                a: u64::MAX - 1,
                op: UnaryOp::Sqrt,
            }),
            encode_to_vec(&Cmd::Binary {
                out: 1,
                a: 2,
                b: 3,
                op: BinOp::Add,
            }),
            encode_to_vec(&Cmd::Reduce {
                a: 1,
                kind: ReduceKind::Sum,
                axis: None,
                out: 0,
            }),
            encode_to_vec(&Cmd::Create {
                id: 1,
                meta: ArrayMeta {
                    shape: vec![1_000_000_000_000],
                    axis: 0,
                    dist: Dist::Block,
                    dtype: DType::F64,
                },
                fill: Fill::Random { seed: 42 },
            }),
        ];
        for bytes in ops {
            assert!(
                bytes.len() <= 64,
                "control message too big: {} bytes",
                bytes.len()
            );
        }
    }

    #[test]
    fn kernel_invokes_are_small() {
        // The kernel plane's claim: bytecode ships once via RegisterKernel;
        // every subsequent invoke is under 100 bytes of control traffic
        // even with several inputs and a reduction tail.
        let invoke = encode_to_vec(&Cmd::EvalKernel {
            out: u64::MAX,
            kernel: u64::MAX - 1,
            template: u64::MAX - 2,
            inputs: vec![1, 2, 3],
            out_dtype: DType::F64,
            reduce: Some(ReduceKind::Sum),
            dtype: DType::F64,
            native: true,
        });
        assert!(
            invoke.len() < 100,
            "kernel invoke too big: {} bytes",
            invoke.len()
        );
    }

    #[test]
    fn eval_kernel_multi_roundtrips_and_stays_small() {
        // The whole-program launch command: several materialized arrays
        // plus reduction tails out of one kernel run, still control-sized.
        let cmd = Cmd::EvalKernelMulti {
            kernel: 7,
            template: u64::MAX - 3,
            inputs: vec![10, 11, 12],
            scalars: vec![0.5, -3.25],
            outs: vec![
                KernelOut::Array {
                    id: 100,
                    dtype: DType::F64,
                    reg: 4,
                },
                KernelOut::Array {
                    id: 101,
                    dtype: DType::I64,
                    reg: 9,
                },
                KernelOut::Reduce {
                    kind: ReduceKind::Sum,
                    reg: 6,
                },
            ],
            dtype: DType::F64,
            native: true,
        };
        let bytes = encode_to_vec(&cmd);
        assert_eq!(decode_from_slice::<Cmd>(&bytes).unwrap(), cmd);
        assert!(
            bytes.len() < 128,
            "multi-out invoke too big: {} bytes",
            bytes.len()
        );
    }
}
