//! Local mode (§III-C): user functions that run on every worker against
//! the local segments of distributed arrays, with direct worker-to-worker
//! communication — the `@odin.local` decorator analog.
//!
//! ```
//! use odin::{OdinContext, DType};
//! use std::sync::Arc;
//!
//! let ctx = OdinContext::with_workers(2);
//! let x = ctx.ones(&[8], DType::F64);
//! // "decorate": broadcast the function object to all workers
//! let double = ctx.register_local(Arc::new(|scope, args, _scalars| {
//!     let data = scope.local_mut(args[0]);
//!     for v in data.as_f64_mut() {
//!         *v *= 2.0;
//!     }
//! }));
//! // global-mode call of the local function
//! ctx.call_local(double, &[x.id()], &[]);
//! assert_eq!(x.to_vec(), vec![2.0; 8]);
//! ```

use std::sync::Arc;

use crate::array::DistArray;
use crate::buffer::Buffer;
use crate::context::{LocalFn, OdinContext, WorkerScope};
use crate::protocol::ArrayMeta;

impl OdinContext {
    /// Register and immediately invoke a local function once — the common
    /// "run this on every segment now" pattern.
    pub fn run_local(&self, arrays: &[&DistArray<'_>], scalars: &[f64], f: LocalFn) {
        let id = self.register_local(f);
        let ids: Vec<u64> = arrays.iter().map(|a| a.id()).collect();
        self.call_local(id, &ids, scalars);
    }

    /// Run an SPMD closure across the worker pool with full access to the
    /// worker scopes (the escape hatch used by the solver bridge, §III-E).
    /// Blocks until **every** worker finishes (not just worker 0 — side
    /// effects like chunk files must be complete when this returns).
    pub fn run_spmd(
        &self,
        arrays: &[&DistArray<'_>],
        f: impl Fn(&mut WorkerScope<'_>, &[u64]) + Send + Sync + 'static,
    ) {
        let wrapped: LocalFn = Arc::new(move |scope, args, _scalars| {
            f(scope, args);
            scope.reply(Vec::new());
        });
        let id = self.register_local(wrapped);
        let ids: Vec<u64> = arrays.iter().map(|a| a.id()).collect();
        self.call_local(id, &ids, &[]);
        let _ = self.collect_replies_pub();
    }

    /// Create an uninitialized (zeros) array handle whose segments a local
    /// function will fill — lets local code produce new global arrays.
    pub fn placeholder_like(&self, like: &DistArray<'_>) -> DistArray<'_> {
        let meta = like.meta();
        self.zeros_dist(&meta.shape, meta.dtype, meta.dist)
    }
}

/// Helpers local functions commonly need on the worker side.
impl WorkerScope<'_> {
    /// The halo exchange the paper's §III-G example needs, hand-written:
    /// returns `(left_ghost, right_ghost)` of a 1-D block-distributed
    /// array — each worker trades boundary values with its neighbors
    /// directly (no master involvement).
    pub fn exchange_boundary_1d(&mut self, id: u64) -> (Option<f64>, Option<f64>) {
        let meta: ArrayMeta = self.meta(id).clone();
        assert_eq!(meta.ndim(), 1);
        assert_eq!(meta.dist, crate::protocol::Dist::Block);
        let map = self.axis_map(id);
        let rank = self.rank();
        let p = self.n_workers();
        let (first, last) = {
            let buf = self.local(id);
            if buf.is_empty() {
                (None, None)
            } else {
                (Some(buf.get_f64(0)), Some(buf.get_f64(buf.len() - 1)))
            }
        };
        const HALO_TAG: comm::Tag = 0x2FFF_0001;
        // Post both sends nonblocking, then both receives; sends to the
        // two neighbors overlap with each other and with the receives.
        // Empty ranks forward nothing; for simplicity this helper
        // requires non-empty segments when p > 1.
        let mut left_ghost = None;
        let mut right_ghost = None;
        if p > 1 {
            assert!(
                map.my_count() > 0,
                "halo helper requires non-empty segments"
            );
            let mut sreqs = Vec::with_capacity(2);
            if rank > 0 {
                sreqs.push(
                    self.comm
                        .isend(rank - 1, HALO_TAG, &first.unwrap())
                        .expect("halo send"),
                );
            }
            if rank + 1 < p {
                sreqs.push(
                    self.comm
                        .isend(rank + 1, HALO_TAG, &last.unwrap())
                        .expect("halo send"),
                );
            }
            if rank + 1 < p {
                let (v, _) = self
                    .comm
                    .recv::<f64>(comm::Src::Rank(rank + 1), HALO_TAG)
                    .expect("halo recv");
                right_ghost = Some(v);
            }
            if rank > 0 {
                let (v, _) = self
                    .comm
                    .recv::<f64>(comm::Src::Rank(rank - 1), HALO_TAG)
                    .expect("halo recv");
                left_ghost = Some(v);
            }
            self.comm.waitall(sreqs).expect("halo send wait");
        }
        (left_ghost, right_ghost)
    }

    /// Replace the segment of `out` (which must be conformable with `a`'s
    /// meta minus one element — caller manages shapes) with `values`.
    pub fn overwrite_f64(&mut self, id: u64, values: Vec<f64>) {
        let expected = self.local(id).len();
        assert_eq!(values.len(), expected, "overwrite length mismatch");
        *self.local_mut(id) = Buffer::F64(values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DType;

    #[test]
    fn local_function_mutates_segments() {
        let ctx = OdinContext::with_workers(3);
        let x = ctx.ones(&[10], DType::F64);
        ctx.run_local(
            &[&x],
            &[5.0],
            Arc::new(|scope, args, scalars| {
                let s = scalars[0];
                for v in scope.local_mut(args[0]).as_f64_mut() {
                    *v += s;
                }
            }),
        );
        assert_eq!(x.to_vec(), vec![6.0; 10]);
    }

    #[test]
    fn local_function_sees_global_context() {
        // Each worker writes its rank into its segment; the assembled
        // array reveals the block layout.
        let ctx = OdinContext::with_workers(2);
        let x = ctx.zeros(&[6], DType::F64);
        ctx.run_local(
            &[&x],
            &[],
            Arc::new(|scope, args, _| {
                let r = scope.rank() as f64;
                for v in scope.local_mut(args[0]).as_f64_mut() {
                    *v = r;
                }
            }),
        );
        assert_eq!(x.to_vec(), vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn run_spmd_blocks_until_done() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.ones(&[4], DType::F64);
        ctx.run_spmd(&[&x], |scope, args| {
            // direct worker-worker communication: allreduce of local sums
            let local_sum: f64 = scope.local(args[0]).as_f64().iter().sum();
            let total = scope.comm.allreduce(&local_sum, comm::ReduceOp::sum());
            assert_eq!(total, 4.0);
        });
    }

    #[test]
    fn boundary_exchange_matches_neighbors() {
        let ctx = OdinContext::with_workers(3);
        let x = ctx.linspace(0.0, 8.0, 9); // 0..8, 3 per worker
        ctx.run_spmd(&[&x], |scope, args| {
            let (left, right) = scope.exchange_boundary_1d(args[0]);
            let map = scope.axis_map(args[0]);
            let lo = map.local_to_global(0);
            let hi = map.local_to_global(map.my_count() - 1);
            if lo > 0 {
                assert_eq!(left, Some(lo as f64 - 1.0));
            } else {
                assert_eq!(left, None);
            }
            if hi < 8 {
                assert_eq!(right, Some(hi as f64 + 1.0));
            } else {
                assert_eq!(right, None);
            }
        });
    }

    #[test]
    fn local_finite_difference_equals_global_slicing() {
        // The E5 comparison in miniature: hand-written local-mode FD vs
        // the one-line global slicing version.
        let n = 12;
        let ctx = OdinContext::with_workers(3);
        let y = ctx.random(&[n], 3);
        // global version: dy = y[1:] - y[:-1]
        let dy_global = {
            let hi = y.slice1(1, None, 1);
            let lo = y.slice1(0, Some(-1), 1);
            (&hi - &lo).to_vec()
        };
        // local version: each worker computes diffs of its segment and
        // the boundary against the right neighbor's first element.
        let out = ctx.placeholder_like(&y); // one too long; slice below
        ctx.run_spmd(&[&y, &out], |scope, args| {
            let (y_id, out_id) = (args[0], args[1]);
            let (_, right) = scope.exchange_boundary_1d(y_id);
            let mine: Vec<f64> = scope.local(y_id).as_f64().to_vec();
            let mut diffs = Vec::with_capacity(mine.len());
            for w in mine.windows(2) {
                diffs.push(w[1] - w[0]);
            }
            if let Some(rg) = right {
                diffs.push(rg - mine[mine.len() - 1]);
            } else {
                diffs.push(0.0); // padding on the last rank
            }
            scope.overwrite_f64(out_id, diffs);
        });
        let dy_local = out.slice1(0, Some(-1), 1).to_vec();
        assert_eq!(dy_local.len(), dy_global.len());
        for (a, b) in dy_local.iter().zip(dy_global.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
