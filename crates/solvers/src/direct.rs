//! Direct solver (Amesos analog): gather the matrix to rank 0, factor with
//! partial-pivoting LU, and scatter solutions back.
//!
//! Amesos interfaces serial third-party direct solvers by funneling the
//! distributed matrix to one process; this module reproduces that design
//! point, which experiment E14 contrasts with iterative solves.

use comm::Comm;
use dlinalg::{CsrMatrix, DistVector, RealScalar, Scalar};

/// LU factorization living on rank 0, reusable across right-hand sides.
pub struct DirectSolver<S: Scalar> {
    n: usize,
    /// Dense column-major LU factors (rank 0 only).
    lu: Option<Vec<S>>,
    /// Pivot permutation (rank 0 only).
    piv: Option<Vec<usize>>,
}

impl<S: Scalar> DirectSolver<S> {
    /// Gather and factor `a`. Collective. Panics on singular matrices.
    pub fn factor(comm: &Comm, a: &CsrMatrix<S>) -> Self {
        let (n, ncols) = a.shape();
        assert_eq!(n, ncols, "direct solver needs a square matrix");
        let rows = a.gather_to_root(comm);
        if comm.rank() != 0 {
            return DirectSolver {
                n,
                lu: None,
                piv: None,
            };
        }
        let rows = rows.unwrap();
        // densify (column-major)
        let mut m = vec![S::zero(); n * n];
        for (i, row) in rows.iter().enumerate() {
            for &(j, v) in row {
                m[j * n + i] += v;
            }
        }
        // LU with partial pivoting
        let mut piv = (0..n).collect::<Vec<_>>();
        for k in 0..n {
            // pivot search in column k, rows k..
            let mut best = k;
            let mut best_mag = m[k * n + k].abs();
            for i in k + 1..n {
                let mag = m[k * n + i].abs();
                if mag > best_mag {
                    best = i;
                    best_mag = mag;
                }
            }
            assert!(best_mag.to_f64() > 0.0, "singular matrix at column {k}");
            if best != k {
                piv.swap(k, best);
                for j in 0..n {
                    m.swap(j * n + k, j * n + best);
                }
            }
            let pivot = m[k * n + k];
            for i in k + 1..n {
                let l = m[k * n + i] / pivot;
                m[k * n + i] = l;
                if l != S::zero() {
                    for j in k + 1..n {
                        let u = m[j * n + k];
                        m[j * n + i] -= l * u;
                    }
                }
            }
        }
        DirectSolver {
            n,
            lu: Some(m),
            piv: Some(piv),
        }
    }

    /// Solve `A·x = b`. Collective: gathers `b` to rank 0, substitutes,
    /// and returns `x` redistributed over `b`'s map.
    pub fn solve(&self, comm: &Comm, b: &DistVector<S>) -> DistVector<S> {
        assert_eq!(b.n_global(), self.n, "rhs size mismatch");
        let full_b = b.gather_global(comm);
        let x_full: Vec<S> = if comm.rank() == 0 {
            let m = self.lu.as_ref().unwrap();
            let piv = self.piv.as_ref().unwrap();
            let n = self.n;
            // permute rhs
            let mut y: Vec<S> = piv.iter().map(|&p| full_b[p]).collect();
            // forward solve L y = Pb (unit diagonal)
            for i in 0..n {
                let mut acc = y[i];
                for j in 0..i {
                    acc -= m[j * n + i] * y[j];
                }
                y[i] = acc;
            }
            // back solve U x = y
            for i in (0..n).rev() {
                let mut acc = y[i];
                for j in i + 1..n {
                    acc -= m[j * n + i] * y[j];
                }
                y[i] = acc / m[i * n + i];
            }
            comm.advance_compute(2.0 * (n * n) as f64);
            y
        } else {
            Vec::new()
        };
        let x_full: Vec<S> = comm.bcast(0, if comm.rank() == 0 { Some(x_full) } else { None });
        DistVector::from_fn(b.map().clone(), |g| x_full[g])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm::Universe;
    use dmap::DistMap;

    fn laplace(comm: &Comm, n: usize) -> CsrMatrix<f64> {
        let m = DistMap::block(n, comm.size(), comm.rank());
        CsrMatrix::from_row_fn(comm, m.clone(), m, move |g| {
            let mut row = Vec::new();
            if g > 0 {
                row.push((g - 1, -1.0));
            }
            row.push((g, 2.0));
            if g + 1 < n {
                row.push((g + 1, -1.0));
            }
            row
        })
    }

    #[test]
    fn direct_solve_matches_exact_solution() {
        Universe::run(3, |comm| {
            let n = 12;
            let a = laplace(comm, n);
            // choose x_exact, compute b = A x
            let x_exact = DistVector::from_fn(a.domain_map().clone(), |g| (g as f64 * 0.4).cos());
            let b = a.matvec(comm, &x_exact);
            let solver = DirectSolver::factor(comm, &a);
            let x = solver.solve(comm, &b);
            let mut e = x.clone();
            e.axpy(-1.0, &x_exact);
            assert!(e.norm2(comm) < 1e-10);
        });
    }

    #[test]
    fn factorization_is_reusable() {
        Universe::run(2, |comm| {
            let a = laplace(comm, 8);
            let solver = DirectSolver::factor(comm, &a);
            for k in 1..4 {
                let x_exact = DistVector::from_fn(a.domain_map().clone(), |g| (g * k) as f64 + 1.0);
                let b = a.matvec(comm, &x_exact);
                let x = solver.solve(comm, &b);
                let mut e = x.clone();
                e.axpy(-1.0, &x_exact);
                assert!(e.norm2(comm) < 1e-9);
            }
        });
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        Universe::run(1, |comm| {
            let m = DistMap::block(2, comm.size(), comm.rank());
            // [[0, 1], [1, 0]] requires a row swap
            let a = CsrMatrix::from_row_fn(comm, m.clone(), m, |g| {
                if g == 0 {
                    vec![(1, 1.0)]
                } else {
                    vec![(0, 1.0)]
                }
            });
            let b = DistVector::from_fn(a.domain_map().clone(), |g| g as f64 + 1.0);
            let solver = DirectSolver::factor(comm, &a);
            let x = solver.solve(comm, &b);
            assert_eq!(x.gather_global(comm), vec![2.0, 1.0]);
        });
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_matrix_rejected() {
        Universe::run(1, |comm| {
            let m = DistMap::block(2, comm.size(), comm.rank());
            let a = CsrMatrix::from_row_fn(comm, m.clone(), m, |_| vec![(0, 1.0)]);
            let _ = DirectSolver::factor(comm, &a);
        });
    }

    #[test]
    fn complex_direct_solve() {
        use dlinalg::Complex64;
        Universe::run(2, |comm| {
            let n = 6;
            let m = DistMap::block(n, comm.size(), comm.rank());
            let a = CsrMatrix::from_row_fn(comm, m.clone(), m, move |g| {
                let mut row = vec![(g, Complex64::new(3.0, 1.0))];
                if g + 1 < n {
                    row.push((g + 1, Complex64::new(0.0, -1.0)));
                }
                row
            });
            let x_exact =
                DistVector::from_fn(a.domain_map().clone(), |g| Complex64::new(g as f64, -1.0));
            let b = a.matvec(comm, &x_exact);
            let solver = DirectSolver::factor(comm, &a);
            let x = solver.solve(comm, &b);
            let mut e = x.clone();
            e.axpy(-Complex64::new(1.0, 0.0), &x_exact);
            assert!(e.norm2(comm) < 1e-10);
        });
    }
}
