//! Typed solver failures, so callers can `?` a solve instead of
//! inspecting [`SolveStatus::converged`](crate::SolveStatus) by hand.

use crate::SolveStatus;

/// Why a solve did not produce a usable answer.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// The iteration budget ran out before the convergence criterion was
    /// met.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Residual norm when the solver gave up.
        residual: f64,
    },
    /// The iteration broke down (division by a vanishing inner product,
    /// loss of orthogonality, singular pivot, …).
    Breakdown(String),
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            SolverError::Breakdown(what) => write!(f, "solver breakdown: {what}"),
        }
    }
}

impl std::error::Error for SolverError {}

impl SolveStatus {
    /// Convert to a typed result: `Ok(self)` when converged, otherwise
    /// [`SolverError::NotConverged`] carrying the final state.
    pub fn into_result(self) -> Result<SolveStatus, SolverError> {
        if self.converged {
            Ok(self)
        } else {
            Err(SolverError::NotConverged {
                iterations: self.iterations,
                residual: self.final_residual(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_converts_to_result() {
        let ok = SolveStatus {
            converged: true,
            iterations: 3,
            history: vec![1.0, 0.1],
        };
        assert!(ok.into_result().is_ok());
        let bad = SolveStatus {
            converged: false,
            iterations: 7,
            history: vec![1.0, 0.5],
        };
        match bad.into_result() {
            Err(SolverError::NotConverged {
                iterations,
                residual,
            }) => {
                assert_eq!(iterations, 7);
                assert_eq!(residual, 0.5);
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }
}
