//! Algebraic preconditioners (Ifpack analog).
//!
//! All preconditioners apply `z = M⁻¹·r`. The local variants (Jacobi,
//! SSOR, ILU(0)) act on each rank's *local square block* — the standard
//! zero-overlap additive-Schwarz localization Ifpack defaults to — so
//! `apply` needs no communication; Chebyshev is a polynomial in the full
//! distributed operator and communicates through its matvecs.

use comm::Comm;
use dlinalg::{CsrMatrix, DistVector, RealScalar, Scalar};

/// Left preconditioner interface: `z = M⁻¹ r`.
pub trait Preconditioner<S: Scalar> {
    /// Apply the preconditioner.
    fn apply(&self, comm: &Comm, r: &DistVector<S>) -> DistVector<S>;
    /// Apply into an existing vector distributed like `r`, overwriting
    /// it. The default delegates to [`Self::apply`]; cheap pointwise
    /// preconditioners override it to keep solver inner loops
    /// allocation-free. Must produce bitwise the same values as
    /// [`Self::apply`].
    fn apply_into(&self, comm: &Comm, r: &DistVector<S>, z: &mut DistVector<S>) {
        *z = self.apply(comm, r);
    }
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// No preconditioning: `z = r`.
pub struct IdentityPrecond;

impl<S: Scalar> Preconditioner<S> for IdentityPrecond {
    fn apply(&self, _comm: &Comm, r: &DistVector<S>) -> DistVector<S> {
        r.clone()
    }
    fn apply_into(&self, _comm: &Comm, r: &DistVector<S>, z: &mut DistVector<S>) {
        z.local_mut().copy_from_slice(r.local());
    }
    fn name(&self) -> &'static str {
        "none"
    }
}

/// Point Jacobi: `z = D⁻¹ r`.
pub struct JacobiPrecond<S: Scalar> {
    inv_diag: DistVector<S>,
}

impl<S: Scalar> JacobiPrecond<S> {
    /// Build from the matrix diagonal (must be nonzero everywhere).
    pub fn new(a: &CsrMatrix<S>) -> Self {
        let mut d = a.diagonal();
        for v in d.local_mut() {
            assert!(*v != S::zero(), "Jacobi needs a nonzero diagonal");
            *v = S::one() / *v;
        }
        JacobiPrecond { inv_diag: d }
    }
}

impl<S: Scalar> Preconditioner<S> for JacobiPrecond<S> {
    fn apply(&self, _comm: &Comm, r: &DistVector<S>) -> DistVector<S> {
        let mut z = r.clone();
        z.pointwise_mul(&self.inv_diag);
        z
    }
    fn apply_into(&self, _comm: &Comm, r: &DistVector<S>, z: &mut DistVector<S>) {
        z.local_mut().copy_from_slice(r.local());
        z.pointwise_mul(&self.inv_diag);
    }
    fn name(&self) -> &'static str {
        "jacobi"
    }
}

/// A rank-local square CSR block, sorted by column within each row.
struct LocalBlock<S> {
    rowptr: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<S>,
    n: usize,
}

impl<S: Scalar> LocalBlock<S> {
    fn from_matrix(a: &CsrMatrix<S>) -> Self {
        let (rowptr, cols, vals) = a.local_square_block();
        let n = rowptr.len() - 1;
        // sort each row by column id (solvers below rely on it)
        let mut s_cols = Vec::with_capacity(cols.len());
        let mut s_vals = Vec::with_capacity(vals.len());
        let mut s_rowptr = Vec::with_capacity(rowptr.len());
        s_rowptr.push(0);
        for i in 0..n {
            let mut row: Vec<(usize, S)> = (rowptr[i]..rowptr[i + 1])
                .map(|k| (cols[k], vals[k]))
                .collect();
            row.sort_unstable_by_key(|&(c, _)| c);
            for (c, v) in row {
                s_cols.push(c);
                s_vals.push(v);
            }
            s_rowptr.push(s_cols.len());
        }
        LocalBlock {
            rowptr: s_rowptr,
            cols: s_cols,
            vals: s_vals,
            n,
        }
    }

    fn diag_positions(&self) -> Vec<usize> {
        (0..self.n)
            .map(|i| {
                (self.rowptr[i]..self.rowptr[i + 1])
                    .find(|&k| self.cols[k] == i)
                    .unwrap_or_else(|| panic!("row {i} has no diagonal entry"))
            })
            .collect()
    }
}

/// Symmetric SOR sweep on the local block:
/// `M = (D/ω + L) · (ω/(2−ω))·D⁻¹ · (D/ω + U)`.
pub struct SsorPrecond<S: Scalar> {
    block: LocalBlock<S>,
    diag_pos: Vec<usize>,
    omega: f64,
}

impl<S: Scalar> SsorPrecond<S> {
    /// Build with relaxation factor `omega ∈ (0, 2)`.
    pub fn new(a: &CsrMatrix<S>, omega: f64) -> Self {
        assert!(omega > 0.0 && omega < 2.0, "omega must be in (0,2)");
        let block = LocalBlock::from_matrix(a);
        let diag_pos = block.diag_positions();
        SsorPrecond {
            block,
            diag_pos,
            omega,
        }
    }
}

impl<S: Scalar> Preconditioner<S> for SsorPrecond<S> {
    fn apply(&self, _comm: &Comm, r: &DistVector<S>) -> DistVector<S> {
        let b = &self.block;
        let w = S::from_f64(self.omega);
        let rl = r.local();
        let n = b.n;
        // Forward solve: (D/ω + L) y = r
        let mut y = vec![S::zero(); n];
        for i in 0..n {
            let mut acc = rl[i];
            for k in b.rowptr[i]..b.rowptr[i + 1] {
                let j = b.cols[k];
                if j < i {
                    acc -= b.vals[k] * y[j];
                }
            }
            let d = b.vals[self.diag_pos[i]];
            y[i] = acc * w / d;
        }
        // Scale: y ← ((2−ω)/ω) D y
        let scale = S::from_f64((2.0 - self.omega) / self.omega);
        for (i, yi) in y.iter_mut().enumerate() {
            *yi *= scale * b.vals[self.diag_pos[i]];
        }
        // Backward solve: (D/ω + U) z = y
        let mut z = vec![S::zero(); n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for k in b.rowptr[i]..b.rowptr[i + 1] {
                let j = b.cols[k];
                if j > i {
                    acc -= b.vals[k] * z[j];
                }
            }
            let d = b.vals[self.diag_pos[i]];
            z[i] = acc * w / d;
        }
        DistVector::from_local(r.map().clone(), z)
    }
    fn name(&self) -> &'static str {
        "ssor"
    }
}

/// Zero-fill incomplete LU on the local block (Ifpack `ILU(0)`).
/// The factors reuse the sparsity pattern of the block; apply performs the
/// local forward/backward substitution.
pub struct IluPrecond<S: Scalar> {
    block: LocalBlock<S>,
    diag_pos: Vec<usize>,
}

impl<S: Scalar> IluPrecond<S> {
    /// Factor the local block in ILU(0) fashion.
    pub fn new(a: &CsrMatrix<S>) -> Self {
        let mut block = LocalBlock::from_matrix(a);
        let diag_pos = block.diag_positions();
        let n = block.n;
        // IKJ-variant ILU(0): for each row i, eliminate with rows k < i
        // that appear in row i's pattern.
        // col_pos[i][j] lookup: for pattern-limited updates we scan rows.
        for i in 0..n {
            let (lo, hi) = (block.rowptr[i], block.rowptr[i + 1]);
            for kk in lo..hi {
                let k = block.cols[kk];
                if k >= i {
                    break; // columns sorted: L part done
                }
                // multiplier = a_ik / a_kk
                let akk = block.vals[diag_pos[k]];
                let mult = block.vals[kk] / akk;
                block.vals[kk] = mult;
                // a_ij -= mult * a_kj for j > k present in row i's pattern
                let (klo, khi) = (block.rowptr[k], block.rowptr[k + 1]);
                let mut p = kk + 1;
                for kj in klo..khi {
                    let j = block.cols[kj];
                    if j <= k {
                        continue;
                    }
                    // advance p in row i to column j (both sorted)
                    while p < hi && block.cols[p] < j {
                        p += 1;
                    }
                    if p < hi && block.cols[p] == j {
                        let u = block.vals[kj];
                        block.vals[p] -= mult * u;
                    }
                }
            }
            assert!(
                block.vals[diag_pos[i]] != S::zero(),
                "zero pivot in ILU(0) at local row {i}"
            );
        }
        IluPrecond { block, diag_pos }
    }
}

impl<S: Scalar> Preconditioner<S> for IluPrecond<S> {
    fn apply(&self, _comm: &Comm, r: &DistVector<S>) -> DistVector<S> {
        let b = &self.block;
        let n = b.n;
        let rl = r.local();
        // L y = r (unit lower triangular: multipliers stored in L part)
        let mut y = vec![S::zero(); n];
        for i in 0..n {
            let mut acc = rl[i];
            for k in b.rowptr[i]..b.rowptr[i + 1] {
                let j = b.cols[k];
                if j >= i {
                    break;
                }
                acc -= b.vals[k] * y[j];
            }
            y[i] = acc;
        }
        // U z = y
        let mut z = vec![S::zero(); n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for k in (b.rowptr[i]..b.rowptr[i + 1]).rev() {
                let j = b.cols[k];
                if j <= i {
                    break;
                }
                acc -= b.vals[k] * z[j];
            }
            z[i] = acc / b.vals[self.diag_pos[i]];
        }
        DistVector::from_local(r.map().clone(), z)
    }
    fn name(&self) -> &'static str {
        "ilu0"
    }
}

/// Chebyshev polynomial preconditioner of fixed degree over the full
/// distributed operator (communicates through matvecs). Needs an estimate
/// of the largest eigenvalue of `D⁻¹A`, obtained by power iteration.
pub struct ChebyshevPrecond<S: Scalar> {
    a: CsrMatrix<S>,
    inv_diag: DistVector<S>,
    degree: usize,
    lambda_max: f64,
    lambda_min: f64,
}

impl<S: Scalar> ChebyshevPrecond<S> {
    /// Build with `degree` Chebyshev steps; `lambda_max` of `D⁻¹A` is
    /// estimated with `power_iters` power iterations, and `lambda_min` is
    /// taken as `lambda_max / 30` (the usual smoother heuristic).
    pub fn new(comm: &Comm, a: &CsrMatrix<S>, degree: usize, power_iters: usize) -> Self {
        let mut inv_diag = a.diagonal();
        for v in inv_diag.local_mut() {
            *v = S::one() / *v;
        }
        // power iteration on D⁻¹A
        let mut v = DistVector::from_fn(a.domain_map().clone(), |g| {
            S::from_f64(((g * 2654435761) % 1000) as f64 / 1000.0 + 0.1)
        });
        let mut lambda = 1.0;
        for _ in 0..power_iters {
            let mut w = a.matvec(comm, &v);
            w.pointwise_mul(&inv_diag);
            let nrm = w.norm2(comm).to_f64();
            if nrm == 0.0 {
                break;
            }
            lambda = nrm / v.norm2(comm).to_f64();
            w.scale(S::from_f64(1.0 / nrm));
            v = w;
        }
        let lambda_max = lambda * 1.1; // safety margin
        ChebyshevPrecond {
            a: a.clone(),
            inv_diag,
            degree,
            lambda_max,
            lambda_min: lambda_max / 30.0,
        }
    }

    /// Estimated spectral bounds `(lambda_min, lambda_max)` of `D⁻¹A`.
    pub fn bounds(&self) -> (f64, f64) {
        (self.lambda_min, self.lambda_max)
    }
}

impl<S: Scalar> Preconditioner<S> for ChebyshevPrecond<S> {
    fn apply(&self, comm: &Comm, r: &DistVector<S>) -> DistVector<S> {
        // Standard Chebyshev smoother recurrence on z' = D⁻¹A z = D⁻¹ r.
        let theta = 0.5 * (self.lambda_max + self.lambda_min);
        let delta = 0.5 * (self.lambda_max - self.lambda_min);
        let mut pre_r = r.clone();
        pre_r.pointwise_mul(&self.inv_diag);
        let mut z = pre_r.clone();
        z.scale(S::from_f64(1.0 / theta));
        let mut d = z.clone(); // previous correction
        let mut sigma = theta / delta;
        for _ in 1..self.degree {
            // residual of the preconditioned system: rho = D⁻¹(r − A z)
            let az = self.a.matvec(comm, &z);
            let mut rho = r.clone();
            rho.axpy(-S::one(), &az);
            rho.pointwise_mul(&self.inv_diag);
            let sigma_new = 1.0 / (2.0 * theta / delta - sigma);
            let c1 = S::from_f64(2.0 * sigma_new / delta);
            let c2 = S::from_f64(sigma_new * sigma);
            // d ← c1·rho + c2·d ; z ← z + d
            d.scale(c2);
            d.axpy(c1, &rho);
            z.axpy(S::one(), &d);
            sigma = sigma_new;
        }
        z
    }
    fn name(&self) -> &'static str {
        "chebyshev"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm::Universe;
    use dmap::DistMap;

    fn laplace(comm: &Comm, n: usize) -> CsrMatrix<f64> {
        let m = DistMap::block(n, comm.size(), comm.rank());
        CsrMatrix::from_row_fn(comm, m.clone(), m, move |g| {
            let mut row = Vec::new();
            if g > 0 {
                row.push((g - 1, -1.0));
            }
            row.push((g, 2.0));
            if g + 1 < n {
                row.push((g + 1, -1.0));
            }
            row
        })
    }

    /// Residual after `k` preconditioned Richardson iterations on `Ax = b`
    /// (relative to ‖b‖): the standard way to compare smoother quality.
    fn richardson(comm: &Comm, a: &CsrMatrix<f64>, m: &dyn Preconditioner<f64>, k: usize) -> f64 {
        let b = DistVector::from_fn(a.domain_map().clone(), |g| ((g + 1) as f64 * 0.3).sin());
        let mut x = DistVector::zeros(a.domain_map().clone());
        for _ in 0..k {
            let ax = a.matvec(comm, &x);
            let mut r = b.clone();
            r.axpy(-1.0, &ax);
            let z = m.apply(comm, &r);
            x.axpy(1.0, &z);
        }
        let ax = a.matvec(comm, &x);
        let mut r = b.clone();
        r.axpy(-1.0, &ax);
        r.norm2(comm) / b.norm2(comm)
    }

    /// error reduction ‖r − A·M⁻¹r‖ / ‖r‖ of one preconditioner application
    fn reduction(comm: &Comm, a: &CsrMatrix<f64>, m: &dyn Preconditioner<f64>) -> f64 {
        richardson(comm, a, m, 1)
    }

    #[test]
    fn jacobi_inverts_diagonal_matrices_exactly() {
        Universe::run(2, |comm| {
            let m = DistMap::block(6, comm.size(), comm.rank());
            let a = CsrMatrix::from_row_fn(comm, m.clone(), m, |g| vec![(g, (g + 1) as f64)]);
            let p = JacobiPrecond::new(&a);
            assert!(reduction(comm, &a, &p) < 1e-14);
        });
    }

    #[test]
    fn ilu0_on_single_rank_is_exact_for_tridiagonal() {
        // Tridiagonal matrices have no fill, so ILU(0) = full LU.
        Universe::run(1, |comm| {
            let a = laplace(comm, 20);
            let p = IluPrecond::new(&a);
            assert!(reduction(comm, &a, &p) < 1e-12);
        });
    }

    #[test]
    fn preconditioners_reduce_cg_iterations_multirank() {
        // CG iteration count is the robust quality metric: stronger local
        // preconditioners must not need more iterations than point Jacobi.
        Universe::run(3, |comm| {
            use crate::krylov::{cg, KrylovConfig};
            let a = laplace(comm, 60);
            let b = DistVector::from_fn(a.domain_map().clone(), |g| ((g + 1) as f64 * 0.3).sin());
            let cfg = KrylovConfig {
                rtol: 1e-8,
                max_iter: 500,
                ..Default::default()
            };
            let run = |m: &dyn Preconditioner<f64>| {
                let mut x = DistVector::zeros(a.domain_map().clone());
                let st = cg(comm, &a, &b, &mut x, m, &cfg);
                assert!(st.converged, "{} did not converge", m.name());
                st.iterations
            };
            let none = run(&IdentityPrecond);
            let jac = run(&JacobiPrecond::new(&a));
            let ssor = run(&SsorPrecond::new(&a, 1.0));
            let ilu = run(&IluPrecond::new(&a));
            assert!(jac <= none, "jacobi {jac} vs none {none}");
            assert!(ssor < jac, "ssor {ssor} vs jacobi {jac}");
            assert!(ilu < jac, "ilu {ilu} vs jacobi {jac}");
        });
    }

    #[test]
    fn chebyshev_beats_jacobi() {
        Universe::run(2, |comm| {
            let a = laplace(comm, 24);
            let k = 4;
            let jac = richardson(comm, &a, &JacobiPrecond::new(&a), k);
            let cheb = ChebyshevPrecond::new(comm, &a, 4, 20);
            let (lo, hi) = cheb.bounds();
            assert!(lo > 0.0 && hi > lo);
            let c = richardson(comm, &a, &cheb, k);
            assert!(c < jac, "chebyshev {c} vs jacobi {jac}");
        });
    }

    #[test]
    fn ssor_rejects_bad_omega() {
        let result = std::panic::catch_unwind(|| {
            Universe::run(1, |comm| {
                let a = laplace(comm, 4);
                let _ = SsorPrecond::new(&a, 2.5);
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn names_are_stable() {
        Universe::run(1, |comm| {
            let a = laplace(comm, 4);
            assert_eq!(Preconditioner::<f64>::name(&IdentityPrecond), "none");
            assert_eq!(JacobiPrecond::new(&a).name(), "jacobi");
            assert_eq!(SsorPrecond::new(&a, 1.2).name(), "ssor");
            assert_eq!(IluPrecond::new(&a).name(), "ilu0");
        });
    }
}
