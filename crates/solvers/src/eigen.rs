//! Eigensolvers (Anasazi analog): power iteration for the dominant
//! eigenpair and Lanczos for extreme eigenvalues of symmetric operators.

use comm::Comm;
use dlinalg::{CsrMatrix, DistVector, RealScalar, Scalar};

/// Result of the power method: dominant eigenvalue estimate, eigenvector,
/// and iterations used.
pub struct PowerResult<S: Scalar> {
    /// Rayleigh-quotient estimate of the dominant eigenvalue.
    pub lambda: f64,
    /// Unit-norm eigenvector estimate.
    pub vector: DistVector<S>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the eigenvalue estimate stabilized to `tol`.
    pub converged: bool,
}

/// Power iteration on `A`. Collective.
pub fn power_method<S: Scalar>(
    comm: &Comm,
    a: &CsrMatrix<S>,
    tol: f64,
    max_iter: usize,
) -> PowerResult<S> {
    let mut v = DistVector::from_fn(a.domain_map().clone(), |g| {
        // fixed pseudo-random start, identical across rank counts
        S::from_f64((((g.wrapping_mul(2654435761)) % 10007) as f64) / 10007.0 + 0.05)
    });
    let nrm = v.norm2(comm);
    v.scale(S::from_real(S::Real::one() / nrm));
    let mut lambda = 0.0f64;
    for it in 1..=max_iter {
        let timer = crate::instrument::iter_start(comm);
        let w = a.matvec(comm, &v);
        // Rayleigh quotient ⟨v, Av⟩ (v already unit norm)
        let rq = v.dot(&w, comm).re().to_f64();
        let wnorm = w.norm2(comm).to_f64();
        if wnorm == 0.0 {
            crate::instrument::record_solve("power", it, true, 0.0);
            return PowerResult {
                lambda: 0.0,
                vector: v,
                iterations: it,
                converged: true,
            };
        }
        let mut vnext = w;
        vnext.scale(S::from_f64(1.0 / wnorm));
        let delta = (rq - lambda).abs();
        lambda = rq;
        v = vnext;
        if let Some(t) = timer {
            crate::instrument::iter_finish(t, comm, "power.iter", it, delta);
        }
        if it > 1 && delta <= tol * lambda.abs().max(1e-30) {
            crate::instrument::record_solve("power", it, true, delta);
            return PowerResult {
                lambda,
                vector: v,
                iterations: it,
                converged: true,
            };
        }
    }
    crate::instrument::record_solve("power", max_iter, false, f64::NAN);
    PowerResult {
        lambda,
        vector: v,
        iterations: max_iter,
        converged: false,
    }
}

/// Lanczos tridiagonalization with full reorthogonalization, returning the
/// eigenvalues of the `k × k` tridiagonal Rayleigh–Ritz matrix (sorted
/// ascending). The extreme entries approximate the extreme eigenvalues of
/// the symmetric operator `A`. Collective.
pub fn lanczos_extreme_eigenvalues(comm: &Comm, a: &CsrMatrix<f64>, k: usize) -> Vec<f64> {
    let n = a.shape().0;
    let k = k.min(n);
    let mut alphas = Vec::with_capacity(k);
    let mut betas = Vec::with_capacity(k);
    let mut basis: Vec<DistVector<f64>> = Vec::with_capacity(k);
    let mut v = DistVector::from_fn(a.domain_map().clone(), |g| {
        ((g as f64 + 1.0) * 0.7391).sin() + 0.2
    });
    let nrm = v.norm2(comm);
    v.scale(1.0 / nrm);
    let mut v_prev: Option<DistVector<f64>> = None;
    let mut beta_prev = 0.0f64;
    for _ in 0..k {
        let mut w = a.matvec(comm, &v);
        if let Some(prev) = &v_prev {
            w.axpy(-beta_prev, prev);
        }
        let alpha = v.dot(&w, comm);
        w.axpy(-alpha, &v);
        // full reorthogonalization for numerical robustness
        for q in &basis {
            let proj = q.dot(&w, comm);
            w.axpy(-proj, q);
        }
        alphas.push(alpha);
        basis.push(v.clone());
        let beta = w.norm2(comm);
        if beta < 1e-14 {
            break; // invariant subspace found
        }
        betas.push(beta);
        w.scale(1.0 / beta);
        v_prev = Some(std::mem::replace(&mut v, w));
        beta_prev = beta;
    }
    let mut eig = tridiag_eigenvalues(&alphas, &betas);
    eig.sort_by(|a, b| a.partial_cmp(b).unwrap());
    eig
}

/// Eigenvalues of a symmetric tridiagonal matrix via the implicit QL
/// algorithm with Wilkinson shifts (the classic `tql1` routine,
/// eigenvalues only).
pub fn tridiag_eigenvalues(diag: &[f64], off: &[f64]) -> Vec<f64> {
    let n = diag.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(off.len() + 1 >= n, "need n-1 off-diagonal entries");
    let mut d = diag.to_vec();
    let mut e = vec![0.0f64; n];
    e[..n - 1].copy_from_slice(&off[..n - 1]);
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find the first negligible subdiagonal at or after l.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break; // d[l] is an eigenvalue
            }
            iter += 1;
            assert!(iter < 200, "tql did not converge");
            // Wilkinson shift from the leading 2x2.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let denom = g + if g >= 0.0 { r } else { -r };
            g = d[m] - d[l] + e[l] / denom;
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            let mut underflow = false;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // recover from underflow: deflate and retry
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm::Universe;
    use dmap::DistMap;
    use std::f64::consts::PI;

    fn laplace(comm: &Comm, n: usize) -> CsrMatrix<f64> {
        let m = DistMap::block(n, comm.size(), comm.rank());
        CsrMatrix::from_row_fn(comm, m.clone(), m, move |g| {
            let mut row = Vec::new();
            if g > 0 {
                row.push((g - 1, -1.0));
            }
            row.push((g, 2.0));
            if g + 1 < n {
                row.push((g + 1, -1.0));
            }
            row
        })
    }

    /// analytic eigenvalues of the n×n 1-D Laplacian: 2 − 2cos(kπ/(n+1))
    fn laplace_eigs(n: usize) -> Vec<f64> {
        (1..=n)
            .map(|k| 2.0 - 2.0 * (k as f64 * PI / (n as f64 + 1.0)).cos())
            .collect()
    }

    #[test]
    fn tridiag_eigenvalues_match_analytic() {
        let n = 12;
        let diag = vec![2.0; n];
        let off = vec![-1.0; n - 1];
        let mut got = tridiag_eigenvalues(&diag, &off);
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect = laplace_eigs(n);
        for (g, e) in got.iter().zip(expect.iter()) {
            assert!((g - e).abs() < 1e-10, "{g} vs {e}");
        }
    }

    #[test]
    fn tridiag_handles_tiny_and_diagonal_cases() {
        assert_eq!(tridiag_eigenvalues(&[], &[]), Vec::<f64>::new());
        assert_eq!(tridiag_eigenvalues(&[5.0], &[]), vec![5.0]);
        let mut two = tridiag_eigenvalues(&[0.0, 0.0], &[1.0]);
        two.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((two[0] + 1.0).abs() < 1e-12 && (two[1] - 1.0).abs() < 1e-12);
        // already diagonal
        let d = tridiag_eigenvalues(&[3.0, 1.0, 2.0], &[0.0, 0.0]);
        let mut d = d;
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(d, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn power_method_finds_dominant_eigenvalue() {
        Universe::run(3, |comm| {
            let n = 20;
            let a = laplace(comm, n);
            let res = power_method(comm, &a, 1e-12, 5000);
            let expect = *laplace_eigs(n).last().unwrap();
            assert!(res.converged);
            assert!(
                (res.lambda - expect).abs() < 1e-4,
                "{} vs {}",
                res.lambda,
                expect
            );
            // eigenvector check: ‖A v − λ v‖ small
            let av = a.matvec(comm, &res.vector);
            let mut r = av.clone();
            r.axpy(-res.lambda, &res.vector);
            assert!(r.norm2(comm) < 1e-3);
        });
    }

    #[test]
    fn lanczos_extreme_eigenvalues_bracket_spectrum() {
        Universe::run(2, |comm| {
            let n = 30;
            let a = laplace(comm, n);
            let ritz = lanczos_extreme_eigenvalues(comm, &a, 20);
            let eigs = laplace_eigs(n);
            let (lo, hi) = (eigs[0], eigs[n - 1]);
            let (rlo, rhi) = (ritz[0], *ritz.last().unwrap());
            // Ritz values lie inside the spectrum and converge to the
            // extremes; after 20 of 30 steps they are close but not exact.
            assert!(rhi <= hi + 1e-9 && hi - rhi < 0.05, "max: {rhi} vs {hi}");
            assert!(rlo >= lo - 1e-9 && rlo - lo < 0.05, "min: {rlo} vs {lo}");
        });
    }

    #[test]
    fn lanczos_exact_at_full_dimension() {
        Universe::run(2, |comm| {
            let n = 10;
            let a = laplace(comm, n);
            let ritz = lanczos_extreme_eigenvalues(comm, &a, n);
            let eigs = laplace_eigs(n);
            for (r, e) in ritz.iter().zip(eigs.iter()) {
                assert!((r - e).abs() < 1e-8, "{r} vs {e}");
            }
        });
    }

    #[test]
    fn lanczos_is_rank_count_invariant() {
        let run = |p: usize| {
            Universe::run(p, |comm| {
                let a = laplace(comm, 16);
                lanczos_extreme_eigenvalues(comm, &a, 8)
            })
            .pop()
            .unwrap()
        };
        let e1 = run(1);
        let e3 = run(3);
        for (a, b) in e1.iter().zip(e3.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
