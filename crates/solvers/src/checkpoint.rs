//! Checkpoint/restart for the Krylov solvers (the recovery half of the
//! E18 chaos experiments).
//!
//! A CG iteration's live state at the top of the loop is exactly
//! `{x, r, p, ρ = rᵀz, ‖r₀‖, history}` — everything else is recomputed
//! inside the body. [`CgCheckpoint`] snapshots that state per rank;
//! resuming from a snapshot replays the *identical* floating-point
//! operation sequence, so a run restarted after a mid-solve failure
//! converges to a bitwise-identical answer (asserted by
//! `tests/failure_modes.rs` and swept in `e18_chaos`).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

use dlinalg::Scalar;

/// Per-rank CG solver state captured at the top of iteration `iteration`.
#[derive(Debug, Clone, PartialEq)]
pub struct CgCheckpoint<S> {
    /// Iteration the resumed solve starts at (1-based, top of loop).
    pub iteration: usize,
    /// Local segment of the iterate `x`.
    pub x: Vec<S>,
    /// Local segment of the residual `r`.
    pub r: Vec<S>,
    /// Local segment of the search direction `p`.
    pub p: Vec<S>,
    /// The inner product `rᵀz` carried across iterations.
    pub rz: S,
    /// Initial residual norm (convergence tests are relative to it).
    pub r0_norm: f64,
    /// Residual history up to (excluding) `iteration`.
    pub history: Vec<f64>,
}

/// Checkpoint policy for [`crate::krylov::cg_checkpointed`].
pub struct CgCheckpointing<'a, S> {
    /// Snapshot cadence in iterations; `0` disables checkpointing.
    pub every: usize,
    /// Called with each snapshot (rank-local; capture the rank in the
    /// closure if the sink is shared across ranks).
    pub sink: Option<&'a dyn Fn(CgCheckpoint<S>)>,
    /// Resume from this snapshot instead of starting at iteration 1.
    pub resume: Option<&'a CgCheckpoint<S>>,
}

impl<S> CgCheckpointing<'_, S> {
    /// No checkpointing, no resume: plain CG.
    pub fn none() -> Self {
        CgCheckpointing {
            every: 0,
            sink: None,
            resume: None,
        }
    }
}

/// A shared, rank-keyed store of CG checkpoints: the simplest durable
/// "stable storage" for a thread-per-rank job. Clones share the store, so
/// each rank can record into it from inside a `Universe::run` closure and
/// a later (restart) run can read the snapshots back — even if the first
/// run died in a panic (the mutex poison is ignored; snapshots are only
/// pushed whole).
#[derive(Debug, Default)]
pub struct CheckpointStore<S> {
    inner: Arc<Mutex<HashMap<usize, Vec<CgCheckpoint<S>>>>>,
}

impl<S> Clone for CheckpointStore<S> {
    fn clone(&self) -> Self {
        CheckpointStore {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S: Scalar> CheckpointStore<S> {
    /// Empty store.
    pub fn new() -> Self {
        CheckpointStore {
            inner: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Record a snapshot for `rank`.
    pub fn record(&self, rank: usize, ck: CgCheckpoint<S>) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(rank)
            .or_default()
            .push(ck);
    }

    /// Number of snapshots recorded for `rank`.
    pub fn count(&self, rank: usize) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&rank)
            .map_or(0, Vec::len)
    }

    /// The latest iteration checkpointed by *every* one of `n_ranks`
    /// ranks, with each rank's snapshot at that iteration (indexed by
    /// rank). Ranks advance asynchronously, so their newest snapshots can
    /// differ; a consistent restart needs the newest *common* one.
    pub fn resume_point(&self, n_ranks: usize) -> Option<Vec<CgCheckpoint<S>>> {
        let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let common = (0..n_ranks)
            .map(|r| g.get(&r)?.iter().map(|c| c.iteration).max())
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .min()?;
        (0..n_ranks)
            .map(|r| g[&r].iter().find(|c| c.iteration == common).cloned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ck(iteration: usize) -> CgCheckpoint<f64> {
        CgCheckpoint {
            iteration,
            x: vec![iteration as f64],
            r: vec![0.0],
            p: vec![0.0],
            rz: 1.0,
            r0_norm: 1.0,
            history: vec![1.0],
        }
    }

    #[test]
    fn resume_point_is_newest_common_iteration() {
        let store = CheckpointStore::new();
        store.record(0, ck(1));
        store.record(0, ck(6));
        store.record(1, ck(1));
        assert_eq!(store.count(0), 2);
        // rank 1 never checkpointed iteration 6: the common point is 1
        let resume = store.resume_point(2).expect("both ranks present");
        assert_eq!(resume.len(), 2);
        assert!(resume.iter().all(|c| c.iteration == 1));
        // a rank with no snapshots means no consistent restart exists
        assert!(store.resume_point(3).is_none());
    }
}
