//! # solvers — the distributed solver stack
//!
//! Rust implementations of the Trilinos solver packages PyTrilinos wraps
//! (paper Table I):
//!
//! | module | Trilinos package role |
//! |---|---|
//! | [`krylov`] | AztecOO — CG, BiCGStab, GMRES(m) |
//! | [`precond`] | Ifpack — Jacobi, SSOR, ILU(0), Chebyshev |
//! | [`amg`] | ML — aggregation-based two-level multigrid |
//! | [`direct`] | Amesos — gather-to-root LU with partial pivoting |
//! | [`eigen`] | Anasazi — power iteration, Lanczos |
//! | [`nonlinear`] | NOX — Newton–Krylov with backtracking line search |
//!
//! Everything operates on [`dlinalg`] distributed vectors/matrices, and all
//! collective operations account modeled time on the [`comm`] virtual
//! clock, so solver benchmarks yield cluster-shaped scaling curves.

pub mod amg;
pub mod checkpoint;
pub mod direct;
pub mod eigen;
pub mod error;
mod instrument;
pub mod krylov;
pub mod nonlinear;
pub mod precond;
pub mod status;

pub use amg::AmgPreconditioner;
pub use checkpoint::{CgCheckpoint, CgCheckpointing, CheckpointStore};
pub use direct::DirectSolver;
pub use eigen::{lanczos_extreme_eigenvalues, power_method};
pub use error::SolverError;
pub use krylov::{bicgstab, cg, cg_checkpointed, gmres, KrylovConfig};
pub use nonlinear::{newton_krylov, NewtonConfig, NonlinearProblem};
pub use precond::{
    ChebyshevPrecond, IdentityPrecond, IluPrecond, JacobiPrecond, Preconditioner, SsorPrecond,
};
pub use status::SolveStatus;
