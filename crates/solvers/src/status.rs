//! Convergence reporting shared by all iterative solvers
//! (the AztecOO status-test role).

/// Outcome of an iterative solve.
#[derive(Debug, Clone)]
pub struct SolveStatus {
    /// Whether the convergence criterion was met within the budget.
    pub converged: bool,
    /// Iterations performed.
    pub iterations: usize,
    /// Residual norm after each iteration (index 0 = initial residual).
    pub history: Vec<f64>,
}

impl SolveStatus {
    /// Final residual norm (the last history entry).
    pub fn final_residual(&self) -> f64 {
        *self.history.last().unwrap_or(&f64::NAN)
    }

    /// Average convergence factor `(r_final / r_0)^(1/iters)`.
    pub fn convergence_factor(&self) -> f64 {
        if self.iterations == 0 || self.history.len() < 2 {
            return 1.0;
        }
        let r0 = self.history[0];
        let rf = self.final_residual();
        if r0 <= 0.0 {
            return 0.0;
        }
        (rf / r0).powf(1.0 / self.iterations as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn final_residual_and_factor() {
        let s = SolveStatus {
            converged: true,
            iterations: 2,
            history: vec![1.0, 0.1, 0.01],
        };
        assert_eq!(s.final_residual(), 0.01);
        assert!((s.convergence_factor() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn degenerate_histories() {
        let s = SolveStatus {
            converged: false,
            iterations: 0,
            history: vec![],
        };
        assert!(s.final_residual().is_nan());
        assert_eq!(s.convergence_factor(), 1.0);
    }
}
