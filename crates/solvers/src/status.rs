//! Convergence reporting shared by all iterative solvers
//! (the AztecOO status-test role).

/// Outcome of an iterative solve.
#[derive(Debug, Clone)]
#[must_use = "check `converged` or call `into_result()`"]
pub struct SolveStatus {
    /// Whether the convergence criterion was met within the budget.
    pub converged: bool,
    /// Iterations performed.
    pub iterations: usize,
    /// Residual norm after each iteration (index 0 = initial residual).
    pub history: Vec<f64>,
}

impl SolveStatus {
    /// Final residual norm (the last history entry).
    pub fn final_residual(&self) -> f64 {
        *self.history.last().unwrap_or(&f64::NAN)
    }

    /// Average convergence factor `(r_final / r_0)^(1/k)` where `k` is
    /// the number of residual *reductions* actually recorded. The history
    /// is the source of truth: solvers that restart (GMRES) or record at a
    /// different granularity can have `iterations != history.len() - 1`,
    /// and using `iterations` would mis-scale the factor.
    pub fn convergence_factor(&self) -> f64 {
        if self.history.len() < 2 {
            return 1.0;
        }
        let steps = self.history.len() - 1;
        let r0 = self.history[0];
        let rf = self.final_residual();
        if r0 <= 0.0 {
            return 0.0;
        }
        (rf / r0).powf(1.0 / steps as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn final_residual_and_factor() {
        let s = SolveStatus {
            converged: true,
            iterations: 2,
            history: vec![1.0, 0.1, 0.01],
        };
        assert_eq!(s.final_residual(), 0.01);
        assert!((s.convergence_factor() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn factor_uses_history_length_when_it_disagrees_with_iterations() {
        // Two recorded reductions (1.0 → 0.01) but an `iterations` count
        // of 4, as a restarted solver might report. The per-step factor
        // must come from the history: (0.01)^(1/2) = 0.1, not
        // (0.01)^(1/4) ≈ 0.316.
        let s = SolveStatus {
            converged: true,
            iterations: 4,
            history: vec![1.0, 0.1, 0.01],
        };
        assert!((s.convergence_factor() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn degenerate_histories() {
        let s = SolveStatus {
            converged: false,
            iterations: 0,
            history: vec![],
        };
        assert!(s.final_residual().is_nan());
        assert_eq!(s.convergence_factor(), 1.0);
    }
}
