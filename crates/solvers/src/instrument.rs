//! Observability hooks shared by the solver implementations.
//!
//! Every hook is gated on [`obs::enabled`], so a disabled run pays one
//! relaxed atomic load per iteration and nothing else.

use comm::Comm;

/// Start a per-iteration span on this rank's virtual-clock timeline, or
/// `None` when observability is disabled.
#[inline]
pub(crate) fn iter_start(comm: &Comm) -> Option<obs::span::SpanTimer> {
    if obs::enabled() {
        Some(obs::span::span_start(comm.virtual_time()))
    } else {
        None
    }
}

/// Close a per-iteration span, carrying the iteration index and the
/// residual norm it ended with.
#[cold]
pub(crate) fn iter_finish(
    timer: obs::span::SpanTimer,
    comm: &Comm,
    name: &'static str,
    it: usize,
    residual: f64,
) {
    timer.finish(
        "solver",
        name,
        comm.virtual_time(),
        &[("iter", it as f64), ("residual", residual)],
    );
}

/// Run `f` inside a named solver-phase span (`cg.spmv`, `cg.precond`, …)
/// on this rank's virtual timeline. Phases are container spans: they give
/// the critical-path report its per-phase subsystem attribution without
/// entering the walk themselves.
#[inline]
pub(crate) fn phase<R>(comm: &Comm, name: &'static str, f: impl FnOnce() -> R) -> R {
    if !obs::enabled() {
        return f();
    }
    let t = obs::span::span_start(comm.virtual_time());
    let out = f();
    t.finish("solver", name, comm.virtual_time(), &[]);
    out
}

#[cold]
fn record_solve_cold(solver: &'static str, iterations: u64, converged: bool, final_residual: f64) {
    let g = obs::global();
    let labels = [("solver", solver)];
    g.counter(&obs::registry::key("solver.solves", &labels))
        .inc();
    g.counter(&obs::registry::key("solver.iterations", &labels))
        .add(iterations);
    if converged {
        g.counter(&obs::registry::key("solver.converged", &labels))
            .inc();
    }
    g.gauge(&obs::registry::key("solver.final_residual", &labels))
        .set(final_residual);
}

/// Record solve-level metrics (`solver.iterations{solver=cg}` etc.).
#[inline]
pub(crate) fn record_solve(
    solver: &'static str,
    iterations: usize,
    converged: bool,
    final_residual: f64,
) {
    if obs::enabled() {
        record_solve_cold(solver, iterations as u64, converged, final_residual);
    }
}
