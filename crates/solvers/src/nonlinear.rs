//! Nonlinear solvers (NOX analog): Newton's method with a backtracking
//! line search, using any Krylov method for the linear subproblem —
//! the Newton–Krylov pattern the paper's §V user story sketches
//! ("the solver calls back to Python to evaluate a model").

use comm::Comm;
use dlinalg::{CsrMatrix, DistVector};

use crate::krylov::{gmres, KrylovConfig};
use crate::precond::IdentityPrecond;
use crate::status::SolveStatus;

/// A nonlinear system `F(x) = 0` with an explicitly assembled Jacobian.
/// Implementors are the "model callbacks" of the paper's workflow; the
/// `hpc-core` crate shows a Seamless-compiled kernel implementing one.
pub trait NonlinearProblem {
    /// Residual `F(x)`. Collective if it communicates.
    fn residual(&self, comm: &Comm, x: &DistVector<f64>) -> DistVector<f64>;
    /// Jacobian `∂F/∂x` at `x`.
    fn jacobian(&self, comm: &Comm, x: &DistVector<f64>) -> CsrMatrix<f64>;
}

/// Newton iteration controls.
#[derive(Debug, Clone, Copy)]
pub struct NewtonConfig {
    /// Maximum Newton steps.
    pub max_iter: usize,
    /// Absolute tolerance on ‖F(x)‖₂.
    pub tol: f64,
    /// Inner linear-solver controls.
    pub linear: KrylovConfig,
    /// Armijo slope parameter for the backtracking line search.
    pub armijo_c: f64,
    /// Maximum step halvings per Newton step.
    pub max_backtracks: usize,
}

impl Default for NewtonConfig {
    fn default() -> Self {
        NewtonConfig {
            max_iter: 50,
            tol: 1e-10,
            linear: KrylovConfig {
                rtol: 1e-6,
                max_iter: 500,
                ..Default::default()
            },
            armijo_c: 1e-4,
            max_backtracks: 20,
        }
    }
}

/// Newton–Krylov with backtracking: updates `x` in place, returns the
/// nonlinear convergence history (‖F‖ per Newton step). Collective.
pub fn newton_krylov<P: NonlinearProblem>(
    comm: &Comm,
    problem: &P,
    x: &mut DistVector<f64>,
    cfg: &NewtonConfig,
) -> SolveStatus {
    let mut f = problem.residual(comm, x);
    let mut fnorm = f.norm2(comm);
    let mut history = vec![fnorm];
    if fnorm <= cfg.tol {
        crate::instrument::record_solve("newton", 0, true, fnorm);
        return SolveStatus {
            converged: true,
            iterations: 0,
            history,
        };
    }
    for it in 1..=cfg.max_iter {
        let timer = crate::instrument::iter_start(comm);
        let j = problem.jacobian(comm, x);
        // Solve J δ = −F.
        let mut rhs = f.clone();
        rhs.scale(-1.0);
        let mut delta = DistVector::zeros(x.map().clone());
        let lin = gmres(comm, &j, &rhs, &mut delta, &IdentityPrecond, &cfg.linear);
        assert!(
            lin.converged || lin.final_residual() < fnorm,
            "inner linear solve made no progress"
        );
        // Backtracking line search on ‖F(x + λ δ)‖.
        let mut lambda = 1.0f64;
        let mut accepted = false;
        for _ in 0..=cfg.max_backtracks {
            let mut trial = x.clone();
            trial.axpy(lambda, &delta);
            let ftrial = problem.residual(comm, &trial);
            let ftrial_norm = ftrial.norm2(comm);
            if ftrial_norm <= (1.0 - cfg.armijo_c * lambda) * fnorm {
                *x = trial;
                f = ftrial;
                fnorm = ftrial_norm;
                accepted = true;
                break;
            }
            lambda *= 0.5;
        }
        if !accepted {
            // stagnation: report divergence with the history so far
            if let Some(t) = timer {
                crate::instrument::iter_finish(t, comm, "newton.iter", it, fnorm);
            }
            crate::instrument::record_solve("newton", it, false, fnorm);
            return SolveStatus {
                converged: false,
                iterations: it,
                history,
            };
        }
        history.push(fnorm);
        if let Some(t) = timer {
            crate::instrument::iter_finish(t, comm, "newton.iter", it, fnorm);
        }
        if fnorm <= cfg.tol {
            crate::instrument::record_solve("newton", it, true, fnorm);
            return SolveStatus {
                converged: true,
                iterations: it,
                history,
            };
        }
    }
    crate::instrument::record_solve("newton", cfg.max_iter, false, fnorm);
    SolveStatus {
        converged: false,
        iterations: cfg.max_iter,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm::Universe;
    use dmap::DistMap;

    /// 1-D Bratu problem: −u'' − λ eᵘ = 0 with Dirichlet u(0)=u(1)=0,
    /// discretized on n interior points. Has a solution for λ below the
    /// critical value ≈ 3.51.
    struct Bratu {
        n: usize,
        lambda: f64,
    }

    impl Bratu {
        fn h(&self) -> f64 {
            1.0 / (self.n as f64 + 1.0)
        }
    }

    impl NonlinearProblem for Bratu {
        fn residual(&self, comm: &Comm, x: &DistVector<f64>) -> DistVector<f64> {
            let h2 = self.h() * self.h();
            // gather ghost neighbors via a tridiagonal "matvec" trick:
            // F_i = (2u_i − u_{i−1} − u_{i+1})/h² − λ exp(u_i)
            let n = self.n;
            let map = x.map().clone();
            let lap = CsrMatrix::from_row_fn(comm, map.clone(), map, move |g| {
                let mut row = Vec::new();
                if g > 0 {
                    row.push((g - 1, -1.0));
                }
                row.push((g, 2.0));
                if g + 1 < n {
                    row.push((g + 1, -1.0));
                }
                row
            });
            let mut f = lap.matvec(comm, x);
            let lam = self.lambda;
            for (fi, &ui) in f.local_mut().iter_mut().zip(x.local().iter()) {
                *fi = *fi / h2 - lam * ui.exp();
            }
            f
        }

        fn jacobian(&self, comm: &Comm, x: &DistVector<f64>) -> CsrMatrix<f64> {
            let h2 = self.h() * self.h();
            let n = self.n;
            let lam = self.lambda;
            let map = x.map().clone();
            let xl: Vec<f64> = x.local().to_vec();
            let map2 = map.clone();
            CsrMatrix::from_row_fn(comm, map.clone(), map, move |g| {
                let l = map2.global_to_local(g).unwrap();
                let mut row = Vec::new();
                if g > 0 {
                    row.push((g - 1, -1.0 / h2));
                }
                row.push((g, 2.0 / h2 - lam * xl[l].exp()));
                if g + 1 < n {
                    row.push((g + 1, -1.0 / h2));
                }
                row
            })
        }
    }

    #[test]
    fn newton_solves_bratu() {
        for p in [1, 2, 3] {
            Universe::run(p, |comm| {
                let n = 24;
                let problem = Bratu { n, lambda: 1.0 };
                let map = DistMap::block(n, comm.size(), comm.rank());
                let mut x = DistVector::zeros(map);
                let st = newton_krylov(comm, &problem, &mut x, &NewtonConfig::default());
                assert!(st.converged, "newton failed: history {:?}", st.history);
                // quadratic-ish convergence: few iterations
                assert!(st.iterations <= 8, "{} iterations", st.iterations);
                // solution is positive and symmetric-ish with max in the middle
                let full = x.gather_global(comm);
                assert!(full.iter().all(|&u| u > 0.0));
                let max = full.iter().cloned().fold(0.0f64, f64::max);
                assert!((full[n / 2] - max).abs() < 1e-6);
            });
        }
    }

    #[test]
    fn newton_residual_history_decreases() {
        Universe::run(2, |comm| {
            let problem = Bratu { n: 16, lambda: 2.0 };
            let map = DistMap::block(16, comm.size(), comm.rank());
            let mut x = DistVector::zeros(map);
            let st = newton_krylov(comm, &problem, &mut x, &NewtonConfig::default());
            assert!(st.converged);
            for w in st.history.windows(2) {
                assert!(
                    w[1] <= w[0] * 1.0001,
                    "history not monotone: {:?}",
                    st.history
                );
            }
        });
    }

    #[test]
    fn converged_start_returns_immediately() {
        Universe::run(1, |comm| {
            // trivial problem F(x) = x with x = 0 start
            struct Lin;
            impl NonlinearProblem for Lin {
                fn residual(&self, _c: &Comm, x: &DistVector<f64>) -> DistVector<f64> {
                    x.clone()
                }
                fn jacobian(&self, c: &Comm, x: &DistVector<f64>) -> CsrMatrix<f64> {
                    let m = x.map().clone();
                    CsrMatrix::from_row_fn(c, m.clone(), m, |g| vec![(g, 1.0)])
                }
            }
            let map = DistMap::block(4, comm.size(), comm.rank());
            let mut x = DistVector::zeros(map);
            let st = newton_krylov(comm, &Lin, &mut x, &NewtonConfig::default());
            assert!(st.converged);
            assert_eq!(st.iterations, 0);
        });
    }

    #[test]
    fn linear_problem_converges_in_one_step() {
        Universe::run(2, |comm| {
            // F(x) = A x − b, Newton solves it in exactly one step
            struct LinSys {
                n: usize,
            }
            impl NonlinearProblem for LinSys {
                fn residual(&self, c: &Comm, x: &DistVector<f64>) -> DistVector<f64> {
                    let a = self.jacobian(c, x);
                    let mut f = a.matvec(c, x);
                    // b = 1
                    for v in f.local_mut() {
                        *v -= 1.0;
                    }
                    f
                }
                fn jacobian(&self, c: &Comm, x: &DistVector<f64>) -> CsrMatrix<f64> {
                    let n = self.n;
                    let m = x.map().clone();
                    CsrMatrix::from_row_fn(c, m.clone(), m, move |g| {
                        let mut row = vec![(g, 3.0)];
                        if g + 1 < n {
                            row.push((g + 1, -1.0));
                        }
                        row
                    })
                }
            }
            let map = DistMap::block(10, comm.size(), comm.rank());
            let mut x = DistVector::zeros(map);
            let cfg = NewtonConfig {
                linear: KrylovConfig {
                    rtol: 1e-14,
                    max_iter: 200,
                    ..Default::default()
                },
                ..Default::default()
            };
            let st = newton_krylov(comm, &LinSys { n: 10 }, &mut x, &cfg);
            assert!(st.converged);
            assert!(st.iterations <= 2, "{}", st.iterations);
        });
    }
}
