//! Krylov-space iterative solvers (AztecOO analog): preconditioned CG,
//! BiCGStab, and restarted GMRES.
//!
//! CG and BiCGStab are generic over [`Scalar`] (complex Hermitian systems
//! work through the conjugated dot product); GMRES is implemented for
//! `f64`, where the Givens-rotation least-squares update is standard.

use comm::Comm;
use dlinalg::{CsrMatrix, DistVector, RealScalar, Scalar};

use crate::checkpoint::{CgCheckpoint, CgCheckpointing};
use crate::instrument;
use crate::precond::Preconditioner;
use crate::status::SolveStatus;

/// Stopping criteria shared by the Krylov methods.
#[derive(Debug, Clone, Copy)]
pub struct KrylovConfig {
    /// Maximum iterations (for GMRES: total inner iterations).
    pub max_iter: usize,
    /// Relative tolerance on ‖r‖/‖r₀‖.
    pub rtol: f64,
    /// Absolute tolerance on ‖r‖.
    pub atol: f64,
    /// GMRES restart length (ignored by CG/BiCGStab).
    pub restart: usize,
}

impl Default for KrylovConfig {
    fn default() -> Self {
        KrylovConfig {
            max_iter: 1000,
            rtol: 1e-10,
            atol: 1e-300,
            restart: 30,
        }
    }
}

impl KrylovConfig {
    /// Set the iteration budget.
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Set the relative tolerance on ‖r‖/‖r₀‖.
    #[must_use]
    pub fn with_rtol(mut self, rtol: f64) -> Self {
        self.rtol = rtol;
        self
    }

    /// Set the absolute tolerance on ‖r‖.
    #[must_use]
    pub fn with_atol(mut self, atol: f64) -> Self {
        self.atol = atol;
        self
    }

    /// Set the GMRES restart length.
    #[must_use]
    pub fn with_restart(mut self, restart: usize) -> Self {
        self.restart = restart;
        self
    }

    fn done(&self, r: f64, r0: f64) -> bool {
        r <= self.atol || (r0 > 0.0 && r / r0 <= self.rtol)
    }
}

/// Preconditioned conjugate gradients for SPD (or Hermitian positive
/// definite) systems. Solves `A·x = b`, starting from `x`'s current value.
pub fn cg<S: Scalar>(
    comm: &Comm,
    a: &CsrMatrix<S>,
    b: &DistVector<S>,
    x: &mut DistVector<S>,
    m: &dyn Preconditioner<S>,
    cfg: &KrylovConfig,
) -> SolveStatus {
    cg_checkpointed(comm, a, b, x, m, cfg, &CgCheckpointing::none())
}

/// [`cg`] with periodic state checkpoints and optional restart. Plain and
/// checkpointed solves share this one code path, so a run resumed from a
/// [`CgCheckpoint`] replays the exact floating-point sequence of an
/// uninterrupted run — bitwise-identical iterates included (E18).
pub fn cg_checkpointed<S: Scalar>(
    comm: &Comm,
    a: &CsrMatrix<S>,
    b: &DistVector<S>,
    x: &mut DistVector<S>,
    m: &dyn Preconditioner<S>,
    cfg: &KrylovConfig,
    ck: &CgCheckpointing<'_, S>,
) -> SolveStatus {
    let mut r;
    let mut p;
    let mut rz;
    let r0_norm;
    let mut history;
    let start;
    if let Some(c) = ck.resume {
        assert_eq!(
            c.x.len(),
            x.local().len(),
            "resume checkpoint does not match this rank's segment"
        );
        x.local_mut().copy_from_slice(&c.x);
        r = DistVector::from_local(b.map().clone(), c.r.clone());
        p = DistVector::from_local(b.map().clone(), c.p.clone());
        rz = c.rz;
        r0_norm = c.r0_norm;
        history = c.history.clone();
        start = c.iteration;
    } else {
        let ax = a.matvec(comm, x);
        r = b.clone();
        r.axpy(-S::one(), &ax);
        r0_norm = r.norm2(comm).to_f64();
        history = vec![r0_norm];
        if cfg.done(r0_norm, r0_norm) || r0_norm == 0.0 {
            instrument::record_solve("cg", 0, true, r0_norm);
            return SolveStatus {
                converged: true,
                iterations: 0,
                history,
            };
        }
        let z0 = m.apply(comm, &r);
        rz = r.dot(&z0, comm);
        p = z0;
        start = 1;
    }
    // Workspaces reused across iterations: the inner loop below performs
    // no heap allocation besides the (pre-reserved) history push.
    history.reserve((cfg.max_iter + 1).saturating_sub(start));
    let mut ap = DistVector::zeros(b.map().clone());
    let mut z = DistVector::zeros(b.map().clone());
    for it in start..=cfg.max_iter {
        if ck.every > 0 && (it - 1) % ck.every == 0 {
            if let Some(sink) = ck.sink {
                sink(CgCheckpoint {
                    iteration: it,
                    x: x.local().to_vec(),
                    r: r.local().to_vec(),
                    p: p.local().to_vec(),
                    rz,
                    r0_norm,
                    history: history.clone(),
                });
            }
        }
        let timer = instrument::iter_start(comm);
        instrument::phase(comm, "cg.spmv", || a.matvec_into(comm, &p, &mut ap));
        let pap = p.dot(&ap, comm);
        let alpha = rz / pap;
        x.axpy(alpha, &p);
        r.axpy(-alpha, &ap);
        let rnorm = r.norm2(comm).to_f64();
        history.push(rnorm);
        if let Some(t) = timer {
            instrument::iter_finish(t, comm, "cg.iter", it, rnorm);
        }
        if cfg.done(rnorm, r0_norm) {
            instrument::record_solve("cg", it, true, rnorm);
            return SolveStatus {
                converged: true,
                iterations: it,
                history,
            };
        }
        instrument::phase(comm, "cg.precond", || m.apply_into(comm, &r, &mut z));
        let rz_new = r.dot(&z, comm);
        let beta = rz_new / rz;
        rz = rz_new;
        // p ← z + beta·p
        p.scale(beta);
        p.axpy(S::one(), &z);
    }
    instrument::record_solve("cg", cfg.max_iter, false, *history.last().unwrap());
    SolveStatus {
        converged: false,
        iterations: cfg.max_iter,
        history,
    }
}

/// Preconditioned BiCGStab for general (nonsymmetric) systems.
pub fn bicgstab<S: Scalar>(
    comm: &Comm,
    a: &CsrMatrix<S>,
    b: &DistVector<S>,
    x: &mut DistVector<S>,
    m: &dyn Preconditioner<S>,
    cfg: &KrylovConfig,
) -> SolveStatus {
    let ax = a.matvec(comm, x);
    let mut r = b.clone();
    r.axpy(-S::one(), &ax);
    let r0_norm = r.norm2(comm).to_f64();
    let mut history = vec![r0_norm];
    if cfg.done(r0_norm, r0_norm) || r0_norm == 0.0 {
        instrument::record_solve("bicgstab", 0, true, r0_norm);
        return SolveStatus {
            converged: true,
            iterations: 0,
            history,
        };
    }
    let r_hat = r.clone(); // shadow residual
    let mut rho = S::one();
    let mut alpha = S::one();
    let mut omega = S::one();
    let mut v = DistVector::zeros(b.map().clone());
    let mut p = DistVector::zeros(b.map().clone());
    // Workspaces reused across iterations (no per-iteration allocation).
    let mut p_hat = DistVector::zeros(b.map().clone());
    let mut s = DistVector::zeros(b.map().clone());
    let mut s_hat = DistVector::zeros(b.map().clone());
    let mut t = DistVector::zeros(b.map().clone());
    history.reserve(cfg.max_iter);
    for it in 1..=cfg.max_iter {
        let timer = instrument::iter_start(comm);
        let rho_new = r_hat.dot(&r, comm);
        if rho_new.abs().to_f64() == 0.0 {
            break; // breakdown
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p ← r + beta (p − ω v)
        p.axpy(-omega, &v);
        p.scale(beta);
        p.axpy(S::one(), &r);
        m.apply_into(comm, &p, &mut p_hat);
        a.matvec_into(comm, &p_hat, &mut v);
        alpha = rho / r_hat.dot(&v, comm);
        // s = r − α v
        s.local_mut().copy_from_slice(r.local());
        s.axpy(-alpha, &v);
        let snorm = s.norm2(comm).to_f64();
        if cfg.done(snorm, r0_norm) {
            x.axpy(alpha, &p_hat);
            history.push(snorm);
            if let Some(t) = timer {
                instrument::iter_finish(t, comm, "bicgstab.iter", it, snorm);
            }
            instrument::record_solve("bicgstab", it, true, snorm);
            return SolveStatus {
                converged: true,
                iterations: it,
                history,
            };
        }
        m.apply_into(comm, &s, &mut s_hat);
        a.matvec_into(comm, &s_hat, &mut t);
        let tt = t.dot(&t, comm);
        if tt.abs().to_f64() == 0.0 {
            break;
        }
        omega = t.dot(&s, comm) / tt;
        // x ← x + α p_hat + ω s_hat
        x.axpy(alpha, &p_hat);
        x.axpy(omega, &s_hat);
        // r = s − ω t (swap keeps both buffers alive for reuse)
        std::mem::swap(&mut r, &mut s);
        r.axpy(-omega, &t);
        let rnorm = r.norm2(comm).to_f64();
        history.push(rnorm);
        if let Some(t) = timer {
            instrument::iter_finish(t, comm, "bicgstab.iter", it, rnorm);
        }
        if cfg.done(rnorm, r0_norm) {
            instrument::record_solve("bicgstab", it, true, rnorm);
            return SolveStatus {
                converged: true,
                iterations: it,
                history,
            };
        }
        if omega.abs().to_f64() == 0.0 {
            break;
        }
    }
    instrument::record_solve(
        "bicgstab",
        history.len() - 1,
        false,
        *history.last().unwrap(),
    );
    SolveStatus {
        converged: false,
        iterations: history.len() - 1,
        history,
    }
}

/// Right-preconditioned restarted GMRES(m) for general `f64` systems:
/// solves `A·M⁻¹·u = b`, `x = M⁻¹·u`.
pub fn gmres(
    comm: &Comm,
    a: &CsrMatrix<f64>,
    b: &DistVector<f64>,
    x: &mut DistVector<f64>,
    m: &dyn Preconditioner<f64>,
    cfg: &KrylovConfig,
) -> SolveStatus {
    let restart = cfg.restart.max(1);
    let mut history = Vec::with_capacity(cfg.max_iter + 1);
    let mut total_iters = 0usize;
    let mut r0_norm = f64::NAN;
    // Preconditioned-vector workspace reused across all inner iterations.
    let mut zj = DistVector::zeros(b.map().clone());
    loop {
        // residual of the current iterate
        let ax = a.matvec(comm, x);
        let mut r = b.clone();
        r.axpy(-1.0, &ax);
        let beta = r.norm2(comm);
        if r0_norm.is_nan() {
            r0_norm = beta;
            history.push(beta);
        }
        if cfg.done(beta, r0_norm) {
            instrument::record_solve("gmres", total_iters, true, beta);
            return SolveStatus {
                converged: true,
                iterations: total_iters,
                history,
            };
        }
        if total_iters >= cfg.max_iter {
            instrument::record_solve("gmres", total_iters, false, beta);
            return SolveStatus {
                converged: false,
                iterations: total_iters,
                history,
            };
        }
        // Arnoldi with modified Gram–Schmidt.
        let mut basis: Vec<DistVector<f64>> = Vec::with_capacity(restart + 1);
        let mut v0 = r.clone();
        v0.scale(1.0 / beta);
        basis.push(v0);
        // Hessenberg stored column-wise: h[j] has j+2 entries.
        let mut h: Vec<Vec<f64>> = Vec::with_capacity(restart);
        let mut cs: Vec<f64> = Vec::with_capacity(restart);
        let mut sn: Vec<f64> = Vec::with_capacity(restart);
        let mut g = vec![0.0f64; restart + 1];
        g[0] = beta;
        let mut k_used = 0;
        for j in 0..restart {
            if total_iters >= cfg.max_iter {
                break;
            }
            total_iters += 1;
            let timer = instrument::iter_start(comm);
            m.apply_into(comm, &basis[j], &mut zj);
            let mut w = a.matvec(comm, &zj);
            let mut hj = vec![0.0f64; j + 2];
            for (i, vi) in basis.iter().enumerate() {
                let hij = vi.dot(&w, comm);
                hj[i] = hij;
                w.axpy(-hij, vi);
            }
            let wnorm = w.norm2(comm);
            hj[j + 1] = wnorm;
            // Apply existing Givens rotations to the new column.
            for i in 0..j {
                let t = cs[i] * hj[i] + sn[i] * hj[i + 1];
                hj[i + 1] = -sn[i] * hj[i] + cs[i] * hj[i + 1];
                hj[i] = t;
            }
            // New rotation to zero hj[j+1].
            let (c, s) = givens(hj[j], hj[j + 1]);
            cs.push(c);
            sn.push(s);
            hj[j] = c * hj[j] + s * hj[j + 1];
            hj[j + 1] = 0.0;
            g[j + 1] = -s * g[j];
            g[j] *= c;
            h.push(hj);
            k_used = j + 1;
            let res = g[j + 1].abs();
            history.push(res);
            if let Some(t) = timer {
                instrument::iter_finish(t, comm, "gmres.iter", total_iters, res);
            }
            if cfg.done(res, r0_norm) || wnorm == 0.0 {
                break;
            }
            let mut vnext = w;
            vnext.scale(1.0 / wnorm);
            basis.push(vnext);
        }
        // Back-substitute the triangular system for the update coefficients.
        let mut y = vec![0.0f64; k_used];
        for i in (0..k_used).rev() {
            let mut acc = g[i];
            for j in i + 1..k_used {
                acc -= h[j][i] * y[j];
            }
            y[i] = acc / h[i][i];
        }
        // x ← x + M⁻¹ (V y)
        let mut update = DistVector::zeros(b.map().clone());
        for (j, &yj) in y.iter().enumerate() {
            update.axpy(yj, &basis[j]);
        }
        m.apply_into(comm, &update, &mut zj);
        x.axpy(1.0, &zj);
        // loop continues: recompute residual, restart or exit
    }
}

fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a.abs() < b.abs() {
        let t = a / b;
        let s = 1.0 / (1.0 + t * t).sqrt();
        (s * t, s)
    } else {
        let t = b / a;
        let c = 1.0 / (1.0 + t * t).sqrt();
        (c, c * t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{IdentityPrecond, IluPrecond, JacobiPrecond};
    use comm::Universe;
    use dmap::DistMap;

    fn laplace(comm: &Comm, n: usize) -> CsrMatrix<f64> {
        let m = DistMap::block(n, comm.size(), comm.rank());
        CsrMatrix::from_row_fn(comm, m.clone(), m, move |g| {
            let mut row = Vec::new();
            if g > 0 {
                row.push((g - 1, -1.0));
            }
            row.push((g, 2.0));
            if g + 1 < n {
                row.push((g + 1, -1.0));
            }
            row
        })
    }

    fn check_residual(comm: &Comm, a: &CsrMatrix<f64>, b: &DistVector<f64>, x: &DistVector<f64>) {
        let ax = a.matvec(comm, x);
        let mut r = b.clone();
        r.axpy(-1.0, &ax);
        let rel = r.norm2(comm) / b.norm2(comm);
        assert!(rel < 1e-8, "relative residual {rel}");
    }

    #[test]
    fn cg_solves_laplace_multirank() {
        for p in [1, 2, 3] {
            Universe::run(p, |comm| {
                let n = 40;
                let a = laplace(comm, n);
                let b = DistVector::from_fn(a.domain_map().clone(), |g| ((g as f64) * 0.1).sin());
                let mut x = DistVector::zeros(a.domain_map().clone());
                let st = cg(
                    comm,
                    &a,
                    &b,
                    &mut x,
                    &IdentityPrecond,
                    &KrylovConfig::default(),
                );
                assert!(st.converged, "CG did not converge: {:?}", st.iterations);
                check_residual(comm, &a, &b, &x);
                // 1-D Laplace: CG converges in at most n iterations
                assert!(st.iterations <= n);
            });
        }
    }

    #[test]
    fn cg_iteration_count_is_rank_invariant() {
        let iters: Vec<usize> = [1usize, 2, 4]
            .iter()
            .map(|&p| {
                Universe::run(p, |comm| {
                    let a = laplace(comm, 32);
                    let b = DistVector::constant(a.domain_map().clone(), 1.0);
                    let mut x = DistVector::zeros(a.domain_map().clone());
                    let st = cg(
                        comm,
                        &a,
                        &b,
                        &mut x,
                        &IdentityPrecond,
                        &KrylovConfig::default(),
                    );
                    st.iterations
                })[0]
            })
            .collect();
        assert_eq!(iters[0], iters[1]);
        assert_eq!(iters[0], iters[2]);
    }

    #[test]
    fn jacobi_preconditioned_cg_converges() {
        Universe::run(2, |comm| {
            // variable-coefficient 1-D diffusion: symmetric, with a
            // strongly varying diagonal so Jacobi actually helps
            let n = 30;
            let m = DistMap::block(n, comm.size(), comm.rank());
            let kcoef = |i: usize| ((i * i) % 7 + 1) as f64;
            let a = CsrMatrix::from_row_fn(comm, m.clone(), m, move |g| {
                let mut row = Vec::new();
                if g > 0 {
                    row.push((g - 1, -kcoef(g)));
                }
                row.push((g, kcoef(g) + kcoef(g + 1)));
                if g + 1 < n {
                    row.push((g + 1, -kcoef(g + 1)));
                }
                row
            });
            let b = DistVector::constant(a.domain_map().clone(), 1.0);
            let mut x0 = DistVector::zeros(a.domain_map().clone());
            let mut x1 = DistVector::zeros(a.domain_map().clone());
            let cfg = KrylovConfig::default();
            let plain = cg(comm, &a, &b, &mut x0, &IdentityPrecond, &cfg);
            let prec = cg(comm, &a, &b, &mut x1, &JacobiPrecond::new(&a), &cfg);
            assert!(prec.converged && plain.converged);
            assert!(
                prec.iterations <= plain.iterations,
                "jacobi {} vs plain {}",
                prec.iterations,
                plain.iterations
            );
        });
    }

    #[test]
    fn bicgstab_solves_nonsymmetric() {
        Universe::run(2, |comm| {
            let n = 30;
            let m = DistMap::block(n, comm.size(), comm.rank());
            // advection-diffusion: nonsymmetric bands
            let a = CsrMatrix::from_row_fn(comm, m.clone(), m, move |g| {
                let mut row = Vec::new();
                if g > 0 {
                    row.push((g - 1, -1.5));
                }
                row.push((g, 3.0));
                if g + 1 < n {
                    row.push((g + 1, -0.5));
                }
                row
            });
            let b = DistVector::from_fn(a.domain_map().clone(), |g| 1.0 / (g as f64 + 1.0));
            let mut x = DistVector::zeros(a.domain_map().clone());
            let st = bicgstab(
                comm,
                &a,
                &b,
                &mut x,
                &IdentityPrecond,
                &KrylovConfig::default(),
            );
            assert!(st.converged);
            check_residual(comm, &a, &b, &x);
        });
    }

    #[test]
    fn gmres_solves_nonsymmetric_with_restart() {
        Universe::run(3, |comm| {
            let n = 40;
            let m = DistMap::block(n, comm.size(), comm.rank());
            let a = CsrMatrix::from_row_fn(comm, m.clone(), m, move |g| {
                let mut row = Vec::new();
                if g > 0 {
                    row.push((g - 1, -1.8));
                }
                row.push((g, 3.0));
                if g + 1 < n {
                    row.push((g + 1, -0.2));
                }
                row
            });
            let b = DistVector::constant(a.domain_map().clone(), 1.0);
            let mut x = DistVector::zeros(a.domain_map().clone());
            let cfg = KrylovConfig {
                restart: 10,
                max_iter: 500,
                ..Default::default()
            };
            let st = gmres(comm, &a, &b, &mut x, &IdentityPrecond, &cfg);
            assert!(st.converged, "gmres stalled at {}", st.final_residual());
            check_residual(comm, &a, &b, &x);
        });
    }

    #[test]
    fn gmres_with_ilu_converges_faster() {
        Universe::run(1, |comm| {
            let a = laplace(comm, 60);
            let b = DistVector::constant(a.domain_map().clone(), 1.0);
            let cfg = KrylovConfig {
                restart: 20,
                max_iter: 400,
                ..Default::default()
            };
            let mut x0 = DistVector::zeros(a.domain_map().clone());
            let plain = gmres(comm, &a, &b, &mut x0, &IdentityPrecond, &cfg);
            let mut x1 = DistVector::zeros(a.domain_map().clone());
            let prec = gmres(comm, &a, &b, &mut x1, &IluPrecond::new(&a), &cfg);
            assert!(prec.converged);
            assert!(
                prec.iterations < plain.iterations,
                "ilu {} vs plain {}",
                prec.iterations,
                plain.iterations
            );
        });
    }

    #[test]
    fn cg_solves_complex_hermitian() {
        use dlinalg::Complex64;
        Universe::run(2, |comm| {
            let n = 16;
            let m = DistMap::block(n, comm.size(), comm.rank());
            // Hermitian tridiagonal: diag 4, off-diag ±i
            let a = CsrMatrix::from_row_fn(comm, m.clone(), m, move |g| {
                let mut row = Vec::new();
                if g > 0 {
                    row.push((g - 1, Complex64::new(0.0, -1.0)));
                }
                row.push((g, Complex64::new(4.0, 0.0)));
                if g + 1 < n {
                    row.push((g + 1, Complex64::new(0.0, 1.0)));
                }
                row
            });
            let b = DistVector::constant(a.domain_map().clone(), Complex64::new(1.0, 1.0));
            let mut x = DistVector::zeros(a.domain_map().clone());
            let st = cg(
                comm,
                &a,
                &b,
                &mut x,
                &IdentityPrecond,
                &KrylovConfig::default(),
            );
            assert!(st.converged);
            let ax = a.matvec(comm, &x);
            let mut r = b.clone();
            r.axpy(-Complex64::new(1.0, 0.0), &ax);
            assert!(r.norm2(comm) < 1e-8);
        });
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        Universe::run(2, |comm| {
            let a = laplace(comm, 10);
            let b = DistVector::zeros(a.domain_map().clone());
            let mut x = DistVector::zeros(a.domain_map().clone());
            let st = cg(
                comm,
                &a,
                &b,
                &mut x,
                &IdentityPrecond,
                &KrylovConfig::default(),
            );
            assert!(st.converged);
            assert_eq!(st.iterations, 0);
        });
    }

    #[test]
    fn checkpointed_restart_is_bitwise_identical() {
        use crate::checkpoint::{CgCheckpointing, CheckpointStore};
        let n_ranks = 3;
        let n = 48;
        // Reference: one uninterrupted solve, recording checkpoints.
        let store = CheckpointStore::new();
        let reference: Vec<(Vec<f64>, Vec<f64>)> = {
            let store = store.clone();
            Universe::run(n_ranks, move |comm| {
                let a = laplace(comm, n);
                let b = DistVector::from_fn(a.domain_map().clone(), |g| ((g as f64) * 0.3).cos());
                let mut x = DistVector::zeros(a.domain_map().clone());
                let rank = comm.rank();
                let store = store.clone();
                let sink = move |c| store.record(rank, c);
                let st = cg_checkpointed(
                    comm,
                    &a,
                    &b,
                    &mut x,
                    &IdentityPrecond,
                    &KrylovConfig::default(),
                    &CgCheckpointing {
                        every: 7,
                        sink: Some(&sink),
                        resume: None,
                    },
                );
                assert!(st.converged);
                (x.local().to_vec(), st.history)
            })
        };
        // Restart from the newest common checkpoint: the tail of the solve
        // must replay the identical floating-point sequence.
        let resume = store.resume_point(n_ranks).expect("checkpoints recorded");
        assert!(resume[0].iteration > 1, "should have advanced checkpoints");
        let resumed: Vec<(Vec<f64>, Vec<f64>)> = Universe::run(n_ranks, move |comm| {
            let a = laplace(comm, n);
            let b = DistVector::from_fn(a.domain_map().clone(), |g| ((g as f64) * 0.3).cos());
            let mut x = DistVector::zeros(a.domain_map().clone());
            let st = cg_checkpointed(
                comm,
                &a,
                &b,
                &mut x,
                &IdentityPrecond,
                &KrylovConfig::default(),
                &CgCheckpointing {
                    every: 0,
                    sink: None,
                    resume: Some(&resume[comm.rank()]),
                },
            );
            assert!(st.converged);
            (x.local().to_vec(), st.history)
        });
        for (rank, (full, res)) in reference.iter().zip(resumed.iter()).enumerate() {
            assert_eq!(full.0, res.0, "rank {rank}: iterate x must match bitwise");
            assert_eq!(full.1, res.1, "rank {rank}: residual history must match");
        }
    }

    #[test]
    fn max_iter_reports_nonconvergence() {
        Universe::run(1, |comm| {
            let a = laplace(comm, 100);
            let b = DistVector::constant(a.domain_map().clone(), 1.0);
            let mut x = DistVector::zeros(a.domain_map().clone());
            let cfg = KrylovConfig {
                max_iter: 3,
                ..Default::default()
            };
            let st = cg(comm, &a, &b, &mut x, &IdentityPrecond, &cfg);
            assert!(!st.converged);
            assert_eq!(st.iterations, 3);
            assert_eq!(st.history.len(), 4);
        });
    }
}
