//! Aggregation-based algebraic multigrid (ML analog).
//!
//! Builds a hierarchy of coarse operators by greedy local aggregation with
//! piecewise-constant (tentative, unsmoothed) prolongation, damped-Jacobi
//! smoothing on every level, and a gather-to-root direct solve on the
//! coarsest level. Used as a preconditioner for CG/GMRES in experiment
//! E10, where it plays the role of Trilinos' ML package.

use comm::Comm;
use dlinalg::{CsrMatrix, DistVector};
use dmap::DistMap;

use crate::direct::DirectSolver;
use crate::precond::Preconditioner;

/// Controls for the AMG hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct AmgConfig {
    /// Damped-Jacobi smoothing steps before and after coarse correction.
    pub n_smooth: usize,
    /// Jacobi damping factor (2/3 is the classic choice).
    pub omega: f64,
    /// Stop coarsening when the global size drops below this.
    pub coarse_threshold: usize,
    /// Hard cap on hierarchy depth.
    pub max_levels: usize,
}

impl Default for AmgConfig {
    fn default() -> Self {
        AmgConfig {
            n_smooth: 2,
            omega: 2.0 / 3.0,
            coarse_threshold: 64,
            max_levels: 12,
        }
    }
}

struct Level {
    a: CsrMatrix<f64>,
    inv_diag: Vec<f64>,
    /// local fine row → local coarse aggregate index
    agg_local: Vec<usize>,
    n_coarse_local: usize,
    coarse_map: DistMap,
}

/// The multilevel preconditioner.
pub struct AmgPreconditioner {
    levels: Vec<Level>,
    coarse_a_solver: DirectSolver<f64>,
    cfg: AmgConfig,
}

/// Greedy aggregation on the local square block graph: every unaggregated
/// node with no aggregated neighbor becomes a root and absorbs its
/// unaggregated local neighbors; leftovers join any adjacent aggregate or
/// become singletons. Returns (assignment, n_aggregates).
fn aggregate_local(a: &CsrMatrix<f64>) -> (Vec<usize>, usize) {
    let (rowptr, cols, _vals) = a.local_square_block();
    let n = rowptr.len() - 1;
    const UNASSIGNED: usize = usize::MAX;
    let mut agg = vec![UNASSIGNED; n];
    let mut n_agg = 0;
    // Phase 1: roots with fully unaggregated neighborhoods.
    for i in 0..n {
        if agg[i] != UNASSIGNED {
            continue;
        }
        let nbrs = &cols[rowptr[i]..rowptr[i + 1]];
        if nbrs.iter().all(|&j| agg[j] == UNASSIGNED) {
            for &j in nbrs {
                agg[j] = n_agg;
            }
            agg[i] = n_agg;
            n_agg += 1;
        }
    }
    // Phase 2: attach leftovers to a neighboring aggregate.
    for i in 0..n {
        if agg[i] != UNASSIGNED {
            continue;
        }
        let nbrs = &cols[rowptr[i]..rowptr[i + 1]];
        if let Some(&j) = nbrs.iter().find(|&&j| agg[j] != UNASSIGNED) {
            agg[i] = agg[j];
        } else {
            agg[i] = n_agg;
            n_agg += 1;
        }
    }
    (agg, n_agg)
}

impl AmgPreconditioner {
    /// Build the hierarchy for `a`. Collective.
    pub fn new(comm: &Comm, a: &CsrMatrix<f64>, cfg: AmgConfig) -> Self {
        let mut levels = Vec::new();
        let mut current = a.clone();
        for _ in 0..cfg.max_levels {
            let n_global = current.shape().0;
            if n_global <= cfg.coarse_threshold {
                break;
            }
            let (agg_local, n_agg) = aggregate_local(&current);
            // Global coarse numbering: block of aggregates per rank.
            let counts = comm.allgather(&n_agg);
            let coarse_map = DistMap::block_from_counts(&counts, comm.rank());
            let n_coarse_global = coarse_map.n_global();
            if n_coarse_global == 0 || n_coarse_global >= n_global {
                break; // aggregation stalled
            }
            let my_coarse_start = {
                let mut s = 0;
                for (r, &c) in counts.iter().enumerate() {
                    if r == comm.rank() {
                        break;
                    }
                    s += c;
                }
                s
            };
            // Coarse matrix: A_c[I][J] = Σ A[i][j] over i∈I, j∈J.
            // Need aggregate ids of ghost columns → halo gather.
            let agg_global: Vec<usize> = agg_local.iter().map(|&l| l + my_coarse_start).collect();
            let col_aggs = current.halo_gather(comm, &agg_global, usize::MAX);
            let mut triplets = Vec::with_capacity(current.nnz_local());
            let rowptr = current.rowptr().to_vec();
            let vals = current.values().to_vec();
            for i in 0..rowptr.len() - 1 {
                let gi = agg_global[i];
                for k in rowptr[i]..rowptr[i + 1] {
                    let gj = col_aggs[current.entry_local_col(k)];
                    debug_assert_ne!(gj, usize::MAX, "missing aggregate id for ghost");
                    triplets.push((gi, gj, vals[k]));
                }
            }
            let coarse_a =
                CsrMatrix::from_triplets(comm, coarse_map.clone(), coarse_map.clone(), triplets);
            let inv_diag: Vec<f64> = current
                .diagonal()
                .local()
                .iter()
                .map(|&d| {
                    assert!(d != 0.0, "AMG needs nonzero diagonals");
                    1.0 / d
                })
                .collect();
            levels.push(Level {
                a: current,
                inv_diag,
                agg_local,
                n_coarse_local: n_agg,
                coarse_map: coarse_map.clone(),
            });
            current = coarse_a;
        }
        let coarse_a_solver = DirectSolver::factor(comm, &current);
        AmgPreconditioner {
            levels,
            coarse_a_solver,
            cfg,
        }
    }

    /// Number of levels (including the direct-solved coarsest one).
    pub fn n_levels(&self) -> usize {
        self.levels.len() + 1
    }

    fn smooth(&self, comm: &Comm, level: &Level, z: &mut DistVector<f64>, r: &DistVector<f64>) {
        for _ in 0..self.cfg.n_smooth {
            // z ← z + ω D⁻¹ (r − A z)
            let az = level.a.matvec(comm, z);
            let zl = z.local_mut();
            for (i, ((&ri, &azi), &idi)) in r
                .local()
                .iter()
                .zip(az.local().iter())
                .zip(level.inv_diag.iter())
                .enumerate()
            {
                zl[i] += self.cfg.omega * idi * (ri - azi);
            }
        }
    }

    fn vcycle(&self, comm: &Comm, depth: usize, r: &DistVector<f64>) -> DistVector<f64> {
        if depth == self.levels.len() {
            return self.coarse_a_solver.solve(comm, r);
        }
        let level = &self.levels[depth];
        let mut z = DistVector::zeros(r.map().clone());
        self.smooth(comm, level, &mut z, r);
        // coarse residual: rc = Pᵀ (r − A z), local restriction
        let az = level.a.matvec(comm, &z);
        let mut rc = DistVector::zeros(level.coarse_map.clone());
        {
            let rcl = rc.local_mut();
            for (i, (&ri, &azi)) in r.local().iter().zip(az.local().iter()).enumerate() {
                rcl[level.agg_local[i]] += ri - azi;
            }
            debug_assert_eq!(rcl.len(), level.n_coarse_local);
        }
        let ec = self.vcycle(comm, depth + 1, &rc);
        // prolong: z += P ec (local)
        {
            let zl = z.local_mut();
            for (i, &aggi) in level.agg_local.iter().enumerate() {
                zl[i] += ec.local()[aggi];
            }
        }
        self.smooth(comm, level, &mut z, r);
        z
    }
}

impl Preconditioner<f64> for AmgPreconditioner {
    fn apply(&self, comm: &Comm, r: &DistVector<f64>) -> DistVector<f64> {
        let timer = crate::instrument::iter_start(comm);
        let z = self.vcycle(comm, 0, r);
        if let Some(t) = timer {
            t.finish(
                "solver",
                "amg.vcycle",
                comm.virtual_time(),
                &[("levels", self.n_levels() as f64)],
            );
        }
        z
    }
    fn name(&self) -> &'static str {
        "amg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::krylov::{cg, KrylovConfig};
    use crate::precond::{IdentityPrecond, JacobiPrecond};
    use comm::Universe;

    fn laplace2d(comm: &Comm, nx: usize, ny: usize) -> CsrMatrix<f64> {
        let n = nx * ny;
        let m = DistMap::block(n, comm.size(), comm.rank());
        CsrMatrix::from_row_fn(comm, m.clone(), m, move |g| {
            let (i, j) = (g % nx, g / nx);
            let mut row = Vec::new();
            if j > 0 {
                row.push((g - nx, -1.0));
            }
            if i > 0 {
                row.push((g - 1, -1.0));
            }
            row.push((g, 4.0));
            if i + 1 < nx {
                row.push((g + 1, -1.0));
            }
            if j + 1 < ny {
                row.push((g + nx, -1.0));
            }
            row
        })
    }

    #[test]
    fn hierarchy_coarsens() {
        Universe::run(2, |comm| {
            let a = laplace2d(comm, 16, 16);
            let amg = AmgPreconditioner::new(comm, &a, AmgConfig::default());
            assert!(amg.n_levels() >= 2, "expected a real hierarchy");
        });
    }

    #[test]
    fn amg_reduces_cg_iterations_dramatically() {
        Universe::run(2, |comm| {
            let a = laplace2d(comm, 24, 24);
            let b = DistVector::constant(a.domain_map().clone(), 1.0);
            let cfg = KrylovConfig {
                rtol: 1e-8,
                max_iter: 2000,
                ..Default::default()
            };
            let mut x0 = DistVector::zeros(a.domain_map().clone());
            let plain = cg(comm, &a, &b, &mut x0, &IdentityPrecond, &cfg);
            let mut x1 = DistVector::zeros(a.domain_map().clone());
            let jac = cg(comm, &a, &b, &mut x1, &JacobiPrecond::new(&a), &cfg);
            let amg = AmgPreconditioner::new(comm, &a, AmgConfig::default());
            let mut x2 = DistVector::zeros(a.domain_map().clone());
            let mg = cg(comm, &a, &b, &mut x2, &amg, &cfg);
            assert!(plain.converged && jac.converged && mg.converged);
            assert!(
                mg.iterations * 2 < plain.iterations,
                "amg {} vs plain {}",
                mg.iterations,
                plain.iterations
            );
            // solutions agree
            let mut e = x2.clone();
            e.axpy(-1.0, &x0);
            assert!(e.norm2(comm) / x0.norm2(comm) < 1e-6);
        });
    }

    #[test]
    fn amg_apply_is_symmetric_enough_for_cg() {
        // CG requires an SPD preconditioner; symmetric smoothing + exact
        // coarse solve keeps the V-cycle symmetric. Check ⟨Mr, s⟩ ≈ ⟨r, Ms⟩.
        Universe::run(2, |comm| {
            let a = laplace2d(comm, 10, 10);
            let amg = AmgPreconditioner::new(comm, &a, AmgConfig::default());
            let r = DistVector::from_fn(a.domain_map().clone(), |g| ((g * 13 % 7) as f64) - 3.0);
            let s = DistVector::from_fn(a.domain_map().clone(), |g| ((g * 5 % 11) as f64) - 5.0);
            let mr = amg.apply(comm, &r);
            let ms = amg.apply(comm, &s);
            let lhs = mr.dot(&s, comm);
            let rhs = r.dot(&ms, comm);
            assert!(
                (lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0),
                "{lhs} vs {rhs}"
            );
        });
    }

    #[test]
    fn small_matrix_goes_straight_to_direct() {
        Universe::run(2, |comm| {
            let a = laplace2d(comm, 4, 4); // 16 ≤ default threshold
            let amg = AmgPreconditioner::new(comm, &a, AmgConfig::default());
            assert_eq!(amg.n_levels(), 1);
            // acts as an exact solver then
            let r = DistVector::constant(a.domain_map().clone(), 1.0);
            let z = amg.apply(comm, &r);
            let az = a.matvec(comm, &z);
            let mut e = az.clone();
            e.axpy(-1.0, &r);
            assert!(e.norm2(comm) < 1e-10);
        });
    }
}
