//! Shared helpers for the experiment harness.
//!
//! Every experiment from DESIGN.md §4 has a binary (`e01` … `e16`) that
//! prints the regenerated table/series; `cargo bench` additionally runs
//! the Criterion microbenchmarks. Experiments report both *measured* wall
//! time (this host) and, where scaling shape matters, the *modeled*
//! LogGP cluster makespan.

use std::time::Instant;

/// RAII handle from [`obs_init`]; flushes observability output (trace
/// file, text report, `--metrics-json` dump) when the experiment exits.
pub struct ObsSession {
    metrics_json: bool,
}

/// Initialize observability for an experiment binary. Recognizes the
/// `--metrics-json` CLI flag — enable recording and print the metrics
/// registry as JSON on stdout when the run finishes — in addition to the
/// `HPC_TRACE` / `HPC_METRICS` environment variables honored by
/// [`obs::init_from_env`]. Call first in `main` and hold the guard:
///
/// ```no_run
/// let _obs = bench::obs_init();
/// // ... experiment ...
/// ```
pub fn obs_init() -> ObsSession {
    let metrics_json = std::env::args().any(|a| a == "--metrics-json");
    if metrics_json {
        obs::set_enabled(true);
    }
    obs::init_from_env();
    ObsSession { metrics_json }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        if self.metrics_json {
            println!("{}", obs::report::metrics_json());
        }
        obs::finalize();
    }
}

/// Time a closure, returning (result, seconds).
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Best-of-`reps` wall time, seconds.
pub fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (_, t) = timed(&mut f);
        best = best.min(t);
    }
    best
}

/// Print an experiment header.
pub fn header(id: &str, title: &str, claim: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper claim: {claim}");
    println!("================================================================");
}

/// Format seconds human-readably.
pub fn fmt_s(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_helpers() {
        let (v, t) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
        let b = best_of(3, || std::hint::black_box(1 + 1));
        assert!(b >= 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_s(2.0), "2.00s");
        assert_eq!(fmt_s(0.002), "2.00ms");
        assert_eq!(fmt_s(0.0000005), "0.5us");
    }
}
