//! E22 — zero-copy shared-memory datapath vs the encode path.
//!
//! The payload model has two arms: wire bytes (encode → copy → decode)
//! and transferable regions (an `Arc` handle changes hands, no
//! serialization). Both arms charge the LogGP virtual clock by the
//! *encoded-equivalent* size, so modeled cluster time is arm-independent
//! — what the region arm buys is *measured* host bandwidth. Three gates,
//! all hard assertions (ci.sh runs this binary):
//!
//! 1. **gather** — shipping 8 MiB `Vec<f64>` payloads point-to-point,
//!    the region arm must deliver ≥ 5× the measured bandwidth of the
//!    encode arm (forced via the zero-copy threshold), with bitwise-
//!    identical received data;
//! 2. **halo** — a dmap redistribution plan moving ≥ 1 MiB per peer
//!    must be measurably faster on the region arm (> 1×), again with
//!    bitwise-identical results;
//! 3. **model invariance** — per-rank `modeled_comm_s` must be bitwise
//!    equal across arms in both fixtures: the virtual clock cannot see
//!    which arm moved the bytes.

use std::time::Instant;

use bench::fmt_s;
use comm::{CommStats, Src, Universe, UniverseConfig};
use dmap::{clear_plan_cache, CommPlan, Directory, DistMap};

/// Gather payload: 1 Mi f64 lanes = 8 MiB of data per message.
const GATHER_LANES: usize = 1 << 20;
/// Timed rounds per measurement (payloads are pre-built outside the
/// timed window so both arms move identical, already-materialized data).
const ROUNDS: usize = 6;
const TAG: u32 = 22;

/// FNV-1a over the f64 bit patterns: a cheap order-sensitive fingerprint
/// for the bitwise-parity assertions.
fn bit_hash(v: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for x in v {
        h ^= x.to_bits();
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Fixture A: rank 1 ships `ROUNDS` pre-built 8 MiB vectors to rank 0,
/// which receives them typed. Returns (receiver hash, timed seconds,
/// per-rank stats).
fn run_gather(threshold: usize) -> (u64, f64, Vec<CommStats>) {
    let cfg = UniverseConfig::default().with_zerocopy_threshold(threshold);
    let report = Universe::run_report(cfg, 2, |comm| {
        let payloads: Vec<Vec<f64>> = (0..ROUNDS)
            .map(|r| {
                (0..GATHER_LANES)
                    .map(|i| (i as f64) * 0.5 + r as f64)
                    .collect()
            })
            .collect();
        // Hash outside the timed window: the fingerprint work is
        // identical on both arms and must not dilute the transfer ratio.
        let sent_hash = payloads.iter().fold(0u64, |a, v| a ^ bit_hash(v));
        comm.barrier();
        // Per-round timing, best round kept: thread scheduling on a
        // loaded (possibly 1-core) host adds tens-of-ms hiccups that
        // would otherwise swamp the arm difference.
        let mut best = f64::INFINITY;
        let mut received = Vec::new();
        if comm.rank() == 0 {
            for _ in 0..ROUNDS {
                let t0 = Instant::now();
                let (v, _) = comm.recv_zc::<Vec<f64>>(Src::Rank(1), TAG).unwrap();
                best = best.min(t0.elapsed().as_secs_f64());
                received.push(v);
            }
        } else {
            for v in payloads {
                comm.send_zc(0, TAG, v).unwrap();
            }
        }
        comm.barrier();
        let hash = if comm.rank() == 0 {
            received.iter().fold(0u64, |a, v| a ^ bit_hash(v))
        } else {
            sent_hash
        };
        (hash, best)
    });
    let hash = report.results[0].0 ^ report.results[1].0;
    // Rank 0's per-round clock (recv call to typed value in hand) is
    // the transfer cost; the sender pushes all rounds back-to-back.
    let secs = report.results[0].1 * ROUNDS as f64;
    (hash, secs, report.stats)
}

/// Fixture B: 4-rank block → cyclic redistribution through a dmap plan;
/// every rank ships ~2 MiB to each peer. Returns (result hash, timed
/// seconds, per-rank stats).
fn run_halo(threshold: usize) -> (u64, f64, Vec<CommStats>) {
    const P: usize = 4;
    // n/p elements per rank, split across p-1 peers: 3 Mi lanes gives
    // each peer pair 2 MiB — comfortably past the 1 MiB floor.
    const N: usize = 3 << 20;
    let cfg = UniverseConfig::default().with_zerocopy_threshold(threshold);
    let report = Universe::run_report(cfg, P, |comm| {
        clear_plan_cache();
        let src = DistMap::block(N, comm.size(), comm.rank());
        let dst = DistMap::cyclic(N, comm.size(), comm.rank());
        let dir = Directory::build(comm, &src);
        let plan = CommPlan::import(comm, &src, &dst, &dir);
        let data: Vec<f64> = src.my_gids().iter().map(|&g| (g as f64) * 1.25).collect();
        // Best-of-rounds, one barrier per round so every rank times the
        // same exchange; hashing stays outside the timed windows.
        let mut best = f64::INFINITY;
        let mut h = 0u64;
        for _ in 0..ROUNDS {
            comm.barrier();
            let t0 = Instant::now();
            let out = plan.execute_to_vec(comm, &data);
            best = best.min(t0.elapsed().as_secs_f64());
            h ^= bit_hash(&out);
        }
        comm.barrier();
        (h, best)
    });
    let hash = report.results.iter().fold(0u64, |a, r| a ^ r.0);
    // Slowest rank's best round: the exchange is done when the last
    // rank holds its redistributed segment.
    let secs = report.results.iter().map(|r| r.1).fold(0.0f64, f64::max) * ROUNDS as f64;
    (hash, secs, report.stats)
}

fn model_clocks(stats: &[CommStats]) -> Vec<u64> {
    stats.iter().map(|s| s.modeled_comm_s.to_bits()).collect()
}

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E22",
        "zero-copy region datapath vs encode datapath",
        "shared-memory ranks should hand large payloads over by \
         ownership transfer, not serialization — same answers, same \
         modeled makespan, multiples of measured bandwidth",
    );

    // ---- fixture A: 8 MiB point-to-point gather --------------------------
    let bytes_moved = (ROUNDS * GATHER_LANES * 8) as f64;
    let (zc_hash, zc_s, zc_stats) = run_gather(1);
    let (enc_hash, enc_s, enc_stats) = run_gather(usize::MAX);
    let zc_bw = bytes_moved / zc_s / 1e9;
    let enc_bw = bytes_moved / enc_s / 1e9;
    println!(
        "\nfixture A (gather, {ROUNDS} x 8 MiB):\n  region {} ({zc_bw:.2} GB/s)  encode {} ({enc_bw:.2} GB/s)  speedup {:.1}x",
        fmt_s(zc_s),
        fmt_s(enc_s),
        enc_s / zc_s
    );
    assert_eq!(
        zc_hash, enc_hash,
        "gather results must be bitwise identical"
    );
    assert_eq!(
        model_clocks(&zc_stats),
        model_clocks(&enc_stats),
        "modeled makespan must not depend on the payload arm (gather)"
    );
    assert!(
        zc_stats.iter().any(|s| s.zerocopy_msgs > 0),
        "threshold 1 must put the gather on the region arm"
    );
    assert!(
        enc_stats.iter().all(|s| s.zerocopy_msgs == 0),
        "threshold MAX must keep the gather on the encode arm"
    );
    assert!(
        enc_s >= 5.0 * zc_s,
        "region arm must be >= 5x the encode arm on 8 MiB payloads \
         (region {zc_s:.4}s vs encode {enc_s:.4}s)"
    );
    println!("  OK: bitwise-identical data, identical modeled clocks, >= 5x");

    // ---- fixture B: dmap redistribution, ~2 MiB per peer -----------------
    let (zc_hash, zc_s, zc_stats) = run_halo(1);
    let (enc_hash, enc_s, enc_stats) = run_halo(usize::MAX);
    println!(
        "\nfixture B (plan redistribute, 4 ranks, ~2 MiB/peer):\n  region {}  encode {}  speedup {:.1}x",
        fmt_s(zc_s),
        fmt_s(enc_s),
        enc_s / zc_s
    );
    assert_eq!(zc_hash, enc_hash, "plan results must be bitwise identical");
    assert_eq!(
        model_clocks(&zc_stats),
        model_clocks(&enc_stats),
        "modeled makespan must not depend on the payload arm (halo)"
    );
    assert!(
        zc_stats.iter().all(|s| s.zerocopy_msgs > 0),
        "threshold 1 must put every rank's plan traffic on the region arm"
    );
    assert!(
        enc_s > zc_s,
        "region arm must beat the encode arm on >= 1 MiB plan exchanges \
         (region {zc_s:.4}s vs encode {enc_s:.4}s)"
    );
    println!("  OK: bitwise-identical data, identical modeled clocks, region faster");
}
