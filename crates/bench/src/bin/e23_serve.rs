//! E23 — multi-tenant serving plane under open-loop load and chaos.
//!
//! A seeded open-loop traffic generator drives thousands of per-tenant
//! sessions against one [`serve::ServePlane`]: heavy-tailed (Pareto)
//! job sizes across all three job classes, mixed priorities, four
//! tenants with unequal weights. The pool size is swept, clean and under
//! chaos (an injected worker kill plus a delayed straggler rank on every
//! pool, with the submission burst sized ~2x the plane's queue
//! capacity). Hard gates, all asserted in the binary (ci.sh runs this):
//!
//! 1. **no admitted job fails** — clean or chaos, every ticket resolves
//!    as completed, shed (typed, counted), or expired at its deadline;
//! 2. **bitwise identity** — every completed result equals the
//!    fault-free oracle at the pool size it ran on, bit for bit;
//! 3. **absorption** — under chaos the injected kills are absorbed
//!    (`recoveries >= 1`) and the ledger reconciles exactly;
//! 4. **overload is counted** — the 2x burst must produce quota
//!    refusals or shed work, never unbounded queues.
//!
//! Reported per (mode, pool size): p50/p99 completed latency and
//! goodput (completed result elements per second), recorded as obs
//! gauges so `--metrics-json` lands them in `BENCH_e23.json`.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use comm::FaultPlan;
use obs::SplitMix64;
use odin::OdinConfig;
use serve::{
    reference_result, JobOutcome, JobRequest, JobSpec, Priority, ServeConfig, ServeError,
    ServePlane, TenantQuota,
};

/// Jobs per (mode, pool size) sweep point. Each submission opens a fresh
/// per-tenant session, so one run exercises thousands of sessions.
const JOBS: usize = 400;
const TENANTS: [&str; 4] = ["aero", "biolab", "cfd", "devrel"];

fn fault_seed() -> u64 {
    std::env::var("HPC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// FNV-1a over the f64 bit patterns (the E22 fingerprint idiom).
fn bit_hash(v: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for x in v {
        h ^= x.to_bits();
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Quantize a heavy-tailed draw to a small spec vocabulary so the
/// bitwise oracle is memoizable: multiples of 16, clamped.
fn quant(x: f64, cap: usize) -> usize {
    ((x as usize / 16).max(1) * 16).min(cap)
}

/// One heavy-tailed job: Pareto-distributed size (many small, a fat tail
/// of large), small seed pool, class-weighted toward cheap array work.
fn draw_spec(rng: &mut SplitMix64) -> JobSpec {
    let u = rng.next_f64().max(1e-6);
    let seed = rng.gen_index(6) as u64;
    match rng.gen_index(5) {
        // alpha 1.4: mean exists, variance is fat — the classic shape
        0..=2 => JobSpec::Array {
            seed,
            n: quant(48.0 * u.powf(-1.0 / 1.4), 4096),
        },
        3 => JobSpec::Kernel {
            seed,
            n: quant(48.0 * u.powf(-1.0 / 1.4), 4096),
        },
        _ => JobSpec::Solve {
            seed,
            n: quant(24.0 * u.powf(-1.0 / 2.0), 128),
        },
    }
}

struct SweepPoint {
    p50_ms: f64,
    p99_ms: f64,
    goodput: f64,
    completed: u64,
    shed: u64,
    expired: u64,
    refused: u64,
    recoveries: u64,
}

/// Spec → hashable key for the oracle memo table.
fn spec_key(spec: &JobSpec, workers: usize) -> (u8, u64, usize, usize) {
    match *spec {
        JobSpec::Array { seed, n } => (0, seed, n, workers),
        JobSpec::Kernel { seed, n } => (1, seed, n, workers),
        JobSpec::Solve { seed, n } => (2, seed, n, workers),
    }
}

fn run_sweep_point(
    workers: usize,
    chaos: bool,
    seed: u64,
    oracle: &mut HashMap<(u8, u64, usize, usize), u64>,
) -> SweepPoint {
    let fault = if chaos {
        FaultPlan {
            seed,
            kill_rank: Some(workers / 2),
            kill_after_ops: 40,
            delay_rank: Some(workers - 1),
            delay_p: 0.25,
            delay_s: 5.0e-6,
            ..FaultPlan::none()
        }
    } else {
        FaultPlan::none()
    };
    let plane = ServePlane::new(ServeConfig {
        n_pools: 2,
        workers_per_pool: workers,
        odin: OdinConfig {
            fault,
            stall_timeout: Some(Duration::from_secs(2)),
            reply_timeout: Some(Duration::from_secs(2)),
            ..OdinConfig::default()
        },
        // The burst below is ~2x this queue capacity: overload by design.
        max_queued_total: JOBS / 4,
        tenants: TENANTS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                (
                    name.to_string(),
                    TenantQuota {
                        weight: 1.0 + i as f64,
                        max_queued: JOBS / 8,
                        max_inflight: 8,
                    },
                )
            })
            .collect(),
        ..ServeConfig::default()
    });

    let mut rng = SplitMix64::new(seed ^ (workers as u64) << 8 ^ chaos as u64);
    let prios = [Priority::Low, Priority::Normal, Priority::High];
    let mut tickets = Vec::with_capacity(JOBS);
    let mut refused = 0u64;
    let t0 = Instant::now();
    // Open-loop: submissions never wait on completions. Each job opens a
    // fresh session for its tenant.
    for i in 0..JOBS {
        let spec = draw_spec(&mut rng);
        let session = plane.session(TENANTS[i % TENANTS.len()]).unwrap();
        match session.submit(JobRequest {
            spec: spec.clone(),
            priority: prios[rng.gen_index(3)],
            budget: Duration::from_secs(20),
        }) {
            Ok(t) => tickets.push((spec, t)),
            Err(ServeError::QuotaExceeded { .. }) => refused += 1, // backpressure
            Err(other) => panic!("unexpected admission refusal: {other}"),
        }
    }
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut good_elems = 0u64;
    let (mut shed, mut expired) = (0u64, 0u64);
    for (spec, ticket) in tickets {
        match ticket.wait() {
            JobOutcome::Completed {
                data,
                workers: w,
                queue_wait,
                service,
                ..
            } => {
                let want = *oracle
                    .entry(spec_key(&spec, w))
                    .or_insert_with(|| bit_hash(&reference_result(&spec, w)));
                assert_eq!(
                    bit_hash(&data),
                    want,
                    "served result diverged from the fault-free oracle \
                     ({spec:?} at {w} workers, chaos={chaos})"
                );
                latencies_ms.push((queue_wait + service).as_secs_f64() * 1e3);
                good_elems += data.len() as u64;
            }
            JobOutcome::Shed { .. } => shed += 1,
            JobOutcome::Expired { .. } => expired += 1,
            JobOutcome::Failed { error, .. } => {
                panic!("admitted job failed (chaos={chaos}, {workers}w): {error}")
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let stats = plane.shutdown();
    assert!(stats.reconciles(), "ledger must reconcile: {stats:?}");
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.rejected_quota, refused);
    if chaos {
        assert!(
            stats.recoveries >= 1,
            "chaos run must absorb the injected kill: {stats:?}"
        );
    }
    assert!(
        stats.completed > 0,
        "the plane must make progress under load: {stats:?}"
    );
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if latencies_ms.is_empty() {
            return 0.0;
        }
        let idx = ((latencies_ms.len() - 1) as f64 * p).round() as usize;
        latencies_ms[idx]
    };
    SweepPoint {
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        goodput: good_elems as f64 / wall,
        completed: stats.completed,
        shed,
        expired,
        refused,
        recoveries: stats.recoveries,
    }
}

fn record_gauges(mode: &str, workers: usize, pt: &SweepPoint) {
    let w = workers.to_string();
    let labels: &[(&str, &str)] = &[("mode", mode), ("workers", &w)];
    let set = |name: &str, v: f64| {
        obs::global()
            .gauge(&obs::registry::key(name, labels))
            .set(v);
    };
    set("e23.p50_ms", pt.p50_ms);
    set("e23.p99_ms", pt.p99_ms);
    set("e23.goodput_elems_per_s", pt.goodput);
    set("e23.completed", pt.completed as f64);
    set("e23.shed", pt.shed as f64);
    set("e23.expired", pt.expired as f64);
    set("e23.rejected_quota", pt.refused as f64);
    set("e23.recoveries", pt.recoveries as f64);
}

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E23",
        "multi-tenant serving plane: overload + chaos",
        "admitted jobs never fail: they complete bitwise-identically, \
         are shed with a typed error, or expire at their deadline",
    );
    // Absorbed worker kills unwind through catch_unwind on the pool
    // drivers; silence those expected panic reports (unnamed worker
    // threads and serve-pool drivers) but keep everything from the main
    // thread — the gates below must stay loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let quiet = std::thread::current()
            .name()
            .is_none_or(|n| n.starts_with("serve-pool"));
        if !quiet {
            default_hook(info);
        }
    }));

    let seed = fault_seed();
    let mut oracle = HashMap::new();
    println!(
        "\n{JOBS} jobs/point, 4 tenants, heavy-tailed sizes, seed {seed}\n\
         {:<8} {:>7} {:>10} {:>10} {:>12} {:>6} {:>6} {:>7} {:>8} {:>6}",
        "mode", "workers", "p50", "p99", "goodput/s", "done", "shed", "expired", "refused", "recov"
    );
    for &workers in &[1usize, 2, 4] {
        for chaos in [false, true] {
            let mode = if chaos { "chaos" } else { "clean" };
            let pt = run_sweep_point(workers, chaos, seed, &mut oracle);
            record_gauges(mode, workers, &pt);
            println!(
                "{:<8} {:>7} {:>10} {:>10} {:>12.0} {:>6} {:>6} {:>7} {:>8} {:>6}",
                mode,
                workers,
                format!("{:.1}ms", pt.p50_ms),
                format!("{:.1}ms", pt.p99_ms),
                pt.goodput,
                pt.completed,
                pt.shed,
                pt.expired,
                pt.refused,
                pt.recoveries,
            );
            // The burst is ~2x queue capacity: overload must surface as
            // *counted* degradation somewhere, never as unbounded queues.
            assert!(
                pt.refused + pt.shed + pt.expired > 0,
                "a 2x burst must trip admission control or the shedder ({mode}, {workers}w)"
            );
        }
    }
    println!(
        "\nOK: no admitted job failed; every completed result bitwise-equal \
         to its fault-free oracle; chaos kills absorbed; ledgers reconcile."
    );
}
