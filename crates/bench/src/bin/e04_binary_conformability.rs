//! E4 — §III-D: binary ufuncs are free when operands are conformable and
//! require redistribution when they are not; ODIN picks the strategy but
//! lets the user override it.

use bench::{best_of, fmt_s};
use odin::{set_binary_strategy, BinaryStrategy, Dist, OdinContext};

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E4",
        "binary ufunc conformability and alignment strategies",
        "\"Binary ufuncs are trivially parallelizable … when they have the \
         same distribution pattern. [Otherwise] the ufunc requires \
         node-level communication … ODIN will choose a strategy that will \
         minimize communication, while allowing the knowledgeable user to \
         modify its behavior\"",
    );
    let n = 2_000_000usize;
    let ctx = OdinContext::with_workers(4);

    println!("x + y, n = {n}, 4 workers:");
    println!("{:>34} {:>12} {:>14}", "layouts", "time", "result layout");

    // conformable: block + block
    let xb = ctx.random_dist(&[n], 1, Dist::Block);
    let yb = ctx.random_dist(&[n], 2, Dist::Block);
    let t = best_of(3, || {
        let z = &xb + &yb;
        ctx.barrier();
        drop(z);
    });
    println!(
        "{:>34} {:>12} {:>14}",
        "block + block (conformable)",
        fmt_s(t),
        "block"
    );

    // conformable: cyclic + cyclic
    let xc = ctx.random_dist(&[n], 3, Dist::Cyclic);
    let yc = ctx.random_dist(&[n], 4, Dist::Cyclic);
    let t = best_of(3, || {
        let z = &xc + &yc;
        ctx.barrier();
        drop(z);
    });
    println!(
        "{:>34} {:>12} {:>14}",
        "cyclic + cyclic (conformable)",
        fmt_s(t),
        "cyclic"
    );

    // non-conformable under each strategy
    for (label, strat, expect) in [
        ("block + cyclic (auto)", BinaryStrategy::Auto, "block"),
        (
            "block + cyclic (redist-right)",
            BinaryStrategy::RedistRight,
            "block",
        ),
        (
            "block + cyclic (redist-left)",
            BinaryStrategy::RedistLeft,
            "cyclic",
        ),
    ] {
        set_binary_strategy(strat);
        let t = best_of(3, || {
            let z = &xb + &yc;
            ctx.barrier();
            drop(z);
        });
        let z = &xb + &yc;
        let got = format!("{:?}", z.dist()).to_lowercase();
        println!("{label:>34} {:>12} {:>14}", fmt_s(t), got);
        assert!(got.contains(expect));
        set_binary_strategy(BinaryStrategy::Auto);
    }

    // correctness across all combinations
    let serial: Vec<f64> = {
        let a = xb.to_vec();
        let b = yc.to_vec();
        a.iter().zip(b).map(|(x, y)| x + y).collect()
    };
    let got = (&xb + &yc).to_vec();
    assert_eq!(got.len(), serial.len());
    for (g, s) in got.iter().zip(&serial) {
        assert_eq!(g, s);
    }
    println!("\nnon-conformable operands cost one redistribution (alltoallv of");
    println!("n/P elements per worker); conformable operands communicate nothing.");
}
