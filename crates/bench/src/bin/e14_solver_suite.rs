//! E14 — the remaining Table I solver roles exercised quantitatively:
//! Anasazi (eigen), NOX (nonlinear), Amesos (direct) incl. the
//! direct-vs-iterative crossover.

use bench::{fmt_s, timed};
use comm::Universe;
use dlinalg::DistVector;
use galeri::laplace_1d;
use solvers::{
    cg, lanczos_extreme_eigenvalues, newton_krylov, power_method, DirectSolver, IdentityPrecond,
    KrylovConfig, NewtonConfig, NonlinearProblem,
};
use std::f64::consts::PI;

struct Bratu {
    n: usize,
    lambda: f64,
}

impl NonlinearProblem for Bratu {
    fn residual(&self, comm: &comm::Comm, x: &DistVector<f64>) -> DistVector<f64> {
        let h2 = 1.0 / ((self.n as f64 + 1.0) * (self.n as f64 + 1.0));
        let a = laplace_1d(comm, self.n);
        let mut f = a.matvec(comm, x);
        for (fi, &ui) in f.local_mut().iter_mut().zip(x.local().iter()) {
            *fi = *fi / h2 - self.lambda * ui.exp();
        }
        f
    }
    fn jacobian(&self, comm: &comm::Comm, x: &DistVector<f64>) -> dlinalg::CsrMatrix<f64> {
        let h2 = 1.0 / ((self.n as f64 + 1.0) * (self.n as f64 + 1.0));
        let n = self.n;
        let lam = self.lambda;
        let map = x.map().clone();
        let xl: Vec<f64> = x.local().to_vec();
        let m2 = map.clone();
        dlinalg::CsrMatrix::from_row_fn(comm, map.clone(), map, move |g| {
            let l = m2.global_to_local(g).unwrap();
            let mut row = Vec::new();
            if g > 0 {
                row.push((g - 1, -1.0 / h2));
            }
            row.push((g, 2.0 / h2 - lam * xl[l].exp()));
            if g + 1 < n {
                row.push((g + 1, -1.0 / h2));
            }
            row
        })
    }
}

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E14",
        "eigen / nonlinear / direct solver suite",
        "the Anasazi, NOX and Amesos rows of Table I work end-to-end",
    );

    // ---- Anasazi: eigenvalues vs analytic --------------------------------
    println!("Anasazi role — 1-D Laplace eigenvalues (analytic: 2-2cos(k pi/(n+1))):");
    Universe::run(2, |comm| {
        let n = 60;
        let a = laplace_1d(comm, n);
        let analytic_max = 2.0 - 2.0 * ((n as f64) * PI / (n as f64 + 1.0)).cos();
        let analytic_min = 2.0 - 2.0 * (PI / (n as f64 + 1.0)).cos();
        let (p, tp) = timed(|| power_method(comm, &a, 1e-10, 20_000));
        let (ritz40, tl40) = timed(|| lanczos_extreme_eigenvalues(comm, &a, 40));
        let (ritz, tl) = timed(|| lanczos_extreme_eigenvalues(comm, &a, n));
        if comm.rank() == 0 {
            println!(
                "  power method   : lambda_max = {:.8} (exact {:.8}), {} iters, {}",
                p.lambda,
                analytic_max,
                p.iterations,
                fmt_s(tp)
            );
            println!(
                "  Lanczos(40)    : [{:.8}, {:.8}]  (approx, {})",
                ritz40[0],
                ritz40.last().unwrap(),
                fmt_s(tl40)
            );
            println!(
                "  Lanczos(n)     : [{:.8}, {:.8}] (exact [{:.8}, {:.8}]), {}",
                ritz[0],
                ritz.last().unwrap(),
                analytic_min,
                analytic_max,
                fmt_s(tl)
            );
        }
        // the top of the Laplacian spectrum is clustered, so power
        // iteration and truncated Lanczos get close; full Lanczos is exact
        assert!((p.lambda - analytic_max).abs() < 1e-3);
        assert!((ritz40.last().unwrap() - analytic_max).abs() < 5e-2);
        assert!((ritz.last().unwrap() - analytic_max).abs() < 1e-8);
        assert!((ritz[0] - analytic_min).abs() < 1e-8);
    });

    // ---- NOX: Bratu continuation -----------------------------------------
    println!("\nNOX role — Bratu -u'' = lambda e^u, Newton-Krylov:");
    println!(
        "{:>8} {:>8} {:>12} {:>14}",
        "lambda", "newton", "time", "max(u)"
    );
    for lambda in [0.5, 1.0, 2.0, 3.0] {
        let out = Universe::run(2, move |comm| {
            let n = 64;
            let problem = Bratu { n, lambda };
            let map = dmap::DistMap::block(n, comm.size(), comm.rank());
            let mut x = DistVector::zeros(map);
            let (st, t) = timed(|| newton_krylov(comm, &problem, &mut x, &NewtonConfig::default()));
            assert!(st.converged, "lambda={lambda}");
            (st.iterations, t, x.norm_inf(comm))
        });
        let (iters, t, umax) = out[0];
        println!("{lambda:>8} {iters:>8} {:>12} {umax:>14.6}", fmt_s(t));
    }

    // ---- Amesos: direct vs iterative crossover ----------------------------
    // 2-D Laplacians: CG needs only O(grid) iterations, so the dense
    // direct solver's O(n³) loses early — the canonical crossover.
    println!("\nAmesos role — direct LU vs CG (2-D Laplace, one solve incl. setup):");
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "n", "direct", "cg(1e-10)", "winner"
    );
    for grid in [8usize, 16, 32, 64] {
        let n = grid * grid;
        let out = Universe::run(2, move |comm| {
            let a = galeri::laplace_2d(comm, grid, grid);
            let b = DistVector::from_fn(a.domain_map().clone(), |g| (g % 3) as f64);
            let (xd, td) = timed(|| {
                let s = DirectSolver::factor(comm, &a);
                s.solve(comm, &b)
            });
            let cfg = KrylovConfig {
                rtol: 1e-10,
                max_iter: 4 * n,
                ..Default::default()
            };
            let (st, ti) = timed(|| {
                let mut x = DistVector::zeros(a.domain_map().clone());
                let st = cg(comm, &a, &b, &mut x, &IdentityPrecond, &cfg);
                let mut d = x;
                d.axpy(-1.0, &xd);
                assert!(d.norm2(comm) / xd.norm2(comm) < 1e-6, "solvers disagree");
                st
            });
            assert!(st.converged);
            (td, ti)
        });
        let (td, ti) = out[0];
        println!(
            "{n:>8} {:>14} {:>14} {:>10}",
            fmt_s(td),
            fmt_s(ti),
            if td < ti { "direct" } else { "cg" }
        );
    }
    println!("\nshape: dense gather-to-root LU wins only for small n (its O(n^3)");
    println!("factor dominates quickly) — the reason Amesos exists alongside AztecOO.");
}
