//! E21 — critical-path profiling and straggler attribution.
//!
//! Three gates, all hard assertions (ci.sh runs this binary as the
//! profiling smoke test):
//!
//! 1. **straggler naming** — a 16-rank SpMV-CG run with a seeded delay
//!    fault on one rank's sends must produce a critical-path report that
//!    names that rank as the dominant straggler, attributes the injected
//!    delay to the blocked/wait category, and sums its categories
//!    *bitwise* to the critical-path length with zero orphan flow edges;
//! 2. **overhead** — enabling tracing on the E19-style CG loop must cost
//!    at most 5% wall time (plus a small absolute epsilon to absorb
//!    scheduler noise on short runs);
//! 3. **trace export** — the flow-annotated Chrome trace must be valid
//!    JSON (the repo's own validator) and actually contain flow arrows.

use bench::fmt_s;
use comm::{Delivery, FaultPlan, Universe, UniverseConfig};
use dlinalg::DistVector;
use galeri::laplace_2d;
use obs::critpath;
use obs::graph::Pag;
use solvers::{cg, IdentityPrecond, KrylovConfig};

const RANKS: usize = 16;
const VICTIM: usize = 5;
const GRID: usize = 64;
/// Injected per-message departure delay: 200 µs, 40× the model latency,
/// so the victim's lateness dominates everything else on the path.
const DELAY_S: f64 = 2.0e-4;

/// One 16-rank CG solve on a 2-D Laplacian; returns converged iterations.
fn run_cg(fault: FaultPlan) -> usize {
    let cfg = UniverseConfig {
        fault,
        delivery: Delivery::Raw,
        ..Default::default()
    };
    let report = Universe::run_report(cfg, RANKS, |comm| {
        let a = laplace_2d(comm, GRID, GRID);
        let b = DistVector::from_fn(a.domain_map().clone(), |g| 1.0 + (g % 7) as f64);
        let mut x = DistVector::zeros(a.domain_map().clone());
        let kcfg = KrylovConfig {
            rtol: 1e-6,
            max_iter: 20 * GRID,
            ..Default::default()
        };
        let st = cg(comm, &a, &b, &mut x, &IdentityPrecond, &kcfg);
        assert!(st.converged, "CG must converge");
        st.iterations
    });
    report.results[0]
}

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E21",
        "causal tracing: critical path, stragglers, flow arrows",
        "instrumentation must *name* the bottleneck: which rank, which \
         edge, and whether time went to compute, wire, stall or retransmit",
    );

    // ---- part 1: seeded delay fault → named straggler --------------------
    let was_enabled = obs::enabled();
    obs::set_enabled(true);
    obs::reset();
    let fault = FaultPlan {
        delay_p: 1.0,
        delay_rank: Some(VICTIM),
        delay_s: DELAY_S,
        ..FaultPlan::none()
    };
    let iters = run_cg(fault);
    let pag = Pag::build();
    let profile = critpath::profile(&pag);
    println!(
        "\npart 1: {RANKS}-rank CG ({iters} iters), every rank-{VICTIM} send delayed {}:",
        fmt_s(DELAY_S)
    );
    print!("{}", profile.text());

    let cat_sum: f64 = profile.categories.iter().sum();
    assert!(
        cat_sum == profile.critical_path_s,
        "categories must sum bitwise to the path length ({cat_sum} vs {})",
        profile.critical_path_s
    );
    assert_eq!(
        profile.orphan_consumers, 0,
        "no dangling flow edges allowed"
    );
    assert_eq!(profile.dropped_spans, 0, "ring buffers must not overflow");
    assert_eq!(
        profile.dominant_rank,
        Some(VICTIM),
        "the profiler must name rank {VICTIM} as the dominant straggler"
    );
    let victim = &profile.ranks[VICTIM];
    let blocked_idx = 2; // critpath::CATEGORIES: ["compute","wire","blocked",...]
    assert_eq!(critpath::CATEGORIES[blocked_idx], "blocked");
    for r in &profile.ranks {
        if r.rank != VICTIM {
            assert!(
                victim.residency[blocked_idx] > r.residency[blocked_idx],
                "victim blocked residency must exceed rank {}'s",
                r.rank
            );
        }
    }
    assert!(
        profile.categories[blocked_idx] >= 0.10 * profile.critical_path_s,
        "injected delay must surface in blocked/wait ({} of {})",
        fmt_s(profile.categories[blocked_idx]),
        fmt_s(profile.critical_path_s)
    );
    let edge = profile.dominant_edge.expect("path crosses rank boundaries");
    assert_eq!(
        edge.src, VICTIM,
        "dominant edge must originate at the delayed sender"
    );
    println!(
        "  OK: rank {VICTIM} named; blocked {} ({:.1}% of path); edge {}->{}",
        fmt_s(profile.categories[blocked_idx]),
        100.0 * profile.categories[blocked_idx] / profile.critical_path_s,
        edge.src,
        edge.dst
    );

    // ---- part 3 (while spans are hot): flow-annotated trace --------------
    let trace_path = "target/e21_flow_trace.json";
    std::fs::create_dir_all("target").expect("mkdir target");
    let (json, n_events) = obs::trace::chrome_trace_json();
    obs::json::validate(&json).expect("flow-annotated trace must be valid JSON");
    let flow_starts = json.matches("\"ph\":\"s\"").count();
    let flow_finishes = json.matches("\"ph\":\"f\"").count();
    assert!(flow_starts > 0, "trace must contain flow arrows");
    assert_eq!(flow_starts, flow_finishes, "every arrow has both ends");
    std::fs::write(trace_path, &json).expect("write trace");
    println!(
        "\npart 3: wrote {trace_path}: {n_events} span events, {flow_starts} flow arrows (valid JSON)"
    );

    // ---- part 2: enabled-tracing overhead on the E19 CG loop -------------
    // Same shape as E19's allocation-count loop: 4 ranks, fixed iteration
    // count (rtol 0) so the enabled and disabled runs do identical work.
    let overhead_cg = || {
        Universe::run(4, |comm| {
            let a = laplace_2d(comm, 192, 192);
            let b = DistVector::from_fn(a.domain_map().clone(), |g| ((g as f64) * 0.17).sin());
            let mut x = DistVector::zeros(a.domain_map().clone());
            let kcfg = KrylovConfig {
                rtol: 0.0,
                atol: 0.0,
                max_iter: 60,
                ..Default::default()
            };
            let _ = cg(comm, &a, &b, &mut x, &IdentityPrecond, &kcfg);
        });
    };
    obs::set_enabled(false);
    obs::reset();
    let reps = 3;
    let disabled = bench::best_of(reps, overhead_cg);
    obs::set_enabled(true);
    let enabled = bench::best_of(reps, || {
        obs::reset();
        overhead_cg();
    });
    obs::set_enabled(was_enabled);
    let limit = disabled * 1.05 + 0.025;
    println!(
        "\npart 2: CG wall time disabled {} vs enabled {} (limit {})",
        fmt_s(disabled),
        fmt_s(enabled),
        fmt_s(limit)
    );
    assert!(
        enabled <= limit,
        "enabled tracing exceeded the 5% overhead gate: {enabled} > {limit}"
    );
    println!("  OK: tracing overhead within 5% (+25 ms epsilon)");

    // Re-enable so the --metrics-json dump (ObsSession drop) sees the
    // registry state; metrics survive reset-free part 2 runs.
    obs::set_enabled(true);
}
