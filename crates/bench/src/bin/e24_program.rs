//! E24 — whole-program dataflow optimization (§III at program scope).
//!
//! A traced multi-statement program (`OdinContext::trace`) is fused,
//! CSE'd, DSE'd, and communication-scheduled before anything hits the
//! wire. Four claims, each checked hard:
//!
//! * **identity**: the traced run is bitwise-identical to statement-at-
//!   a-time `Expr::eval` (and to `Expr::eval_unfused`) on a stencil and
//!   on a CG-like program — clean *and* under seeded message chaos.
//! * **launches**: the traced run issues strictly fewer kernel launches
//!   than one-launch-per-statement (`kernel_launches <
//!   baseline_launches`), on both programs.
//! * **messages**: the traced run issues strictly fewer ODIN ctrl+data
//!   messages than the statement-at-a-time twin over a warm window.
//! * **movement**: the stencil's cyclic coefficient crosses the wire
//!   once, not once per consuming statement (>= 1 merged redistribute),
//!   and the repeated `x*c` subexpression is interned (>= 1 CSE hit).

use bench::{best_of, fmt_s};
use comm::{Delivery, FaultPlan};
use odin::lazy::Expr;
use odin::{Dist, DistArray, OdinConfig, OdinContext, PExpr, ProgramStats};
use std::hint::black_box;
use std::time::Duration;

const N: usize = 200_000;
const CHAOS_N: usize = 2_048;
const WORKERS: usize = 4;

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Block-distributed field (three shifted copies, finite-difference
/// style) plus a cyclic coefficient so every consuming statement owes an
/// alignment redistribute.
fn stencil_leaves(
    ctx: &OdinContext,
    n: usize,
) -> (DistArray<'_>, DistArray<'_>, DistArray<'_>, DistArray<'_>) {
    (
        ctx.arange_f64(-0.5, 0.013, n, Dist::Block),
        ctx.arange_f64(0.25, 0.017, n, Dist::Block),
        ctx.arange_f64(1.0, -0.011, n, Dist::Block),
        ctx.arange_f64(0.4, 0.007, n, Dist::Cyclic),
    )
}

/// Five statements: a Laplacian, a dead diagnostic store, the damped
/// update (which repeats the `x*c` subexpression), and two reductions —
/// one of which repeats `x*c` a third time.
fn stencil_traced(ctx: &OdinContext, n: usize) -> (Vec<u64>, u64, u64, ProgramStats) {
    let (xm, x, xp, c) = stencil_leaves(ctx, n);
    let mut p = ctx.trace();
    let (xml, xl, xpl, cl) = (p.leaf(&xm), p.leaf(&x), p.leaf(&xp), p.leaf(&c));
    let lap = p.assign(xml - xl.clone() * 2.0 + xpl);
    let xc = xl.clone() * cl.clone();
    let _damp = p.assign(xc.clone()); // dead store: never read, never requested
    let xnew = p.assign(xl + (PExpr::from(lap) * cl + xc.clone()) * 0.1);
    let resid = p.sum(PExpr::from(lap) * PExpr::from(lap));
    let energy = p.sum(xc.clone() * xc);
    let mut run = p.run(&[xnew]);
    let st = run.stats();
    (
        bits(&run.array(xnew).to_vec()),
        run.scalar(resid).to_bits(),
        run.scalar(energy).to_bits(),
        st,
    )
}

/// The statement-at-a-time twin: every statement evaluated (dead store
/// included — eager execution cannot know), every intermediate
/// materialized, every cyclic operand re-aligned per statement.
fn stencil_eager(ctx: &OdinContext, n: usize, unfused: bool) -> (Vec<u64>, u64, u64) {
    fn ev<'c>(e: &Expr<'_, 'c>, unfused: bool) -> DistArray<'c> {
        if unfused {
            e.eval_unfused()
        } else {
            e.eval()
        }
    }
    let (xm, x, xp, c) = stencil_leaves(ctx, n);
    let lap = ev(
        &(Expr::leaf(&xm) - Expr::leaf(&x) * 2.0 + Expr::leaf(&xp)),
        unfused,
    );
    let _damp = ev(&(Expr::leaf(&x) * Expr::leaf(&c)), unfused);
    let xnew = ev(
        &(Expr::leaf(&x)
            + (Expr::leaf(&lap) * Expr::leaf(&c) + Expr::leaf(&x) * Expr::leaf(&c)) * 0.1),
        unfused,
    );
    let resid = (Expr::leaf(&lap) * Expr::leaf(&lap)).sum();
    let energy = ((Expr::leaf(&x) * Expr::leaf(&c)) * (Expr::leaf(&x) * Expr::leaf(&c))).sum();
    (bits(&xnew.to_vec()), resid.to_bits(), energy.to_bits())
}

fn cg_leaves(
    ctx: &OdinContext,
    n: usize,
) -> (DistArray<'_>, DistArray<'_>, DistArray<'_>, DistArray<'_>) {
    (
        ctx.arange_f64(0.3, 0.003, n, Dist::Block),
        ctx.arange_f64(0.9, -0.002, n, Dist::Block),
        ctx.arange_f64(0.0, 0.005, n, Dist::Block),
        ctx.arange_f64(1.5, 0.001, n, Dist::Block),
    )
}

/// One CG-like iteration (diagonal operator): seven statements whose
/// scalar results (`rr0`, `den`, `rr1`) gate later vector updates. The
/// optimizer packs them into three fused launches with the reductions
/// riding the kernels that produce their operands.
fn cg_traced(ctx: &OdinContext, n: usize) -> (Vec<u64>, Vec<u64>, [u64; 3], ProgramStats) {
    let (pv, rv, xv, dv) = cg_leaves(ctx, n);
    let mut pg = ctx.trace();
    let (pl, rl, xl, dl) = (pg.leaf(&pv), pg.leaf(&rv), pg.leaf(&xv), pg.leaf(&dv));
    let rr0 = pg.sum(rl.clone() * rl.clone());
    let q = pg.assign(pl.clone() * dl);
    let den = pg.sum(pl.clone() * PExpr::from(q));
    let alpha = PExpr::from(rr0) / PExpr::from(den);
    let x1 = pg.assign(xl + pl.clone() * alpha.clone());
    let r1 = pg.assign(rl - PExpr::from(q) * alpha);
    let rr1 = pg.sum(PExpr::from(r1) * PExpr::from(r1));
    let beta = PExpr::from(rr1) / PExpr::from(rr0);
    let p1 = pg.assign(PExpr::from(r1) + pl * beta);
    let mut run = pg.run(&[x1, p1]);
    let st = run.stats();
    let scalars = [
        run.scalar(rr0).to_bits(),
        run.scalar(den).to_bits(),
        run.scalar(rr1).to_bits(),
    ];
    (
        bits(&run.array(x1).to_vec()),
        bits(&run.array(p1).to_vec()),
        scalars,
        st,
    )
}

fn cg_eager(ctx: &OdinContext, n: usize) -> (Vec<u64>, Vec<u64>, [u64; 3]) {
    let (pv, rv, xv, dv) = cg_leaves(ctx, n);
    let rr0 = (Expr::leaf(&rv) * Expr::leaf(&rv)).sum();
    let q = (Expr::leaf(&pv) * Expr::leaf(&dv)).eval();
    let den = (Expr::leaf(&pv) * Expr::leaf(&q)).sum();
    let alpha = rr0 / den;
    let x1 = (Expr::leaf(&xv) + Expr::leaf(&pv) * alpha).eval();
    let r1 = (Expr::leaf(&rv) - Expr::leaf(&q) * alpha).eval();
    let rr1 = (Expr::leaf(&r1) * Expr::leaf(&r1)).sum();
    let beta = rr1 / rr0;
    let p1 = (Expr::leaf(&r1) + Expr::leaf(&pv) * beta).eval();
    (
        bits(&x1.to_vec()),
        bits(&p1.to_vec()),
        [rr0.to_bits(), den.to_bits(), rr1.to_bits()],
    )
}

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E24",
        "whole-program dataflow optimization over the lazy layer",
        "traced programs fuse across statements, intern repeated work, drop dead \
         stores, and merge redistributes — bitwise-identical to statement-at-a-time \
         evaluation with strictly fewer launches and messages",
    );

    let ctx = OdinContext::with_workers(WORKERS);

    // ---- identity + optimization structure: stencil ----
    let (sx_t, sr_t, se_t, sst) = stencil_traced(&ctx, N);
    let (sx_e, sr_e, se_e) = stencil_eager(&ctx, N, false);
    let (sx_u, sr_u, se_u) = stencil_eager(&ctx, N, true);
    assert_eq!(
        sx_t, sx_e,
        "traced stencil update diverges from statement-at-a-time eval"
    );
    assert_eq!(
        (sr_t, se_t),
        (sr_e, se_e),
        "traced stencil reductions diverge from statement-at-a-time eval"
    );
    assert_eq!(
        (sx_e.clone(), sr_e, se_e),
        (sx_u, sr_u, se_u),
        "fused eager stencil diverges from the unfused interpreter"
    );
    assert!(
        sst.kernel_launches < sst.baseline_launches,
        "stencil: fusion saved nothing ({} vs {})",
        sst.kernel_launches,
        sst.baseline_launches
    );
    assert!(sst.cse_hits >= 1, "stencil lost its CSE hit: {sst:?}");
    assert!(
        sst.dse_eliminated >= 1,
        "stencil dead store survived: {sst:?}"
    );
    assert!(
        sst.redistributes_merged >= 1,
        "stencil coefficient moved once per statement: {sst:?}"
    );
    println!(
        "stencil   {} stmts -> {} launches (baseline {}), cse {}, dse {}, \
         redistributes {}/{} (merged {}), {} elems moved",
        sst.statements,
        sst.kernel_launches,
        sst.baseline_launches,
        sst.cse_hits,
        sst.dse_eliminated,
        sst.redistributes_issued,
        sst.baseline_redistributes,
        sst.redistributes_merged,
        sst.elems_moved
    );

    // ---- identity + optimization structure: CG-like iteration ----
    let (cx_t, cp_t, cs_t, cst) = cg_traced(&ctx, N);
    let (cx_e, cp_e, cs_e) = cg_eager(&ctx, N);
    assert_eq!(cx_t, cx_e, "traced CG x-update diverges from eager");
    assert_eq!(cp_t, cp_e, "traced CG search direction diverges from eager");
    assert_eq!(
        cs_t, cs_e,
        "traced CG scalars (rr0, den, rr1) diverge from eager"
    );
    assert!(
        cst.kernel_launches < cst.baseline_launches,
        "CG: fusion saved nothing ({} vs {})",
        cst.kernel_launches,
        cst.baseline_launches
    );
    println!(
        "cg-like   {} stmts -> {} launches (baseline {}), {} saved, scalars \
         flow through reply tickets",
        cst.statements, cst.kernel_launches, cst.baseline_launches, cst.launches_saved
    );

    // ---- message windows (both paths warm: kernels registered above) ----
    ctx.reset_stats();
    black_box(stencil_eager(&ctx, N, false));
    let st_e = ctx.stats();
    ctx.reset_stats();
    black_box(stencil_traced(&ctx, N));
    let st_t = ctx.stats();
    println!(
        "stencil   msgs: eager {} ctrl + {} data, traced {} ctrl + {} data",
        st_e.ctrl_msgs, st_e.data_msgs, st_t.ctrl_msgs, st_t.data_msgs
    );
    assert!(
        st_t.ctrl_msgs < st_e.ctrl_msgs,
        "traced stencil did not save ctrl messages ({} vs {})",
        st_t.ctrl_msgs,
        st_e.ctrl_msgs
    );
    assert!(
        st_t.data_msgs < st_e.data_msgs,
        "traced stencil did not save data messages ({} vs {})",
        st_t.data_msgs,
        st_e.data_msgs
    );

    ctx.reset_stats();
    black_box(cg_eager(&ctx, N));
    let cg_e = ctx.stats();
    ctx.reset_stats();
    black_box(cg_traced(&ctx, N));
    let cg_t = ctx.stats();
    println!(
        "cg-like   msgs: eager {} ctrl + {} data, traced {} ctrl + {} data",
        cg_e.ctrl_msgs, cg_e.data_msgs, cg_t.ctrl_msgs, cg_t.data_msgs
    );
    assert!(
        cg_t.ctrl_msgs + cg_t.data_msgs < cg_e.ctrl_msgs + cg_e.data_msgs,
        "traced CG did not save messages ({} vs {})",
        cg_t.ctrl_msgs + cg_t.data_msgs,
        cg_e.ctrl_msgs + cg_e.data_msgs
    );

    // ---- wall time (informational; the gates above are the claim) ----
    let t_eager = best_of(5, || {
        black_box(stencil_eager(&ctx, N, false));
    });
    let t_traced = best_of(5, || {
        black_box(stencil_traced(&ctx, N));
    });
    println!(
        "stencil   wall: eager {} traced {} ({:.2}x)",
        fmt_s(t_eager),
        fmt_s(t_traced),
        t_eager / t_traced
    );

    // ---- determinism under chaos: same bits through drops/dups/corruption ----
    let baseline = stencil_traced(&ctx, CHAOS_N);
    for seed in [42u64, 1009] {
        let cctx = OdinContext::new(
            OdinConfig::default()
                .with_n_workers(WORKERS)
                .with_fault(FaultPlan::messages(seed, 0.08, 0.04, 0.04, 0.03))
                .with_delivery(Delivery::Reliable)
                .with_stall_timeout(Duration::from_secs(10)),
        );
        let chaotic = stencil_traced(&cctx, CHAOS_N);
        assert_eq!(
            (&chaotic.0, chaotic.1, chaotic.2),
            (&baseline.0, baseline.1, baseline.2),
            "traced stencil not bitwise-stable under chaos seed {seed}"
        );
    }
    println!("chaos     traced stencil bitwise-stable under seeds 42, 1009");

    println!(
        "shape: tracing defers execution until `run`, so the optimizer sees the \
         whole statement list: one fused multi-output kernel replaces the \
         stencil's five launches, reductions ride the kernels that build their \
         operands, and the cyclic coefficient is aligned once and shared."
    );
}
