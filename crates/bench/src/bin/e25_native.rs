//! E25 — tiered native kernel codegen through the CModule plane
//! (DESIGN §15).
//!
//! Claims, each checked hard:
//!
//! * **identity**: the native tier, the VM tier (`HPC_KERNEL_TIER=vm`),
//!   and the interpreted RPN plane agree bit for bit on the E20
//!   1e6-lane identity expression, including the fused reduction tail.
//! * **speed**: the native tier beats the boxed tree-walking interpreter
//!   by >= 10x on that expression (gated only where a C compiler is
//!   present); the vectorized RPN pass and the typed-register VM are
//!   reported as intermediate tiers.
//! * **amortization**: the one-time cc + dlopen + parity-probe cost is
//!   charged against the per-invoke saving; the break-even invoke count
//!   and the cumulative-cost curve are printed.
//! * **fused groups**: a traced multi-output stencil body runs natively
//!   and stays bitwise-equal to its VM run.
//! * **fallback**: with `HPC_KERNEL_TIER=vm` (or no C compiler) the whole
//!   suite runs on the VM — correctness never depends on the tier.

use bench::{best_of, fmt_s, timed};
use odin::kernel::Tier;
use odin::lazy::Expr;
use odin::{OdinContext, PExpr};
use seamless::{codegen, Interpreter, Value};

const N: usize = 1_000_000;
const WORKERS: usize = 4;

/// The E20 identity expression: wide, cheap-op, all lanes finite — the
/// body whose jit-vs-interpreter bitwise identity anchored the kernel
/// plane, now run on three tiers.
fn probe<'x, 'c>(x: &'x odin::DistArray<'c>, y: &'x odin::DistArray<'c>) -> Expr<'x, 'c> {
    (Expr::leaf(x) * 2.0 + Expr::leaf(y)) * (Expr::leaf(x) - Expr::leaf(y) * 0.5)
        + (Expr::leaf(x) * Expr::leaf(y) + 3.0)
        - Expr::leaf(x).abs() * 0.25
        + (Expr::leaf(y) * 0.7 - Expr::leaf(x) * 0.3)
        + (Expr::leaf(x) + 1.5) * (Expr::leaf(y) - 0.25)
        - Expr::leaf(x).pow(2.0) * 0.125
        + (Expr::leaf(y) * Expr::leaf(y) - Expr::leaf(x) * 0.5) * (Expr::leaf(x) * 1.3 + 0.1)
        + (Expr::leaf(y).pow(3.0) + Expr::leaf(x) * 1.25) * 0.0625
        - (Expr::leaf(x) - Expr::leaf(y)).abs() * (Expr::leaf(x) + 2.0)
}

/// A fused 3-statement stencil-shaped trace: one shared subexpression
/// (CSE), two array outputs and one fused reduction harvested from a
/// single multi-output kernel group.
fn run_stencil(ctx: &OdinContext) -> (Vec<u64>, Vec<u64>, u64) {
    let x = ctx.arange_f64(-1.0, 0.002, 4096, odin::Dist::Block);
    let c = ctx.arange_f64(0.3, 0.0007, 4096, odin::Dist::Block);
    let mut p = ctx.trace();
    let (xl, cl) = (p.leaf(&x), p.leaf(&c));
    let shared = xl.clone() * cl.clone();
    let t1 = p.assign(shared.clone() * 0.25 + xl.clone() * 0.5 + cl * 0.25);
    let t2 = p.assign((shared + 1.0).sqrt());
    let s = p.sum(PExpr::from(t1) * PExpr::from(t2));
    let mut run = p.run(&[t1, t2]);
    (
        run.array(t1).to_vec().iter().map(|v| v.to_bits()).collect(),
        run.array(t2).to_vec().iter().map(|v| v.to_bits()).collect(),
        run.scalar(s).to_bits(),
    )
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The probe body as pyish source for the boxed tree-walking
/// interpreter — the paper's bottom tier. `pow(a, 2.0)` / `pow(b, 3.0)`
/// are spelled as explicit multiplies (the boxed builtin table has no
/// pow), so this arm is value-checked with a tolerance, not bitwise.
const PROBE_INTERP_SRC: &str = "
def probe_sum(x, y):
    res = 0.0
    for i in range(len(x)):
        a = x[i]
        b = y[i]
        res = res + ((a * 2.0 + b) * (a - b * 0.5) + (a * b + 3.0) - abs(a) * 0.25 + (b * 0.7 - a * 0.3) + (a + 1.5) * (b - 0.25) - a * a * 0.125 + (b * b - a * 0.5) * (a * 1.3 + 0.1) + (b * b * b + a * 1.25) * 0.0625 - abs(a - b) * (a + 2.0))
    return res
";

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E25",
        "tiered native kernel codegen via the CModule plane",
        "every kernel runs on the VM immediately; straight-line bodies are \
         lowered to C, compiled with the system cc, and swapped in only \
         after a bitwise-parity probe — same bits, >= 10x over the boxed \
         interpreter, VM fallback everywhere",
    );
    // Gate fields must exist in the artifact even on a VM-only machine.
    obs::global().counter("odin.kernel.native_armed").add(0);
    obs::global().counter("odin.kernel.native_refused").add(0);
    obs::global().counter("odin.kernel.native_invokes").add(0);

    let native_possible = codegen::native_available();
    let tier_pin = std::env::var("HPC_KERNEL_TIER").ok();
    println!(
        "native tier available: {} (cc = {:?}, HPC_KERNEL_TIER = {:?})\n",
        native_possible,
        seamless::cmodule::system_cc(),
        tier_pin
    );
    // The VM arms below pin the tier via the env var; restore the
    // caller's setting (if any) rather than unconditionally removing it,
    // so an external HPC_KERNEL_TIER=vm run stays VM-only throughout.
    let restore_tier = |pin: &Option<String>| match pin {
        Some(v) => std::env::set_var("HPC_KERNEL_TIER", v),
        None => std::env::remove_var("HPC_KERNEL_TIER"),
    };

    let ctx = OdinContext::with_workers(WORKERS);
    let x = ctx.linspace(0.0, 1.0, N);
    let y = ctx.linspace(1.0, 3.0, N);
    let ops = probe(&x, &y).n_ops();

    // ---- identity across all three tiers, bit for bit --------------------
    let native_arr = probe(&x, &y).eval().to_vec();
    let native_sum = probe(&x, &y).sum();
    std::env::set_var("HPC_KERNEL_TIER", "vm");
    ctx.barrier();
    let vm_arr = probe(&x, &y).eval().to_vec();
    let vm_sum = probe(&x, &y).sum();
    restore_tier(&tier_pin);
    let rpn_arr = probe(&x, &y).eval_rpn().to_vec();
    assert_eq!(
        bits(&native_arr),
        bits(&vm_arr),
        "native and VM tiers diverged"
    );
    assert_eq!(
        bits(&vm_arr),
        bits(&rpn_arr),
        "VM tier and RPN interpreter diverged"
    );
    assert_eq!(native_sum.to_bits(), vm_sum.to_bits());
    println!("identity: native == VM == interpreter on all {N} lanes ({ops}-op body), bitwise");
    println!("identity: fused reduction tail agrees across tiers, bitwise");

    // ---- speed: native vs VM vs RPN vs boxed interpreter -----------------
    let t_native = best_of(5, || {
        std::hint::black_box(probe(&x, &y).eval());
        ctx.barrier();
    });
    let t_native_sum = best_of(5, || {
        std::hint::black_box(probe(&x, &y).sum());
        ctx.barrier();
    });
    std::env::set_var("HPC_KERNEL_TIER", "vm");
    ctx.barrier();
    let t_vm = best_of(5, || {
        std::hint::black_box(probe(&x, &y).eval());
        ctx.barrier();
    });
    restore_tier(&tier_pin);
    let t_rpn = best_of(5, || {
        std::hint::black_box(probe(&x, &y).eval_rpn());
        ctx.barrier();
    });
    // Bottom tier: the boxed tree-walking interpreter over the same
    // 1e6 lanes, fused with its reduction (strictly *less* work than the
    // tiers above, which also materialize the output array).
    let interp = Interpreter::new(PROBE_INTERP_SRC).expect("probe body parses");
    let (xv, yv) = (x.to_vec(), y.to_vec());
    let mut interp_sum = 0.0;
    let t_interp = best_of(2, || {
        let out = interp
            .call(
                "probe_sum",
                vec![Value::ArrF(xv.clone()), Value::ArrF(yv.clone())],
            )
            .expect("probe body runs");
        if let Value::Float(s) = out.ret {
            interp_sum = s;
        }
    });
    let rel = ((interp_sum - native_sum) / native_sum).abs();
    assert!(
        rel < 1e-9,
        "boxed interpreter disagrees with the native tier (rel err {rel:.3e})"
    );
    println!("\ntimings, {N} lanes x {ops} ops, {WORKERS} workers (best of 5):");
    println!("  boxed interpreter    : {}", fmt_s(t_interp));
    println!("  interpreted RPN pass : {}", fmt_s(t_rpn));
    println!("  VM tier (bytecode)   : {}", fmt_s(t_vm));
    println!(
        "  native tier (cc)     : {}  (fused sum {})",
        fmt_s(t_native),
        fmt_s(t_native_sum)
    );
    println!(
        "  -> native is {:.0}x over the boxed interpreter, {:.1}x over the RPN pass, {:.1}x over the VM",
        t_interp / t_native,
        t_rpn / t_native,
        t_vm / t_native
    );
    if native_possible {
        assert!(
            t_interp >= 10.0 * t_native,
            "native tier must be >= 10x over the interpreter ({:.2}x)",
            t_interp / t_native
        );
    } else {
        println!("  (no C compiler / tier pinned: 10x gate skipped, VM fallback exercised)");
    }

    // ---- amortization: one-time compile cost vs per-invoke saving --------
    // A fresh body (unique constant) so the cc + dlopen + probe cost is
    // actually paid inside the timed window, not served from the cache.
    let fresh_src = "def amort(a, b):\n    return (a * 1.000025 + b) * (a - b * 0.5) + min(a, b)\n";
    let (native_k, t_compile) = timed(|| {
        ctx.kernel(fresh_src, "amort")
            .tier(Tier::Native)
            .build()
            .unwrap()
    });
    let vm_k = ctx
        .kernel(fresh_src, "amort")
        .tier(Tier::Vm)
        .build()
        .unwrap();
    let warm = native_k.map(&[&x, &y]);
    drop(warm);
    let t_inv_native = best_of(5, || {
        std::hint::black_box(native_k.map(&[&x, &y]));
        ctx.barrier();
    });
    let t_inv_vm = best_of(5, || {
        std::hint::black_box(vm_k.map(&[&x, &y]));
        ctx.barrier();
    });
    println!(
        "\namortization (fresh kernel, tier {:?}): build+cc+probe = {}, \
         invoke native = {}, invoke vm = {}",
        native_k.tier(),
        fmt_s(t_compile),
        fmt_s(t_inv_native),
        fmt_s(t_inv_vm)
    );
    if native_k.tier() == Tier::Native && t_inv_vm > t_inv_native {
        let breakeven = (t_compile / (t_inv_vm - t_inv_native)).ceil() as u64;
        println!("  break-even after {breakeven} invoke(s); cumulative cost curve:");
        println!("    invokes |    vm-only |  native+compile");
        for k in [1u64, 2, 4, 8, 16, 32, 64, 128] {
            let cv = k as f64 * t_inv_vm;
            let cn = t_compile + k as f64 * t_inv_native;
            println!(
                "    {k:7} | {:>10} | {:>10} {}",
                fmt_s(cv),
                fmt_s(cn),
                if cn <= cv { "<- native ahead" } else { "" }
            );
        }
    }

    // ---- fused multi-output stencil groups, native vs VM -----------------
    let native_stencil = run_stencil(&ctx);
    std::env::set_var("HPC_KERNEL_TIER", "vm");
    ctx.barrier();
    let vm_stencil = run_stencil(&ctx);
    restore_tier(&tier_pin);
    assert_eq!(
        native_stencil, vm_stencil,
        "fused multi-output stencil diverged between tiers"
    );
    println!("\nfused stencil group: 2 arrays + 1 reduction from one kernel, tiers bitwise-equal");

    let st = codegen::stats();
    println!(
        "\ncodegen: {} native bodies compiled, {} refused, {} probe failures, {} cache hits",
        st.compiled, st.refused, st.probe_failed, st.cache_hits
    );
    assert_eq!(st.probe_failed, 0, "a parity probe failed");

    println!("\nshape: tiering is invisible to semantics — the parity probe");
    println!("refuses any native body that moves a single bit, the VM keeps");
    println!("serving bodies the emitter cannot compile, and a machine with");
    println!("no C compiler just stays on the VM at the same answers.");
}
