//! E9 — PyTrilinos claim: access to *scalable* distributed solvers.
//!
//! Two views:
//! * **measured**: real CG on this host (2 physical cores), small grids;
//! * **modeled**: the LogGP virtual clock driven by CG's exact
//!   communication structure per iteration (SpMV halo exchange with grid
//!   neighbors + 3 allreduces + local flops), at cluster-realistic sizes.
//!   Iteration counts are taken from the measured runs (they are
//!   rank-invariant and grow linearly with the grid side for the 2-D
//!   Laplacian).

use bench::fmt_s;
use comm::{ReduceOp, Src, Universe, UniverseConfig};
use dlinalg::DistVector;
use galeri::laplace_2d;
use solvers::{cg, IdentityPrecond, KrylovConfig};

/// Real CG, measured; returns (iterations, wall seconds).
fn measured_cg(ranks: usize, grid: usize) -> (usize, f64) {
    let cfg = KrylovConfig {
        rtol: 1e-6,
        max_iter: 20 * grid,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let report = Universe::run_report(UniverseConfig::default(), ranks, |comm| {
        let a = laplace_2d(comm, grid, grid);
        let b = DistVector::from_fn(a.domain_map().clone(), |g| 1.0 + (g % 7) as f64);
        let mut x = DistVector::zeros(a.domain_map().clone());
        let st = cg(comm, &a, &b, &mut x, &IdentityPrecond, &cfg);
        assert!(st.converged);
        st.iterations
    });
    (report.results[0], t0.elapsed().as_secs_f64())
}

/// Structural CG simulation on the virtual clock: rows split by block
/// rows of the grid; each iteration does one SpMV (5-point: exchange one
/// grid row with each neighbor) + 3 allreduce scalars + ~10 flops/row of
/// vector work. Returns the modeled makespan.
fn modeled_cg(ranks: usize, grid_rows: usize, cols: usize, iters: usize) -> f64 {
    let report = Universe::run_report(UniverseConfig::default(), ranks, move |comm| {
        let p = comm.size();
        let me = comm.rank();
        let rows_local = grid_rows / p + usize::from(me < grid_rows % p);
        let flops_per_iter = (rows_local * cols) as f64 * (2.0 * 5.0 + 10.0);
        const HALO_TAG: comm::Tag = 77;
        for _ in 0..iters {
            // SpMV halo: one grid row (cols f64s) to/from each neighbor
            let boundary = vec![0.0f64; cols];
            if me > 0 {
                comm.send(me - 1, HALO_TAG, &boundary).unwrap();
            }
            if me + 1 < p {
                comm.send(me + 1, HALO_TAG, &boundary).unwrap();
            }
            if me > 0 {
                let _ = comm.recv::<Vec<f64>>(Src::Rank(me - 1), HALO_TAG).unwrap();
            }
            if me + 1 < p {
                let _ = comm.recv::<Vec<f64>>(Src::Rank(me + 1), HALO_TAG).unwrap();
            }
            comm.advance_compute(flops_per_iter);
            for _ in 0..3 {
                let _ = comm.allreduce(&1.0f64, ReduceOp::sum());
            }
        }
    });
    report.makespan_s
}

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E9",
        "CG strong/weak scaling (AztecOO role)",
        "PyTrilinos gives Python users 'massively parallel computations'; \
         iteration counts are rank-invariant and time scales with P",
    );

    // ---- measured: iteration counts are rank-invariant -------------------
    println!("measured CG, 2-D Laplace 96x96 (n = 9216), rtol 1e-6:");
    println!("{:>8} {:>7} {:>12}", "ranks", "iters", "wall");
    let mut iters96 = 0;
    for ranks in [1usize, 2, 4] {
        let (iters, wall) = measured_cg(ranks, 96);
        iters96 = iters;
        println!("{ranks:>8} {iters:>7} {:>12}", fmt_s(wall));
    }

    // calibrate iteration growth: iters ≈ c · grid
    let (iters48, _) = measured_cg(1, 48);
    let c = iters48 as f64 / 48.0;
    println!("\niteration growth: {iters48} @48, {iters96} @96  (≈ {c:.2}·grid — physics, not parallelism)");

    // ---- modeled strong scaling: 768x768 (n = 589824) --------------------
    let grid = 768usize;
    let iters = (c * grid as f64) as usize;
    println!(
        "\nmodeled strong scaling, {grid}x{grid} (n = {}), {iters} iterations:",
        grid * grid
    );
    println!(
        "{:>8} {:>12} {:>9} {:>12}",
        "ranks", "makespan", "speedup", "efficiency"
    );
    let mut m1 = 0.0;
    for ranks in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let m = modeled_cg(ranks, grid, grid, iters);
        if ranks == 1 {
            m1 = m;
        }
        let sp = m1 / m;
        println!(
            "{ranks:>8} {:>12} {:>8.2}x {:>11.1}%",
            fmt_s(m),
            sp,
            100.0 * sp / ranks as f64
        );
    }

    // ---- modeled weak scaling: 256 grid rows (256x256 block) per rank ----
    println!("\nmodeled weak scaling, 256 grid rows per rank (n = ranks · 65536):");
    println!(
        "{:>8} {:>10} {:>7} {:>12} {:>14}",
        "ranks", "n", "iters", "makespan", "per-iter eff."
    );
    let mut per_iter_base = 0.0;
    for ranks in [1usize, 4, 16, 64] {
        // a weak-scaled strip: 256·ranks grid rows of 256 columns
        let side = (65536.0 * ranks as f64).sqrt();
        let iters = (c * side) as usize;
        let m = modeled_cg(ranks, 256 * ranks, 256, iters);
        let per_iter = m / iters as f64;
        if ranks == 1 {
            per_iter_base = per_iter;
        }
        println!(
            "{ranks:>8} {:>10} {iters:>7} {:>12} {:>13.1}%",
            65536 * ranks,
            fmt_s(m),
            100.0 * per_iter_base / per_iter
        );
    }
    println!("\nshape: iteration counts are rank-invariant (measured); modeled");
    println!("strong scaling stays efficient while per-rank work dominates the");
    println!("3 allreduce latencies per iteration, then rolls off — the");
    println!("communication-bound regime every distributed CG hits.");
}
