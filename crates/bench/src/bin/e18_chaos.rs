//! E18 — chaos: seeded fault injection, reliable delivery, and recovery.
//!
//! Three views of the fault plane:
//!
//! * **acceptance**: SpMV-CG at 16 ranks under a nonzero fault plan with
//!   reliable delivery converges to a **bitwise-identical** iterate and
//!   residual history vs the fault-free run — drops, duplicates, delays
//!   and corruption are healed below the algorithm.
//! * **sweep**: modeled makespan vs drop rate at 4–64 ranks. Retransmits
//!   are charged to the virtual clock (`o + bytes·G`), so losing more
//!   messages costs modeled time, not correctness.
//! * **overhead**: reliable delivery at fault rate 0 vs raw delivery —
//!   the price of acks and sender-side buffering when nothing goes wrong.
//!
//! The fault schedule is a pure function of the seed (`HPC_FAULT_SEED`,
//! default 42): every number printed here reproduces exactly.

use bench::fmt_s;
use comm::{CommStats, Delivery, FaultPlan, Universe, UniverseConfig};
use dlinalg::DistVector;
use galeri::laplace_2d;
use solvers::{cg, IdentityPrecond, KrylovConfig};

fn fault_seed() -> u64 {
    std::env::var("HPC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Solve the 2-D Laplace system with CG and return per-rank
/// `(x segment, history)` plus the run's stats and makespan.
#[allow(clippy::type_complexity)]
fn cg_run(
    ranks: usize,
    grid: usize,
    fault: FaultPlan,
    delivery: Delivery,
) -> (Vec<(Vec<f64>, Vec<f64>)>, Vec<CommStats>, f64) {
    let cfg = UniverseConfig {
        stall_timeout: Some(std::time::Duration::from_secs(30)),
        fault,
        delivery,
        ..Default::default()
    };
    let report = Universe::run_report(cfg, ranks, move |comm| {
        let a = laplace_2d(comm, grid, grid);
        let b = DistVector::from_fn(a.domain_map().clone(), |g| ((g as f64) * 0.11).sin());
        let mut x = DistVector::zeros(a.domain_map().clone());
        let st = cg(
            comm,
            &a,
            &b,
            &mut x,
            &IdentityPrecond,
            &KrylovConfig {
                rtol: 1e-8,
                max_iter: 120,
                ..Default::default()
            },
        );
        (x.local().to_vec(), st.history)
    });
    (report.results, report.stats, report.makespan_s)
}

fn sum_lost(stats: &[CommStats]) -> (u64, u64) {
    let lost = stats
        .iter()
        .map(|s| s.faults_dropped + s.corrupt_detected)
        .sum();
    let retx = stats.iter().map(|s| s.retransmits).sum();
    (lost, retx)
}

fn main() {
    let _obs = bench::obs_init();
    let seed = fault_seed();
    bench::header(
        "E18",
        "chaos: seeded faults, reliable delivery, recovery",
        "injected message faults are healed below the solver bitwise; \
         the virtual clock pays for retransmissions instead",
    );
    println!("fault seed: {seed} (set HPC_FAULT_SEED to resweep)\n");

    // ---- acceptance: 16-rank SpMV-CG, faulted vs fault-free --------------
    let grid = 48usize;
    let plan = FaultPlan::messages(seed, 0.05, 0.03, 0.03, 0.02);
    let (clean, _, t_clean) = cg_run(16, grid, FaultPlan::none(), Delivery::Raw);
    let (chaos, stats, t_chaos) = cg_run(16, grid, plan, Delivery::Reliable);
    for (rank, (c, f)) in clean.iter().zip(chaos.iter()).enumerate() {
        assert!(
            c.0 == f.0 && c.1 == f.1,
            "rank {rank}: faulted run diverged from the fault-free run"
        );
    }
    let (lost, retx) = sum_lost(&stats);
    assert!(
        lost > 0,
        "the plan injected nothing; the identity is vacuous"
    );
    println!(
        "16-rank SpMV-CG, Laplace {grid}x{grid}: bitwise identical under \
         drop=5% dup=3% delay=3% corrupt=2%"
    );
    println!("  lost transmissions: {lost}, retransmits: {retx}");
    println!(
        "  modeled makespan: {} clean -> {} faulted ({:+.1}%)\n",
        fmt_s(t_clean),
        fmt_s(t_chaos),
        100.0 * (t_chaos - t_clean) / t_clean
    );

    // ---- sweep: makespan vs drop rate at 4-64 ranks ----------------------
    println!("modeled makespan vs drop rate (reliable delivery):");
    println!(
        "{:>8} {:>10} {:>12} {:>10} {:>8}",
        "ranks", "drop", "makespan", "dropped", "retx"
    );
    for ranks in [4usize, 16, 64] {
        let mut base = None;
        for drop_pct in [0u32, 2, 5, 10] {
            let p = drop_pct as f64 / 100.0;
            let plan = FaultPlan::messages(seed, p, 0.0, 0.0, 0.0);
            let (_, stats, makespan) = cg_run(ranks, grid, plan, Delivery::Reliable);
            let (lost, retx) = sum_lost(&stats);
            println!(
                "{ranks:>8} {drop_pct:>9}% {:>12} {lost:>10} {retx:>8}",
                fmt_s(makespan)
            );
            match base {
                None => base = Some(makespan),
                Some(b) => assert!(
                    makespan > b,
                    "losing messages must cost modeled time ({makespan} vs {b} at {ranks} ranks)"
                ),
            }
        }
    }

    // ---- overhead: reliable delivery with nothing to heal ----------------
    println!("\nreliable-delivery overhead at fault rate 0 (acks + buffering):");
    for ranks in [4usize, 16] {
        let (_, _, t_raw) = cg_run(ranks, grid, FaultPlan::none(), Delivery::Raw);
        let (_, stats, t_rel) = cg_run(ranks, grid, FaultPlan::none(), Delivery::Reliable);
        let (lost, retx) = sum_lost(&stats);
        // Injection is seeded and off, so losses are deterministically 0.
        // Retransmits are wall-clock RTO-driven: a host stall > 5 ms (e.g.
        // under tracing) can fire a few spurious ones; they are suppressed
        // as duplicates and only cost modeled time.
        assert_eq!(lost, 0, "a disabled plan must inject nothing");
        let spurious = if retx > 0 {
            format!(", {retx} spurious retransmits")
        } else {
            String::new()
        };
        println!(
            "  {ranks:>3} ranks: raw {} -> reliable {} ({:+.1}%{spurious})",
            fmt_s(t_raw),
            fmt_s(t_rel),
            100.0 * (t_rel - t_raw) / t_raw
        );
    }

    println!("\nshape: correctness is flat across fault rates (bitwise, by");
    println!("construction); cost is not — every drop surfaces as a retransmit");
    println!("on the sender's virtual clock, and the ack overhead is the small");
    println!("constant price of the reliability layer.");
}
