//! E7 — §IV-A: "Seamless aims to make node-level Python code as fast as
//! compiled languages via dynamic compilation." Boxed interpreter vs
//! typed-VM JIT vs native Rust on the paper's own `sum` example plus two
//! more kernels.

use bench::{best_of, fmt_s};
use seamless::{Interpreter, Type, Value};

const SUM_SRC: &str = "
def sum(it):
    res = 0.0
    for i in range(len(it)):
        res = res + it[i]
    return res
";

const DOT_SRC: &str = "
def dot(a, b):
    res = 0.0
    for i in range(len(a)):
        res = res + a[i] * b[i]
    return res
";

const SAXPY_SRC: &str = "
def saxpy(y, x, a):
    for i in range(len(y)):
        y[i] = y[i] + a * x[i]
";

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E7",
        "JIT speedup over the boxed interpreter (the paper's @jit sum)",
        "node-level Python code becomes 'as fast as compiled languages'; \
         the realistic shape is interpreter >> typed VM >= native",
    );
    let n = 400_000usize;
    let data: Vec<f64> = (0..n).map(|i| (i % 1000) as f64 * 0.001).collect();
    let data2: Vec<f64> = (0..n).map(|i| ((i * 7) % 1000) as f64 * 0.002).collect();

    println!(
        "{:>8} {:>14} {:>12} {:>12} {:>14} {:>12}",
        "kernel", "interpreter", "typed VM", "native", "interp/VM", "VM/native"
    );

    // ---- sum -------------------------------------------------------------
    {
        let interp = Interpreter::new(SUM_SRC).unwrap();
        let kernel = seamless::jit(SUM_SRC, "sum", &[Type::ArrF]).unwrap();
        let ti = best_of(2, || {
            interp.call("sum", vec![Value::ArrF(data.clone())]).unwrap()
        });
        let tv = best_of(3, || kernel.call(vec![Value::ArrF(data.clone())]).unwrap());
        let tn = best_of(5, || std::hint::black_box(data.iter().sum::<f64>()));
        // subtract the clone cost? report raw; the clone is identical in
        // interp and VM paths so the ratio is conservative
        let iv = interp
            .call("sum", vec![Value::ArrF(data.clone())])
            .unwrap()
            .ret;
        let vv = kernel.call(vec![Value::ArrF(data.clone())]).unwrap().ret;
        assert_eq!(iv, vv);
        println!(
            "{:>8} {:>14} {:>12} {:>12} {:>13.1}x {:>11.1}x",
            "sum",
            fmt_s(ti),
            fmt_s(tv),
            fmt_s(tn),
            ti / tv,
            tv / tn
        );
    }

    // ---- dot -------------------------------------------------------------
    {
        let interp = Interpreter::new(DOT_SRC).unwrap();
        let kernel = seamless::jit(DOT_SRC, "dot", &[Type::ArrF, Type::ArrF]).unwrap();
        let args = || vec![Value::ArrF(data.clone()), Value::ArrF(data2.clone())];
        let ti = best_of(2, || interp.call("dot", args()).unwrap());
        let tv = best_of(3, || kernel.call(args()).unwrap());
        let tn = best_of(5, || {
            std::hint::black_box(data.iter().zip(&data2).map(|(a, b)| a * b).sum::<f64>())
        });
        println!(
            "{:>8} {:>14} {:>12} {:>12} {:>13.1}x {:>11.1}x",
            "dot",
            fmt_s(ti),
            fmt_s(tv),
            fmt_s(tn),
            ti / tv,
            tv / tn
        );
    }

    // ---- saxpy (mutating) --------------------------------------------------
    {
        let interp = Interpreter::new(SAXPY_SRC).unwrap();
        let kernel =
            seamless::jit(SAXPY_SRC, "saxpy", &[Type::ArrF, Type::ArrF, Type::Float]).unwrap();
        let args = || {
            vec![
                Value::ArrF(data.clone()),
                Value::ArrF(data2.clone()),
                Value::Float(1.5),
            ]
        };
        let ti = best_of(2, || interp.call("saxpy", args()).unwrap());
        let tv = best_of(3, || kernel.call(args()).unwrap());
        let tn = best_of(5, || {
            let mut y = data.clone();
            for (yi, xi) in y.iter_mut().zip(&data2) {
                *yi += 1.5 * xi;
            }
            std::hint::black_box(y);
        });
        println!(
            "{:>8} {:>14} {:>12} {:>12} {:>13.1}x {:>11.1}x",
            "saxpy",
            fmt_s(ti),
            fmt_s(tv),
            fmt_s(tn),
            ti / tv,
            tv / tn
        );
    }
    println!("\nshape: the typed VM removes boxing/dispatch for one-to-two orders");
    println!("of magnitude over the interpreter; a further gap to native remains");
    println!("(the dispatch loop), which real LLVM codegen would close.");
}
