//! E17 — compute/communication overlap from the nonblocking request layer.
//!
//! Two views:
//! * **modeled**: SpMV-CG on the LogGP virtual clock — the same CG
//!   iteration structure run with the overlapped split-phase matvec
//!   (post receives → interior rows → wait → boundary rows) vs the
//!   blocking reference that completes the halo exchange before touching
//!   a row. Arithmetic is bitwise identical; only the timeline differs.
//! * **measured**: pipelined ODIN dispatch — a stream of independent
//!   reductions issued as reply futures and claimed at the end vs the
//!   drain-per-command pattern that waits out each reply before issuing
//!   the next command.
//!
//! Run with `HPC_TRACE=<file>` to see the request-lifetime spans
//! (`isend`/`irecv` post→complete) in the Chrome trace.

use bench::fmt_s;
use comm::{ReduceOp, Universe, UniverseConfig};
use dlinalg::DistVector;
use galeri::laplace_2d;
use odin::OdinContext;

/// Fixed-iteration CG-shaped loop: one SpMV + 3 scalar allreduces +
/// ~10 flops/row of vector updates per iteration. Returns the modeled
/// makespan with either the overlapped or the blocking matvec.
fn modeled_spmv_cg(ranks: usize, grid: usize, iters: usize, blocking: bool) -> f64 {
    let report = Universe::run_report(UniverseConfig::default(), ranks, move |comm| {
        let a = laplace_2d(comm, grid, grid);
        let mut p = DistVector::from_fn(a.domain_map().clone(), |g| 1.0 + (g % 13) as f64);
        let mut y = DistVector::zeros(a.row_map().clone());
        let rows_local = a.row_map().my_count();
        for _ in 0..iters {
            if blocking {
                a.matvec_into_blocking(comm, &p, &mut y);
            } else {
                a.matvec_into(comm, &p, &mut y);
            }
            for _ in 0..3 {
                let _ = comm.allreduce(&1.0f64, ReduceOp::sum());
            }
            comm.advance_compute(10.0 * rows_local as f64);
            std::mem::swap(&mut p, &mut y);
        }
    });
    report.makespan_s
}

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E17",
        "nonblocking requests: overlap and pipelining",
        "in-flight messages overlap with compute; independent ODIN commands \
         overlap in flight instead of draining one reply at a time",
    );

    // ---- modeled: overlapped vs blocking SpMV-CG -------------------------
    let grid = 512usize;
    let iters = 60usize;
    println!(
        "modeled SpMV-CG, 2-D Laplace {grid}x{grid} (n = {}), {iters} iterations:",
        grid * grid
    );
    println!(
        "{:>8} {:>12} {:>12} {:>9}",
        "ranks", "blocking", "overlapped", "gain"
    );
    for ranks in [4usize, 16, 64, 256] {
        let mb = modeled_spmv_cg(ranks, grid, iters, true);
        let mo = modeled_spmv_cg(ranks, grid, iters, false);
        if ranks >= 16 {
            assert!(
                mo < mb,
                "overlap must strictly beat blocking at {ranks} ranks ({mo} vs {mb})"
            );
        }
        println!(
            "{ranks:>8} {:>12} {:>12} {:>8.1}%",
            fmt_s(mb),
            fmt_s(mo),
            100.0 * (mb - mo) / mb
        );
    }

    // ---- measured: pipelined vs drain-per-command ODIN dispatch ----------
    let n_arrays = 24usize;
    let len = 50_000usize;
    let ctx = OdinContext::with_workers(4);
    let arrays: Vec<_> = (0..n_arrays)
        .map(|k| ctx.full(&[len], 1.0 + k as f64, odin::Dist::Block))
        .collect();

    let (drained, t_drain) = bench::timed(|| -> f64 { arrays.iter().map(|a| a.sum()).sum() });

    let mut max_depth = 0;
    let (pipelined, t_pipe) = bench::timed(|| -> f64 {
        let pending: Vec<_> = arrays.iter().map(|a| a.sum_async()).collect();
        max_depth = ctx.outstanding_replies();
        pending.into_iter().map(|p| p.wait()).sum()
    });
    assert_eq!(
        drained.to_bits(),
        pipelined.to_bits(),
        "pipelining must not change results"
    );

    println!(
        "\nmeasured ODIN dispatch, {n_arrays} independent reductions of {len} elements, 4 workers:"
    );
    println!(
        "  drain-per-command: {:>10}   (in-flight depth 1)",
        fmt_s(t_drain)
    );
    println!(
        "  pipelined:         {:>10}   (in-flight depth {})",
        fmt_s(t_pipe),
        max_depth
    );
    println!("  checksum match: {drained:.3} == {pipelined:.3} (bitwise)");

    println!("\nshape: overlap hides the halo-exchange latency behind interior");
    println!("rows, so the gain grows as ranks shrink the per-rank compute;");
    println!("pipelined dispatch keeps every worker busy instead of idling the");
    println!("master on one round-trip per command.");
}
