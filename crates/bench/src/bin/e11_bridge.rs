//! E11 — §III-E: ODIN arrays are "optionally compatible with Trilinos
//! distributed Vectors". Bridge cost for conformable (zero-copy layout)
//! vs non-conformable (redistribution) arrays, relative to the solve.

use bench::{fmt_s, timed};
use hpc_core::{solve_with_odin_rhs, SolveMethod};
use odin::{DType, Dist, OdinContext};
use solvers::KrylovConfig;

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E11",
        "ODIN <-> solver bridge cost",
        "ODIN arrays pass to Trilinos-analog solvers; conformable layouts \
         bridge for free, others pay one redistribution",
    );
    let ctx = OdinContext::with_workers(4);
    let n = 40_000usize;
    let row = move |g: usize| {
        let mut r = vec![(g, 2.0)];
        if g > 0 {
            r.push((g - 1, -1.0));
        }
        if g + 1 < n {
            r.push((g + 1, -1.0));
        }
        r
    };
    let cfg = KrylovConfig {
        rtol: 1e-6,
        max_iter: 100, // fixed budget: we time a fixed amount of work
        ..Default::default()
    };
    println!("CG (100-iteration budget) on 1-D Laplace n = {n}, 4 workers:");
    println!(
        "{:>28} {:>14} {:>12} {:>8}",
        "rhs layout", "redistributed", "total time", "iters"
    );
    for (label, dist) in [
        ("block f64 (conformable)", Dist::Block),
        ("cyclic f64", Dist::Cyclic),
        ("block-cyclic(64) f64", Dist::BlockCyclic(64)),
    ] {
        let b = ctx.random_dist(&[n], 7, dist);
        let (out, t) = timed(|| solve_with_odin_rhs(&ctx, &b, row, SolveMethod::Cg, cfg));
        let (_x, rep) = out;
        println!(
            "{label:>28} {:>14} {:>12} {:>8}",
            rep.redistributed,
            fmt_s(t),
            rep.iterations
        );
    }
    // integer rhs: cast + redistribute
    let bi = ctx.ones(&[n], DType::I64);
    let (out, t) = timed(|| solve_with_odin_rhs(&ctx, &bi, row, SolveMethod::Cg, cfg));
    println!(
        "{:>28} {:>14} {:>12} {:>8}",
        "block i64 (cast needed)",
        out.1.redistributed,
        fmt_s(t),
        out.1.iterations
    );
    println!("\nshape: the bridge itself is one redistribution (~n elements");
    println!("through alltoallv) — small next to any nontrivial solve.");
}
