//! E13 — §III-I: distributed tabular data as "the fundamental components
//! for parallel Map-Reduce style computations": word-count scaling.

use bench::{best_of, fmt_s};
use odin::{FieldType, FieldValue, OdinContext, Record, Schema};

fn make_records(n: usize) -> (Schema, Vec<Record>) {
    let words = [
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
    ];
    let schema = Schema::new(&[("line", FieldType::Str)]);
    let records = (0..n)
        .map(|i| {
            let mut line = String::new();
            let mut h = (i as u64).wrapping_mul(0x9e3779b97f4a7c15);
            for _ in 0..8 {
                h ^= h >> 29;
                h = h.wrapping_mul(0xbf58476d1ce4e5b9);
                line.push_str(words[(h % 8) as usize]);
                line.push(' ');
            }
            Record(vec![FieldValue::Str(line)])
        })
        .collect();
    (schema, records)
}

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E13",
        "map-reduce over distributed tables",
        "structured arrays + local functions = parallel Map-Reduce",
    );
    let n = 40_000usize;
    println!("word-count over {n} synthetic lines (8 words each):");
    println!("{:>8} {:>12} {:>9}", "workers", "time", "speedup");
    let mut t1 = 0.0;
    let mut reference: Option<Vec<(String, f64)>> = None;
    for workers in [1usize, 2, 4, 8] {
        let ctx = OdinContext::with_workers(workers);
        let (schema, records) = make_records(n);
        let table = ctx.table_from_records(schema, records);
        let t = best_of(2, || {
            let counts = table.map_reduce(
                |rec| {
                    rec.0[0]
                        .as_str()
                        .split_whitespace()
                        .map(|w| (w.to_string(), 1.0))
                        .collect()
                },
                |a, b| a + b,
            );
            std::hint::black_box(counts);
        });
        if workers == 1 {
            t1 = t;
        }
        // correctness: identical counts at every worker count
        let counts = table.map_reduce(
            |rec| {
                rec.0[0]
                    .as_str()
                    .split_whitespace()
                    .map(|w| (w.to_string(), 1.0))
                    .collect()
            },
            |a, b| a + b,
        );
        let total: f64 = counts.iter().map(|(_, v)| v).sum();
        assert_eq!(total as usize, n * 8);
        match &reference {
            None => reference = Some(counts),
            Some(r) => assert_eq!(r, &counts, "worker-count dependence"),
        }
        println!("{workers:>8} {:>12} {:>8.2}x", fmt_s(t), t1 / t);
    }
    println!("\ngroup-by aggregation on the same machinery:");
    let ctx = OdinContext::with_workers(4);
    let schema = Schema::new(&[("k", FieldType::Str), ("v", FieldType::F64)]);
    let records: Vec<Record> = (0..n)
        .map(|i| {
            Record(vec![
                FieldValue::Str(format!("key{}", i % 5)),
                FieldValue::F64(i as f64),
            ])
        })
        .collect();
    let t = ctx.table_from_records(schema, records);
    for (k, v) in t.group_by_sum("k", "v") {
        println!("  {k:>6} {v:>16.0}");
    }
    println!("\nshape: the shuffle is worker-to-worker (alltoallv keyed by a");
    println!("hash); results are bit-identical for every worker count.");
}
