//! E19 — autotune: model-driven collectives and allocation-free hot paths.
//!
//! Two claims from the tuning PR, each checked against hard numbers:
//!
//! * **autotune**: `CollectiveAlgo::Auto` consults the LogGP model per
//!   call and must land within 5% of the *best* fixed algorithm at every
//!   swept (ranks, payload) point — and strictly beat the *worst* fixed
//!   algorithm at half of them or more. Makespans are modeled virtual
//!   time, so every comparison is exact and reproducible.
//! * **allocations**: with the plan cache, pooled wire buffers and
//!   hoisted solver workspaces, a steady-state CG iteration performs
//!   **zero** heap allocations on the matvec/halo path. A counting
//!   global allocator proves it: at 1 rank (no mpsc traffic) the delta
//!   between a 20-iteration and an 80-iteration warm solve is exactly 0.
//!   At 4 ranks the irreducible floor is one channel node per message;
//!   the cached second matrix build is also measured against the cold
//!   first build to show what the plan cache saves.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use bench::fmt_s;
use comm::{CollectiveAlgo, Comm, ReduceOp, Universe, UniverseConfig};
use dlinalg::DistVector;
use galeri::laplace_2d;
use solvers::{cg, IdentityPrecond, KrylovConfig};

/// Counts every allocation (dealloc/realloc/zeroed all funnel through
/// `alloc` or are themselves counted); sizes are irrelevant here — the
/// claim is about allocation *count* per iteration.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Relaxed)
}

// ---------------------------------------------------------------------------
// Part 1: Auto vs fixed algorithms across the (ranks, payload) plane.
// ---------------------------------------------------------------------------

/// Modeled makespan of one collective call. Per-op, not a mix: the model
/// scores a single call, and back-to-back collectives pipeline in the
/// simulator (ranks leave a linear bcast at staggered times), so a mixed
/// sequence is *cheaper* than the sum of its parts in ways no per-call
/// model can see.
fn coll_makespan(ranks: usize, len: usize, op: &'static str, algo: CollectiveAlgo) -> f64 {
    let cfg = UniverseConfig {
        algo,
        ..Default::default()
    };
    Universe::run_report(cfg, ranks, move |comm| {
        let v = vec![comm.rank() as f64 + 1.0; len];
        match op {
            "bcast" => comm.bcast(0, (comm.rank() == 0).then(|| v.clone()))[0],
            "reduce" => comm
                .reduce(0, &v, ReduceOp::vec_sum())
                .map_or(0.0, |r| r[0]),
            "allreduce" => comm.allreduce(&v, ReduceOp::vec_sum())[0],
            "allgather" => comm.allgather(&v).len() as f64,
            _ => unreachable!("unknown op {op}"),
        }
    })
    .makespan_s
}

fn sweep_autotune() {
    println!("modeled makespan per collective, Auto vs fixed (exact virtual time):");
    let mut points = 0usize;
    let mut beats_worst = 0usize;
    for op in ["bcast", "reduce", "allreduce", "allgather"] {
        println!(
            "\n{op}:\n{:>6} {:>10} {:>11} {:>11} {:>11} {:>11}   verdict",
            "ranks", "payload", "linear", "tree", "recdbl", "auto"
        );
        for ranks in [2usize, 4, 8, 16, 32, 64] {
            for len in [1usize, 64, 1024, 16384] {
                // Keep the gathered result bounded: 64 ranks x 128KiB
                // blocks would materialize 8MiB per rank.
                if op == "allgather" && len > 1024 {
                    continue;
                }
                // Bcast resolves payload-blind by contract (only the root
                // holds the payload), so its decision is only defined in
                // the latency-bound control-message regime; payload-aware
                // ops sweep the full plane.
                if op == "bcast" && len > 64 {
                    continue;
                }
                let lin = coll_makespan(ranks, len, op, CollectiveAlgo::Linear);
                let tree = coll_makespan(ranks, len, op, CollectiveAlgo::Tree);
                let rd = coll_makespan(ranks, len, op, CollectiveAlgo::RecursiveDoubling);
                let auto = coll_makespan(ranks, len, op, CollectiveAlgo::Auto);
                let best = lin.min(tree).min(rd);
                let worst = lin.max(tree).max(rd);
                points += 1;
                if auto < worst {
                    beats_worst += 1;
                }
                let verdict = if auto <= best { "<= best" } else { "~ best" };
                println!(
                    "{ranks:>6} {:>9}B {:>11} {:>11} {:>11} {:>11}   {verdict}",
                    len * 8,
                    fmt_s(lin),
                    fmt_s(tree),
                    fmt_s(rd),
                    fmt_s(auto)
                );
                assert!(
                    auto <= best * 1.05,
                    "Auto must stay within 5% of the best fixed algorithm for \
                     {op} at ({ranks} ranks, {len} elems): auto {auto:.3e}s vs \
                     best {best:.3e}s"
                );
            }
        }
    }
    println!(
        "\nAuto within 5% of best at {points}/{points} points; strictly \
         beats the worst fixed algorithm at {beats_worst}/{points}"
    );
    assert!(
        beats_worst * 2 >= points,
        "Auto must strictly beat the worst fixed algorithm at >= half of \
         the swept points ({beats_worst}/{points})"
    );
}

// ---------------------------------------------------------------------------
// Part 2: allocation counting on the CG hot path.
// ---------------------------------------------------------------------------

/// Re-solve the warmed system for exactly `iters` iterations (rtol 0
/// disables convergence so every run does the full count).
fn resolve(
    comm: &Comm,
    a: &dlinalg::CsrMatrix<f64>,
    b: &DistVector<f64>,
    x: &mut DistVector<f64>,
    iters: usize,
) {
    x.local_mut().fill(0.0);
    let _ = cg(
        comm,
        a,
        b,
        x,
        &IdentityPrecond,
        &KrylovConfig {
            max_iter: iters,
            rtol: 0.0,
            atol: 0.0,
            ..Default::default()
        },
    );
}

/// Single rank: no channel traffic, so the steady-state iteration delta
/// must be exactly zero. Returns (allocs per 20-iter warm solve, allocs
/// per 80-iter warm solve) — equality proves 60 extra iterations cost 0.
fn rank1_alloc_counts(grid: usize) -> (u64, u64) {
    let out = Universe::run(1, move |comm| {
        let a = laplace_2d(comm, grid, grid);
        let b = DistVector::from_fn(a.domain_map().clone(), |g| ((g as f64) * 0.17).sin());
        let mut x = DistVector::zeros(a.domain_map().clone());
        // Warm up: scratch workspaces grow to their final size here.
        resolve(comm, &a, &b, &mut x, 20);
        let c0 = allocs();
        resolve(comm, &a, &b, &mut x, 20);
        let c1 = allocs();
        resolve(comm, &a, &b, &mut x, 80);
        let c2 = allocs();
        (c1 - c0, c2 - c1)
    });
    out[0]
}

/// Multi-rank: report what the plan cache saves on a repeat matrix build
/// and where the per-iteration allocation floor sits (one mpsc node per
/// message — std's channel allocates per send, pooled wire buffers do
/// not). Returns (cold build, cached build, cold solve, warm solve,
/// steady per-iteration x1000) totals summed across ranks.
fn multirank_alloc_counts(ranks: usize, grid: usize, iters: usize) -> (u64, u64, u64, u64, u64) {
    // Double barrier so every rank's counter read happens in a window
    // where no rank is allocating phase work; the barrier's own messages
    // are a small constant that cancels between phases.
    fn fence(comm: &Comm) -> u64 {
        comm.barrier();
        let c = allocs();
        comm.barrier();
        c
    }
    let out = Universe::run(ranks, move |comm| {
        let c0 = fence(comm);
        let a1 = laplace_2d(comm, grid, grid);
        let c1 = fence(comm);
        // Same maps, same structure: the communication plan comes from
        // the cache; only the local CSR assembly is paid again.
        let a2 = laplace_2d(comm, grid, grid);
        let c2 = fence(comm);
        let b = DistVector::from_fn(a1.domain_map().clone(), |g| ((g as f64) * 0.17).sin());
        let mut x = DistVector::zeros(a1.domain_map().clone());
        let c3 = fence(comm);
        resolve(comm, &a1, &b, &mut x, iters);
        let c4 = fence(comm);
        resolve(comm, &a1, &b, &mut x, iters);
        let c5 = fence(comm);
        resolve(comm, &a1, &b, &mut x, 2 * iters);
        let c6 = fence(comm);
        let _ = &a2;
        (
            c1 - c0,                                       // cold build (plan miss)
            c2 - c1,                                       // cached build (plan hit)
            c4 - c3,                                       // cold solve (pool fills)
            c5 - c4,                                       // warm solve
            ((c6 - c5) - (c5 - c4)) * 1000 / iters as u64, // steady/iter x1000
        )
    });
    out[0]
}

fn alloc_section() {
    // String-keyed metric recording allocates by design; the claim under
    // test is about the *solver* path, so count with recording off.
    let obs_was_on = obs::enabled();
    obs::set_enabled(false);

    println!("\nallocation counts (counting global allocator, obs recording off):");

    let (warm20, warm80) = rank1_alloc_counts(32);
    let per_iter_cold = warm20 as f64 / 20.0;
    println!(
        "  1 rank, Laplace 32x32: warm 20-iter solve {warm20} allocs, \
         warm 80-iter solve {warm80} allocs"
    );
    println!(
        "  -> steady-state CG iteration: 0 allocations \
         (down from {per_iter_cold:.1}/iter amortized on a cold solve)"
    );
    assert_eq!(
        warm80, warm20,
        "60 extra steady-state CG iterations must allocate nothing at 1 rank"
    );

    let iters = 40usize;
    let (build_cold, build_cached, solve_cold, solve_warm, steady_x1000) =
        multirank_alloc_counts(4, 48, iters);
    println!(
        "  4 ranks, Laplace 48x48 (totals across ranks):\n\
         \x20   matrix build: {build_cold} allocs cold -> {build_cached} with cached plan ({:.0}% fewer)\n\
         \x20   {iters}-iter solve: {solve_cold} allocs cold -> {solve_warm} warm\n\
         \x20   steady state: {:.1} allocs/iter — the mpsc floor (one channel node per message)",
        100.0 * (1.0 - build_cached as f64 / build_cold as f64),
        steady_x1000 as f64 / 1000.0,
    );
    assert!(
        build_cached < build_cold,
        "a cached-plan rebuild must allocate less than the cold build \
         ({build_cached} vs {build_cold})"
    );
    assert!(
        solve_warm <= solve_cold,
        "a warm solve must not allocate more than the cold solve \
         ({solve_warm} vs {solve_cold})"
    );

    obs::set_enabled(obs_was_on);
}

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E19",
        "autotune: model-driven collectives + allocation-free hot paths",
        "the LogGP model picks the cheapest collective per (ranks, bytes) \
         without measurement, and the plan/buffer caches make steady-state \
         CG iterations allocation-free",
    );

    sweep_autotune();
    alloc_section();

    println!("\nshape: one analytic model replaces per-site tuning tables —");
    println!("Auto tracks the best fixed algorithm across the whole plane and");
    println!("switches where the crossovers actually are; the caches move every");
    println!("per-iteration allocation to setup, leaving the inner loop at the");
    println!("channel-node floor (exactly zero where there is no traffic).");
}
