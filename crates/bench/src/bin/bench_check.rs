//! CI gate over the committed bench artifacts: every `BENCH_*.json` must
//! be well-formed JSON, and each gated experiment's file must carry the
//! counters its pass/fail judgment is based on. A bench that silently
//! stops emitting its gate fields would otherwise keep "passing" while
//! measuring nothing.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// Per-artifact gate fields: the metric keys the experiment's claims are
/// judged on, which therefore must appear in the exported dump.
const REQUIRED: &[(&str, &[&str])] = &[
    (
        "BENCH_e19.json",
        &["comm.collectives{op=allreduce}", "pool.buffer_reuse"],
    ),
    (
        "BENCH_e20.json",
        &["odin.kernel.registered", "odin.kernel.cache_hit"],
    ),
    (
        "BENCH_e21.json",
        &["solver.iterations{solver=cg}", "comm.collectives"],
    ),
    (
        "BENCH_e22.json",
        &["comm.zerocopy_msgs{rank=0}", "comm.zerocopy_bytes"],
    ),
    ("BENCH_e23.json", &["serve.admitted", "serve.completed"]),
    (
        "BENCH_e24.json",
        &[
            "fusion.cse_hits",
            "fusion.dse_eliminated",
            "fusion.launches_saved",
            "fusion.redistributes_merged",
        ],
    ),
    (
        "BENCH_e25.json",
        &[
            "odin.kernel.native_armed",
            "odin.kernel.native_refused",
            "odin.kernel.native_invokes",
        ],
    ),
];

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let mut found = BTreeSet::new();
    for entry in fs::read_dir(&dir).expect("readable artifact directory") {
        let entry = entry.expect("readable directory entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text =
            fs::read_to_string(entry.path()).unwrap_or_else(|e| panic!("{name}: unreadable: {e}"));
        obs::json::validate(&text).unwrap_or_else(|e| panic!("{name}: invalid JSON: {e}"));
        found.insert(name);
    }
    assert!(
        !found.is_empty(),
        "no BENCH_*.json artifacts found in {dir}"
    );
    for (name, keys) in REQUIRED {
        assert!(
            found.contains(*name),
            "required artifact {name} is missing (found: {found:?})"
        );
        let text = fs::read_to_string(Path::new(&dir).join(name)).expect("just listed");
        for key in *keys {
            assert!(
                text.contains(&format!("\"{key}")),
                "{name} lost its gate field {key:?} — the bench no longer \
                 measures what its pass/fail gate claims"
            );
        }
    }
    println!(
        "bench_check: {} artifacts valid, {} gated files carry their gate fields",
        found.len(),
        REQUIRED.len()
    );
}
