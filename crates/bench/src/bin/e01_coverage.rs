//! E1 — Table I analog: the Trilinos package roles PyTrilinos wraps, each
//! smoke-run against this reproduction's implementation.

use comm::Universe;
use dlinalg::{Complex64, CsrMatrix, DistVector};
use dmap::{rebalance_block_map, DistMap};
use galeri::{laplace_1d, poisson2d_manufactured};
use solvers::{
    bicgstab, cg, gmres, lanczos_extreme_eigenvalues, newton_krylov, power_method,
    AmgPreconditioner, DirectSolver, IdentityPrecond, IluPrecond, JacobiPrecond, KrylovConfig,
    NewtonConfig, NonlinearProblem, SsorPrecond,
};

struct TinyNewton;
impl NonlinearProblem for TinyNewton {
    fn residual(&self, comm: &comm::Comm, x: &DistVector<f64>) -> DistVector<f64> {
        let a = laplace_1d(comm, x.n_global());
        let mut f = a.matvec(comm, x);
        for (fi, &xi) in f.local_mut().iter_mut().zip(x.local().iter()) {
            *fi += 0.1 * xi * xi - 1.0;
        }
        f
    }
    fn jacobian(&self, comm: &comm::Comm, x: &DistVector<f64>) -> CsrMatrix<f64> {
        let n = x.n_global();
        let map = x.map().clone();
        let xl: Vec<f64> = x.local().to_vec();
        let m2 = map.clone();
        CsrMatrix::from_row_fn(comm, map.clone(), map, move |g| {
            let l = m2.global_to_local(g).unwrap();
            let mut row = Vec::new();
            if g > 0 {
                row.push((g - 1, -1.0));
            }
            row.push((g, 2.0 + 0.2 * xl[l]));
            if g + 1 < n {
                row.push((g + 1, -1.0));
            }
            row
        })
    }
}

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E1",
        "package coverage (paper Table I)",
        "PyTrilinos wraps Epetra, EpetraExt, Teuchos, TriUtils, Isorropia, \
         AztecOO, Galeri, Amesos, Ifpack, Komplex, Anasazi, ML, NOX",
    );
    println!(
        "{:<12} {:<46} {:>8}",
        "package", "role / reproduction module", "status"
    );
    let results = Universe::run(3, |comm| {
        let mut rows: Vec<(&str, &str, bool)> = Vec::new();
        let cfg = KrylovConfig {
            rtol: 1e-8,
            ..Default::default()
        };

        // Epetra / Tpetra: maps, vectors, matrices, import/export
        let prob = poisson2d_manufactured(comm, 8, 8);
        let y = prob.a.matvec(comm, &prob.x_exact);
        let mut r = prob.b.clone();
        r.axpy(-1.0, &y);
        rows.push((
            "Epetra",
            "dmap::DistMap + dlinalg vectors/CSR (matvec)",
            r.norm2(comm) < 1e-12,
        ));

        // EpetraExt: transpose + IO
        let at = prob.a.transpose(comm);
        rows.push((
            "EpetraExt",
            "dlinalg::csr::transpose + io (MatrixMarket)",
            at.shape() == prob.a.shape(),
        ));

        // Teuchos: parameter-ish configs + wire utilities
        let bytes = comm::encode_to_vec(&(1u64, 2.5f64, String::from("tol")));
        rows.push((
            "Teuchos",
            "comm::wire codec + typed configs",
            comm::decode_from_slice::<(u64, f64, String)>(&bytes).is_ok(),
        ));

        // TriUtils / Galeri: matrix gallery
        let a1 = laplace_1d(comm, 16);
        rows.push((
            "Galeri",
            "galeri::matrices (laplace/tridiag/random_spd)",
            a1.nnz_global(comm) == 46,
        ));

        // Isorropia: rebalancing
        let old = DistMap::block(40, comm.size(), comm.rank());
        let w: Vec<f64> = old
            .my_gids()
            .iter()
            .map(|&g| if g < 10 { 9.0 } else { 1.0 })
            .collect();
        let newmap = rebalance_block_map(comm, &old, &w);
        rows.push((
            "Isorropia",
            "dmap::partition::rebalance_block_map",
            newmap.n_global() == 40,
        ));

        // AztecOO: CG/BiCGStab/GMRES
        let mut x = DistVector::zeros(prob.a.domain_map().clone());
        let st = cg(comm, &prob.a, &prob.b, &mut x, &IdentityPrecond, &cfg);
        let mut x2 = DistVector::zeros(prob.a.domain_map().clone());
        let st2 = gmres(comm, &prob.a, &prob.b, &mut x2, &IdentityPrecond, &cfg);
        let mut x3 = DistVector::zeros(prob.a.domain_map().clone());
        let st3 = bicgstab(comm, &prob.a, &prob.b, &mut x3, &IdentityPrecond, &cfg);
        rows.push((
            "AztecOO",
            "solvers::krylov (CG, GMRES(m), BiCGStab)",
            st.converged && st2.converged && st3.converged,
        ));

        // Amesos: direct
        let ds = DirectSolver::factor(comm, &a1);
        let b1 = DistVector::constant(a1.domain_map().clone(), 1.0);
        let xd = ds.solve(comm, &b1);
        let rd = {
            let ax = a1.matvec(comm, &xd);
            let mut r = b1.clone();
            r.axpy(-1.0, &ax);
            r.norm2(comm)
        };
        rows.push(("Amesos", "solvers::direct (gather-to-root LU)", rd < 1e-10));

        // Ifpack: preconditioners
        let okp = {
            let j = JacobiPrecond::new(&prob.a);
            let s = SsorPrecond::new(&prob.a, 1.0);
            let i = IluPrecond::new(&prob.a);
            let mut xx = DistVector::zeros(prob.a.domain_map().clone());
            let stj = cg(comm, &prob.a, &prob.b, &mut xx, &j, &cfg);
            let mut xx2 = DistVector::zeros(prob.a.domain_map().clone());
            let sts = cg(comm, &prob.a, &prob.b, &mut xx2, &s, &cfg);
            let mut xx3 = DistVector::zeros(prob.a.domain_map().clone());
            let sti = cg(comm, &prob.a, &prob.b, &mut xx3, &i, &cfg);
            stj.converged && sts.converged && sti.converged
        };
        rows.push((
            "Ifpack",
            "solvers::precond (Jacobi/SSOR/ILU0/Chebyshev)",
            okp,
        ));

        // Komplex: complex scalars
        let okc = {
            let m = DistMap::block(8, comm.size(), comm.rank());
            let a =
                CsrMatrix::from_row_fn(comm, m.clone(), m, |g| vec![(g, Complex64::new(3.0, 1.0))]);
            let b = DistVector::constant(a.domain_map().clone(), Complex64::new(1.0, -1.0));
            let mut x = DistVector::zeros(a.domain_map().clone());
            cg(comm, &a, &b, &mut x, &IdentityPrecond, &cfg).converged
        };
        rows.push(("Komplex", "dlinalg::Complex64 scalars end-to-end", okc));

        // Anasazi: eigensolvers
        let pr = power_method(comm, &a1, 1e-9, 5000);
        let ritz = lanczos_extreme_eigenvalues(comm, &a1, 12);
        rows.push((
            "Anasazi",
            "solvers::eigen (power, Lanczos+QL)",
            pr.converged && !ritz.is_empty(),
        ));

        // ML: multigrid (a 16x16 problem so a real hierarchy forms —
        // 8x8 = 64 dofs sits exactly at the direct-solve threshold)
        let prob_big = poisson2d_manufactured(comm, 16, 16);
        let amg = AmgPreconditioner::new(comm, &prob_big.a, Default::default());
        let mut xm = DistVector::zeros(prob_big.a.domain_map().clone());
        let stm = cg(comm, &prob_big.a, &prob_big.b, &mut xm, &amg, &cfg);
        rows.push((
            "ML",
            "solvers::amg (aggregation multigrid)",
            stm.converged && amg.n_levels() >= 2,
        ));

        // NOX: nonlinear
        let map = DistMap::block(12, comm.size(), comm.rank());
        let mut xn = DistVector::zeros(map);
        let stn = newton_krylov(comm, &TinyNewton, &mut xn, &NewtonConfig::default());
        rows.push(("NOX", "solvers::nonlinear (Newton-Krylov)", stn.converged));

        rows.iter()
            .map(|(p, d, ok)| (p.to_string(), d.to_string(), *ok))
            .collect::<Vec<_>>()
    });
    let rows = &results[0];
    let mut all_ok = true;
    for (pkg, desc, ok) in rows {
        all_ok &= ok;
        println!("{pkg:<12} {desc:<46} {}", if *ok { "OK" } else { "FAIL" });
    }
    println!(
        "\n{} of {} package roles reproduced and verified",
        rows.iter().filter(|r| r.2).count(),
        rows.len()
    );
    assert!(all_ok);
}
