//! E16 — Fig. 2: the three packages compose. Times each stage of the §V
//! pipeline: ODIN data prep → Seamless-compiled callback → Newton–Krylov
//! solve through the bridge.

use bench::{fmt_s, timed};
use hpc_core::{apply_kernel, newton_with_pyish_reaction, PyishReaction, Session};
use seamless::Type;
use solvers::NewtonConfig;

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E16",
        "end-to-end composition (Fig. 2 / §V user story)",
        "ODIN arrays + PyTrilinos-analog solvers + Seamless kernels form \
         one framework; each stage hands its product to the next",
    );
    let session = Session::new(4);
    let ctx = session.odin();
    let n = 256usize;

    // stage 1: ODIN data prep
    let ((), t_data) = timed(|| {
        let x = ctx.linspace(0.0, 1.0, n);
        let ic = (&x * std::f64::consts::PI).sin();
        std::hint::black_box(ic.sum());
    });

    // stage 2: Seamless compiles the model callback + a data kernel
    let (kernels, t_compile) = timed(|| {
        let g =
            seamless::compile_kernel("def g(u: float):\n    return exp(u)\n", "g", &[Type::Float])
                .unwrap();
        let dg = seamless::compile_kernel(
            "def dg(u: float):\n    return exp(u)\n",
            "dg",
            &[Type::Float],
        )
        .unwrap();
        let prep = seamless::compile_kernel(
            "def damp(a):\n    for i in range(len(a)):\n        a[i] = 0.5 * a[i]\n",
            "damp",
            &[Type::ArrF],
        )
        .unwrap();
        (g, dg, prep)
    });
    let (g, dg, prep) = kernels;

    // stage 3: the kernel runs as an ODIN node-level function
    let noise = ctx.random(&[n], 11);
    let ((), t_kernel) = timed(|| {
        apply_kernel(ctx, &noise, &prep).expect("prep kernel applies");
    });

    // stage 4: Newton–Krylov with the pyish callbacks, on the same pool
    let problem = PyishReaction {
        n,
        lambda: 1.0,
        g,
        dg,
    };
    let ((u, st), t_solve) =
        timed(|| newton_with_pyish_reaction(ctx, problem, NewtonConfig::default()));
    assert!(st.converged);
    let umax = u.to_vec().iter().cloned().fold(0.0f64, f64::max);

    println!("pipeline stages (n = {n}, 4 workers):");
    println!("  1. ODIN data prep                : {}", fmt_s(t_data));
    println!("  2. Seamless compile (3 kernels)  : {}", fmt_s(t_compile));
    println!("  3. kernel as ODIN local function : {}", fmt_s(t_kernel));
    println!(
        "  4. Newton-Krylov w/ pyish model  : {} ({} Newton steps)",
        fmt_s(t_solve),
        st.iterations
    );
    println!("\nBratu solution max(u) = {umax:.6}; residual history:");
    for (k, r) in st.history.iter().enumerate() {
        println!("    step {k}: ||F|| = {r:.3e}");
    }
    println!("\nshape: compilation is microseconds-to-milliseconds and happens");
    println!("once; the solver consumes the pyish model thousands of times.");
}
