//! E8 — §IV-C: foreign functions usable "without an explicit compilation
//! step and without the manual specification of the function's
//! interface". Measures discovery correctness and per-call overhead.

use bench::{best_of, fmt_s};
use seamless::{CModule, Value};

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E8",
        "CModule: header-driven FFI",
        "\"argument types and return types of the exposed functions are \
         automatically discovered\" — with modest per-call overhead over \
         a direct call",
    );
    let libm = CModule::load_system("m").unwrap();

    // ---- discovery ------------------------------------------------------
    println!(
        "signatures discovered from the math.h text: {}",
        libm.signatures().len()
    );
    for name in ["atan2", "pow", "hypot", "abs"] {
        let s = libm.signature(name).unwrap();
        println!("  {:<8} {:?} -> {:?}", name, s.params, s.ret);
    }

    // ---- correctness spot checks -----------------------------------------
    let pairs: Vec<(f64, f64)> = (0..1000)
        .map(|i| (i as f64 * 0.01 + 0.1, (1000 - i) as f64 * 0.01 + 0.1))
        .collect();
    for &(a, b) in pairs.iter().take(10) {
        let v = libm
            .call("atan2", &[Value::Float(a), Value::Float(b)])
            .unwrap();
        assert_eq!(v, Value::Float(a.atan2(b)));
    }

    // ---- per-call overhead -----------------------------------------------
    let n_calls = 200_000usize;
    let t_direct = best_of(5, || {
        let mut acc = 0.0;
        for &(a, b) in &pairs {
            for _ in 0..(n_calls / pairs.len()) {
                acc += std::hint::black_box(a).atan2(std::hint::black_box(b));
            }
        }
        std::hint::black_box(acc)
    });
    let t_cmodule = best_of(3, || {
        let mut acc = 0.0;
        for &(a, b) in &pairs {
            for _ in 0..(n_calls / pairs.len()) {
                acc += libm
                    .call("atan2", &[Value::Float(a), Value::Float(b)])
                    .unwrap()
                    .as_f64()
                    .unwrap();
            }
        }
        std::hint::black_box(acc)
    });
    println!("\n{n_calls} calls to atan2:");
    println!(
        "  direct Rust call      : {} ({:.1} ns/call)",
        fmt_s(t_direct),
        t_direct / n_calls as f64 * 1e9
    );
    println!(
        "  through CModule       : {} ({:.1} ns/call)",
        fmt_s(t_cmodule),
        t_cmodule / n_calls as f64 * 1e9
    );
    println!("  overhead              : {:.1}x", t_cmodule / t_direct);
    println!("\nshape: discovery costs nothing at call time beyond boxing +");
    println!("signature checking (tens of ns) — the 'no explicit binding' claim");
    println!("is about programmer effort, not about zero call overhead.");
}
