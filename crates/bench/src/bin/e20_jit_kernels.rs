//! E20 — the Seamless-JIT kernel plane (§IV meets §III).
//!
//! Three claims from the kernel-plane PR, each checked hard:
//!
//! * **identity**: `Expr::eval` (lowered to Seamless bytecode, run by the
//!   worker VMs) is bitwise-identical to `Expr::eval_rpn` (the
//!   interpreted fused path) on a 1e6-element expression.
//! * **speed**: the jitted single-pass evaluation beats the unfused path
//!   (one broadcast + one materialized temporary per AST node) by >= 2x.
//! * **wire contract**: a kernel's bytecode crosses the wire exactly once
//!   per pool; every subsequent invoke is one sub-100-byte control
//!   message per worker.

use bench::{best_of, fmt_s};
use odin::lazy::Expr;
use odin::OdinContext;

const N: usize = 1_000_000;
const WORKERS: usize = 4;

/// A wide, cheap-op expression: this is where fusion pays, because the
/// unfused path materializes (and streams through memory) one 1e6-element
/// temporary per node while the fused pass keeps the chunk in cache.
/// Transcendental-heavy expressions are compute-bound and fuse-neutral;
/// E6 sweeps that axis.
fn probe<'x, 'c>(x: &'x odin::DistArray<'c>, y: &'x odin::DistArray<'c>) -> Expr<'x, 'c> {
    (Expr::leaf(x) * 2.0 + Expr::leaf(y)) * (Expr::leaf(x) - Expr::leaf(y) * 0.5)
        + (Expr::leaf(x) * Expr::leaf(y) + 3.0)
        - Expr::leaf(x).abs() * 0.25
        + (Expr::leaf(y) * 0.7 - Expr::leaf(x) * 0.3)
        + (Expr::leaf(x) + 1.5) * (Expr::leaf(y) - 0.25)
        - Expr::leaf(x).pow(2.0) * 0.125
        + (Expr::leaf(y) * Expr::leaf(y) - Expr::leaf(x) * 0.5) * (Expr::leaf(x) * 1.3 + 0.1)
        + (Expr::leaf(y).pow(3.0) + Expr::leaf(x) * 1.25) * 0.0625
        - (Expr::leaf(x) - Expr::leaf(y)).abs() * (Expr::leaf(x) + 2.0)
}

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E20",
        "Seamless-JIT kernel plane for ODIN expressions",
        "lazy expressions lower to Seamless bytecode that ships to each \
         worker once and runs unboxed; the jitted pass is bitwise-equal \
         to the interpreter and >= 2x faster than unfused evaluation",
    );
    let ctx = OdinContext::with_workers(WORKERS);
    let x = ctx.linspace(0.0, 1.0, N);
    let y = ctx.linspace(1.0, 3.0, N);
    let ops = probe(&x, &y).n_ops();

    // ---- identity: jit vs interpreted RPN, bit for bit -------------------
    let jit = probe(&x, &y).eval();
    let rpn = probe(&x, &y).eval_rpn();
    let (jv, rv) = (jit.to_vec(), rpn.to_vec());
    for i in 0..N {
        assert_eq!(
            jv[i].to_bits(),
            rv[i].to_bits(),
            "jit and interpreter diverged at lane {i}: {} vs {}",
            jv[i],
            rv[i]
        );
    }
    println!("identity: jit == interpreter on all {N} lanes ({ops}-op expression), bitwise");
    let fused = probe(&x, &y).sum();
    let two_pass = probe(&x, &y).eval_rpn().sum();
    assert_eq!(fused.to_bits(), two_pass.to_bits());
    println!("identity: fused reduction tail == two-pass sum, bitwise");

    // ---- wire contract: one RegisterKernel per pool, tiny invokes --------
    // The expression kernel is already registered (cache key = bytecode),
    // so every eval in this window is exactly one EvalKernel broadcast.
    ctx.reset_stats();
    let reps = 10u64;
    let mut live = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        live.push(probe(&x, &y).eval());
    }
    let st = ctx.stats();
    assert_eq!(
        st.ctrl_msgs,
        reps * WORKERS as u64,
        "a warm eval must broadcast exactly one control message per worker"
    );
    assert!(
        st.mean_ctrl_bytes() < 100.0,
        "invoke messages must stay under 100 bytes, got {}",
        st.mean_ctrl_bytes()
    );
    println!(
        "wire: {} warm evals -> {} control msgs ({} per eval), mean {:.1} B \
         (bytecode shipped once, before this window)",
        reps,
        st.ctrl_msgs,
        st.ctrl_msgs / reps,
        st.mean_ctrl_bytes()
    );
    drop(live);

    // ---- speed: jitted single pass vs unfused per-node evaluation --------
    // Dispatch is async; barrier inside the closure so each sample covers
    // the workers actually finishing the pass, not just the broadcast.
    let t_jit = best_of(5, || {
        std::hint::black_box(probe(&x, &y).eval());
        ctx.barrier();
    });
    let t_rpn = best_of(5, || {
        std::hint::black_box(probe(&x, &y).eval_rpn());
        ctx.barrier();
    });
    let t_unfused = best_of(5, || {
        std::hint::black_box(probe(&x, &y).eval_unfused());
        ctx.barrier();
    });
    let t_reduce = best_of(5, || std::hint::black_box(probe(&x, &y).sum()));
    println!("\ntimings, {N} elems x {ops} ops, {WORKERS} workers (best of 5):");
    println!("  unfused (1 temp per AST node) : {}", fmt_s(t_unfused));
    println!("  fused interpreter (RPN)       : {}", fmt_s(t_rpn));
    println!("  jitted bytecode (VM)          : {}", fmt_s(t_jit));
    println!("  jitted fused reduction        : {}", fmt_s(t_reduce));
    println!(
        "  -> jit is {:.1}x faster than unfused, {:.2}x vs interpreter",
        t_unfused / t_jit,
        t_rpn / t_jit
    );
    assert!(
        t_unfused >= 2.0 * t_jit,
        "jitted eval must be >= 2x faster than unfused ({:.2}x)",
        t_unfused / t_jit
    );

    println!("\nshape: compilation happens once on the master (microseconds),");
    println!("then every evaluation is a single broadcast and a single pass");
    println!("over each worker's segment — no temporaries, no re-parsing, and");
    println!("the answer never moves by a bit from the interpreted semantics.");
}
