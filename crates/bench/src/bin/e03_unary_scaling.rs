//! E3 — §III-D: "All of NumPy's unary ufuncs are able to be trivially
//! parallelized." Measured scaling on this host plus modeled cluster
//! scaling from the LogGP virtual clock.

use bench::{best_of, fmt_s};
use comm::{Universe, UniverseConfig};
use odin::OdinContext;

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E3",
        "unary ufunc scaling",
        "unary ufuncs are trivially parallelized (no communication): \
         near-linear speedup",
    );
    let n = 4_000_000usize;

    // ---- measured on this host (2 physical cores: expect saturation) ---
    println!("measured wall time, sin(x) elementwise, n = {n}:");
    println!("{:>8} {:>12} {:>9}", "workers", "time", "speedup");
    let mut t1 = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let ctx = OdinContext::with_workers(workers);
        let x = ctx.random(&[n], 1);
        let t = best_of(3, || {
            let y = x.sin();
            ctx.barrier();
            drop(y);
        });
        if workers == 1 {
            t1 = t;
        }
        println!("{workers:>8} {:>12} {:>8.2}x", fmt_s(t), t1 / t);
    }

    // ---- modeled cluster scaling (LogGP virtual time) -------------------
    // Each rank applies sin to its n/p elements (≈ 10 flop each with the
    // libm cost folded in), then a barrier. The master's control message
    // is charged one latency.
    println!("\nmodeled cluster makespan (LogGP: 5us latency, 2.5GB/s, 2Gflop/s):");
    println!(
        "{:>8} {:>12} {:>9} {:>12}",
        "ranks", "makespan", "speedup", "efficiency"
    );
    let flops_per_elem = 10.0;
    let mut m1 = 0.0;
    for ranks in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let report = Universe::run_report(UniverseConfig::default(), ranks, |comm| {
            let local = n / comm.size();
            comm.advance_compute(local as f64 * flops_per_elem);
            comm.barrier();
        });
        if ranks == 1 {
            m1 = report.makespan_s;
        }
        let sp = m1 / report.makespan_s;
        println!(
            "{ranks:>8} {:>12} {:>8.2}x {:>11.1}%",
            fmt_s(report.makespan_s),
            sp,
            100.0 * sp / ranks as f64
        );
    }
    println!("\nshape: near-linear until the barrier latency (~log2(P)*5us)");
    println!("becomes comparable to n/P * flop time — the trivial-parallelism claim.");
}
