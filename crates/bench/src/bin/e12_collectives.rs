//! E12 — substrate ablation: collective algorithms at simulated scale,
//! and the Fig. 1 design point that workers communicate directly rather
//! than through the master.

use bench::fmt_s;
use comm::{CollectiveAlgo, ReduceOp, Universe, UniverseConfig};

fn modeled_allreduce(ranks: usize, algo: CollectiveAlgo, payload: usize) -> f64 {
    let cfg = UniverseConfig {
        algo,
        ..Default::default()
    };
    Universe::run_report(cfg, ranks, move |comm| {
        let v = vec![comm.rank() as f64; payload];
        let _ = comm.allreduce(&v, ReduceOp::vec_sum());
    })
    .makespan_s
}

/// Master-routed reduction: everyone sends to rank 0, rank 0 combines and
/// broadcasts — the bottleneck Fig. 1 warns about.
fn modeled_master_routed(ranks: usize, payload: usize) -> f64 {
    let cfg = UniverseConfig {
        algo: CollectiveAlgo::Linear,
        ..Default::default()
    };
    Universe::run_report(cfg, ranks, move |comm| {
        let v = vec![comm.rank() as f64; payload];
        let summed = comm.reduce(0, &v, ReduceOp::vec_sum());
        let _ = comm.bcast(0, summed);
    })
    .makespan_s
}

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E12",
        "collective-algorithm ablation + master-bottleneck check",
        "Fig. 1: workers 'communicate directly with each other bypassing \
         the ODIN process … so that the ODIN process does not become a \
         performance bottleneck'",
    );
    let payload = 1024; // 8 KiB vectors
    println!("modeled allreduce makespan (8 KiB payload):");
    println!(
        "{:>8} {:>14} {:>14} {:>18} {:>16}",
        "ranks", "linear", "binomial", "recursive-dbl", "master-routed"
    );
    for ranks in [4usize, 8, 16, 32, 64, 128, 256] {
        let lin = modeled_allreduce(ranks, CollectiveAlgo::Linear, payload);
        let tree = modeled_allreduce(ranks, CollectiveAlgo::Tree, payload);
        let rd = modeled_allreduce(ranks, CollectiveAlgo::RecursiveDoubling, payload);
        let master = modeled_master_routed(ranks, payload);
        println!(
            "{ranks:>8} {:>14} {:>14} {:>18} {:>16}",
            fmt_s(lin),
            fmt_s(tree),
            fmt_s(rd),
            fmt_s(master)
        );
    }
    println!("\nshape: O(P) linear/master-routed costs diverge from the O(log P)");
    println!("tree and recursive-doubling algorithms as P grows — why ODIN's");
    println!("workers must talk to each other directly.");

    // sanity: all algorithms agree on the value
    for algo in [
        CollectiveAlgo::Linear,
        CollectiveAlgo::Tree,
        CollectiveAlgo::RecursiveDoubling,
    ] {
        let cfg = UniverseConfig {
            algo,
            ..Default::default()
        };
        let out = Universe::run_report(cfg, 6, |comm| {
            comm.allreduce(&(comm.rank() as i64), ReduceOp::sum())
        });
        assert!(out.results.iter().all(|&v| v == 15));
    }
    println!("\n(all algorithms verified to produce identical reductions)");
}
