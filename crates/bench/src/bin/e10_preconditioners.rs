//! E10 — the Ifpack/ML rows of Table I matter: preconditioning cuts
//! iterations and time-to-solution.

use bench::fmt_s;
use comm::{Universe, UniverseConfig};
use dlinalg::DistVector;
use galeri::{anisotropic_laplace_2d, laplace_2d, laplace_3d};
use solvers::{
    cg, AmgPreconditioner, ChebyshevPrecond, IdentityPrecond, IluPrecond, JacobiPrecond,
    KrylovConfig, Preconditioner, SsorPrecond,
};

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E10",
        "preconditioner comparison (Ifpack + ML roles)",
        "algebraic preconditioners and multigrid reduce iterations and \
         time-to-solution vs plain CG",
    );
    let ranks = 2;
    let cfg = KrylovConfig {
        rtol: 1e-8,
        max_iter: 20_000,
        ..Default::default()
    };
    for (label, which) in [
        ("2-D Laplace 64x64 (n=4096)", 0usize),
        ("3-D Laplace 16^3 (n=4096)", 1),
        ("anisotropic 2-D eps=0.01 48x48", 2),
    ] {
        println!("\n{label}, {ranks} ranks, rtol 1e-8:");
        println!(
            "{:>10} {:>7} {:>12} {:>12} {:>14}",
            "precond", "iters", "setup", "solve", "conv.factor"
        );
        for name in ["none", "jacobi", "ssor", "chebyshev", "ilu0", "amg"] {
            let cfg2 = cfg;
            let report = Universe::run_report(UniverseConfig::default(), ranks, move |comm| {
                let a = match which {
                    0 => laplace_2d(comm, 64, 64),
                    1 => laplace_3d(comm, 16, 16, 16),
                    _ => anisotropic_laplace_2d(comm, 48, 48, 0.01),
                };
                let b = DistVector::from_fn(a.domain_map().clone(), |g| 1.0 + (g % 13) as f64);
                let t0 = std::time::Instant::now();
                let m: Box<dyn Preconditioner<f64>> = match name {
                    "none" => Box::new(IdentityPrecond),
                    "jacobi" => Box::new(JacobiPrecond::new(&a)),
                    "ssor" => Box::new(SsorPrecond::new(&a, 1.3)),
                    "chebyshev" => Box::new(ChebyshevPrecond::new(comm, &a, 4, 15)),
                    "ilu0" => Box::new(IluPrecond::new(&a)),
                    _ => Box::new(AmgPreconditioner::new(comm, &a, Default::default())),
                };
                let setup = t0.elapsed().as_secs_f64();
                let mut x = DistVector::zeros(a.domain_map().clone());
                let t1 = std::time::Instant::now();
                let st = cg(comm, &a, &b, &mut x, m.as_ref(), &cfg2);
                let solve = t1.elapsed().as_secs_f64();
                assert!(st.converged, "{name} failed to converge");
                (st.iterations, setup, solve, st.convergence_factor())
            });
            let (iters, setup, solve, factor) = report.results[0];
            println!(
                "{name:>10} {iters:>7} {:>12} {:>12} {:>14.4}",
                fmt_s(setup),
                fmt_s(solve),
                factor
            );
        }
    }
    println!("\nshape: iterations drop monotonically none > jacobi > ssor/cheby >");
    println!("ilu0 > amg; AMG trades setup cost for near-O(1) iteration counts.");
}
