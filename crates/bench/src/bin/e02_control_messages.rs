//! E2 — Fig. 1 / §III-B: control messages are tiny ("at most tens of
//! bytes") and buffering amortizes latency.

use bench::{fmt_s, timed};
use odin::{DType, Dist, OdinContext};

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E2",
        "control-message sizes and batching",
        "\"the only communication from the top-level node is a short \
         message, at most tens of bytes\"; \"several messages can be \
         buffered and sent at once\"",
    );
    let ctx = OdinContext::with_workers(4);

    // --- sizes of real control commands issued by a realistic pipeline ---
    ctx.reset_stats();
    let x = ctx.random(&[1_000_000], 1);
    let y = ctx.linspace(0.0, 1.0, 1_000_000);
    let z = &(&x * &y) + 2.0;
    let s = z.sqrt();
    let _sum = s.sum();
    let _sl = s.slice1(10, Some(-10), 3);
    let st = ctx.stats();
    println!("pipeline of create/ufunc/slice/reduce on n = 1e6:");
    println!("  control messages      : {}", st.ctrl_msgs);
    println!(
        "  mean size             : {:.1} bytes",
        st.mean_ctrl_bytes()
    );
    println!("  total control traffic : {} bytes", st.ctrl_bytes);
    println!(
        "  claim 'tens of bytes' : {}",
        if st.mean_ctrl_bytes() < 100.0 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );

    // --- batching: 2000 commands, buffered vs one-by-one -----------------
    let n_cmds = 2000usize;
    let a = ctx.zeros(&[64], DType::F64);
    let (_, t_unbatched) = timed(|| {
        for _ in 0..n_cmds {
            let _ = a.binary_scalar(1.0, odin::BinOp::Add, false);
        }
        ctx.barrier();
    });
    let (_, t_batched) = timed(|| {
        ctx.begin_batch();
        for _ in 0..n_cmds {
            let _ = a.binary_scalar(1.0, odin::BinOp::Add, false);
        }
        ctx.flush_batch();
        ctx.barrier();
    });
    println!("\nissuing {n_cmds} small ufunc commands (n = 64 per array):");
    println!("  one channel send each : {}", fmt_s(t_unbatched));
    println!("  batched (one send)    : {}", fmt_s(t_batched));
    println!("  speedup               : {:.2}x", t_unbatched / t_batched);
    drop((x, y, z, s, a));

    // --- per-command encoded sizes (ground truth for the table) ----------
    println!("\nencoded sizes of representative commands:");
    use odin::protocol::{ArrayMeta, Cmd, Fill};
    let meta = ArrayMeta {
        shape: vec![1_000_000_000],
        axis: 0,
        dist: Dist::Block,
        dtype: DType::F64,
    };
    let samples: Vec<(&str, Vec<u8>)> = vec![
        (
            "Create(random, n=1e9)",
            comm::encode_to_vec(&Cmd::Create {
                id: 42,
                meta,
                fill: Fill::Random { seed: 7 },
            }),
        ),
        (
            "Unary(sqrt)",
            comm::encode_to_vec(&Cmd::Unary {
                out: 43,
                a: 42,
                op: odin::UnaryOp::Sqrt,
            }),
        ),
        (
            "Binary(add)",
            comm::encode_to_vec(&Cmd::Binary {
                out: 44,
                a: 42,
                b: 43,
                op: odin::BinOp::Add,
            }),
        ),
        (
            "Reduce(sum)",
            comm::encode_to_vec(&Cmd::Reduce {
                a: 44,
                kind: odin::ReduceKind::Sum,
                axis: None,
                out: 0,
            }),
        ),
        ("Free", comm::encode_to_vec(&Cmd::Free { id: 44 })),
    ];
    for (name, bytes) in samples {
        println!("  {name:<24} {:>3} bytes", bytes.len());
        assert!(bytes.len() <= 64);
    }
}
