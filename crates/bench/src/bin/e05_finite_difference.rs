//! E5 — §III-G: the finite-difference one-liner. Global-mode slicing vs
//! hand-written local-mode halo code vs a serial loop — same numbers,
//! and the global version is one line where the local version is ~30.

use bench::{best_of, fmt_s};
use odin::OdinContext;

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E5",
        "distributed finite differences by slicing",
        "\"dy = y[1:] - y[:-1] … requires some small amount of inter-node \
         communication … The equivalent MPI code would require several \
         calls to communication routines, whereas here, ODIN performs \
         this communication automatically\"",
    );
    let n = 4_000_000usize;
    let ctx = OdinContext::with_workers(4);
    let x = ctx.linspace(1.0, 2.0 * std::f64::consts::PI, n);
    let y = x.sin();

    // ---- global mode: the paper's one-liner -----------------------------
    let t_global = best_of(3, || {
        let dy = &y.slice1(1, None, 1) - &y.slice1(0, Some(-1), 1);
        ctx.barrier();
        drop(dy);
    });
    let dy_global = (&y.slice1(1, None, 1) - &y.slice1(0, Some(-1), 1)).to_vec();

    // ---- local mode: hand-written halo exchange -------------------------
    let out = ctx.zeros(&[n], odin::DType::F64);
    let t_local = best_of(3, || {
        ctx.run_spmd(&[&y, &out], |scope, args| {
            let (y_id, out_id) = (args[0], args[1]);
            let (_, right) = scope.exchange_boundary_1d(y_id);
            let mine: Vec<f64> = scope.local(y_id).as_f64().to_vec();
            let mut diffs = Vec::with_capacity(mine.len());
            for w in mine.windows(2) {
                diffs.push(w[1] - w[0]);
            }
            if let Some(rg) = right {
                diffs.push(rg - mine[mine.len() - 1]);
            } else {
                diffs.push(0.0);
            }
            scope.overwrite_f64(out_id, diffs);
        });
    });
    let dy_local = out.slice1(0, Some(-1), 1).to_vec();

    // ---- serial reference -----------------------------------------------
    let ys = y.to_vec();
    let t_serial = best_of(3, || {
        let mut dy = Vec::with_capacity(n - 1);
        for w in ys.windows(2) {
            dy.push(w[1] - w[0]);
        }
        std::hint::black_box(dy);
    });
    let dy_serial: Vec<f64> = ys.windows(2).map(|w| w[1] - w[0]).collect();

    let max_diff_gl = dy_global
        .iter()
        .zip(&dy_serial)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let max_diff_ll = dy_local
        .iter()
        .zip(&dy_serial)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    println!("dy = y[1:] - y[:-1], n = {n}, 4 workers:");
    println!(
        "{:>28} {:>12} {:>14} {:>12}",
        "variant", "time", "max err", "user LoC"
    );
    println!(
        "{:>28} {:>12} {:>14.1e} {:>12}",
        "ODIN global slicing",
        fmt_s(t_global),
        max_diff_gl,
        1
    );
    println!(
        "{:>28} {:>12} {:>14.1e} {:>12}",
        "local-mode halo (MPI-style)",
        fmt_s(t_local),
        max_diff_ll,
        18
    );
    println!(
        "{:>28} {:>12} {:>14} {:>12}",
        "serial loop",
        fmt_s(t_serial),
        "-",
        3
    );
    assert!(max_diff_gl == 0.0 && max_diff_ll == 0.0);
    println!("\nshape: identical results; the one-line global expression does the");
    println!("halo exchange the 18-line local version spells out by hand.");
}
