//! E15 — §III-H: distributed file IO — each worker reads/writes its own
//! chunk; round-trips across worker counts.

use bench::{fmt_s, timed};
use odin::OdinContext;

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E15",
        "distributed file IO",
        "\"access to node-level computations allows full control to read \
         or write any arbitrary distributed file format\"",
    );
    let n = 2_000_000usize;
    let base = std::env::temp_dir().join(format!("e15_{}", std::process::id()));
    println!("array of {n} f64 ({} MB):", n * 8 / (1 << 20));
    println!(
        "{:>8} {:>12} {:>12} {:>14}",
        "workers", "write", "read", "throughput(w)"
    );
    let mut parts_written = 0;
    for workers in [1usize, 2, 4] {
        let ctx = OdinContext::with_workers(workers);
        let x = ctx.random(&[n], 5);
        let (_, tw) = timed(|| ctx.save(&x, &base).unwrap());
        let (y, tr) = timed(|| ctx.load(&base).unwrap());
        assert_eq!(y.len(), n);
        // spot-check content
        let a = x.slice1(0, Some(64), 1).to_vec();
        let b = y.slice1(0, Some(64), 1).to_vec();
        assert_eq!(a, b);
        println!(
            "{workers:>8} {:>12} {:>12} {:>11.0} MB/s",
            fmt_s(tw),
            fmt_s(tr),
            (n * 8) as f64 / (1 << 20) as f64 / tw
        );
        parts_written = workers;
        odin::remove_saved(&base, workers);
    }
    // cross-worker-count round trip
    let reference = {
        let ctx = OdinContext::with_workers(3);
        let x = ctx.random(&[5000], 9);
        ctx.save(&x, &base).unwrap();
        x.to_vec()
    };
    let back = {
        let ctx = OdinContext::with_workers(4);
        let y = ctx.load(&base).unwrap();
        y.to_vec()
    };
    odin::remove_saved(&base, 3.max(parts_written));
    assert_eq!(reference, back);
    println!("\nwrite-with-3-workers / read-with-4-workers round trip: OK");
    println!("(chunks are keyed by global row ids, not by the writer layout)");
}
