//! E6 — §III: "ODIN can optimize distributed array expressions …
//! loop fusion". Fused single-pass evaluation vs eager temporaries.

use bench::{best_of, fmt_s};
use odin::{Expr, OdinContext};

fn main() {
    let _obs = bench::obs_init();
    bench::header(
        "E6",
        "loop fusion of array expressions",
        "expression analysis enables loop fusion (the numexpr-style \
         optimization ODIN claims)",
    );
    let n = 4_000_000usize;
    let ctx = OdinContext::with_workers(4);
    let x = ctx.random(&[n], 1);
    let y = ctx.random(&[n], 2);

    struct Case {
        name: &'static str,
        n_ops: usize,
    }
    let cases = [
        Case {
            name: "sqrt(x^2 + y^2)            ",
            n_ops: 4,
        },
        Case {
            name: "3x^2 + 2x + 1              ",
            n_ops: 5,
        },
        Case {
            name: "sin(x)*cos(y) + exp(-x*x)  ",
            n_ops: 7,
        },
    ];
    println!("n = {n}, 4 workers:");
    println!(
        "{:>30} {:>6} {:>12} {:>12} {:>9} {:>11}",
        "expression", "ops", "fused", "unfused", "speedup", "ctrl msgs"
    );
    fn build<'x, 'c>(
        ci: usize,
        xi: &'x odin::DistArray<'c>,
        yi: &'x odin::DistArray<'c>,
    ) -> Expr<'x, 'c> {
        match ci {
            0 => (Expr::leaf(xi).pow(2.0) + Expr::leaf(yi).pow(2.0)).sqrt(),
            1 => Expr::leaf(xi).pow(2.0) * 3.0 + Expr::leaf(xi) * 2.0 + 1.0,
            _ => {
                Expr::leaf(xi).sin() * Expr::leaf(yi).cos()
                    + (Expr::scalar(0.0) - Expr::leaf(xi) * Expr::leaf(xi)).exp()
            }
        }
    }
    for (ci, case) in cases.iter().enumerate() {
        let t_fused = best_of(3, || {
            let r = build(ci, &x, &y).eval();
            ctx.barrier();
            drop(r);
        });
        let t_unfused = best_of(3, || {
            let r = build(ci, &x, &y).eval_unfused();
            ctx.barrier();
            drop(r);
        });
        // control-message counts
        ctx.reset_stats();
        let r1 = build(ci, &x, &y).eval();
        let fused_msgs = ctx.stats().ctrl_msgs;
        ctx.reset_stats();
        let r2 = build(ci, &x, &y).eval_unfused();
        let unfused_msgs = ctx.stats().ctrl_msgs;
        // correctness
        let a = r1.to_vec();
        let b = r2.to_vec();
        let md = a
            .iter()
            .zip(&b)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0f64, f64::max);
        assert!(md < 1e-12, "fusion changed the answer: {md}");
        println!(
            "{:>30} {:>6} {:>12} {:>12} {:>8.2}x {:>5}/{:<5}",
            case.name,
            case.n_ops,
            fmt_s(t_fused),
            fmt_s(t_unfused),
            t_unfused / t_fused,
            fused_msgs,
            unfused_msgs
        );
    }
    println!("\nshape: fusion wins by avoiding intermediate arrays (memory traffic)");
    println!("and collapsing k operations into one control message per worker.");
}
