//! Std-only microbenchmarks backing experiments E2, E5, E6, E7, E8, E12.
//!
//! `cargo bench` runs these; the `e01`–`e16` binaries print the full
//! paper-style tables (run them with `cargo run --release -p bench --bin e0X`).
//!
//! This harness has no external dependencies: each case is warmed up,
//! then timed over enough iterations to exceed a minimum measurement
//! window, and min/mean per-iteration times are printed.

use std::time::{Duration, Instant};

use comm::{CollectiveAlgo, ReduceOp, Universe, UniverseConfig};
use odin::{Expr, OdinContext};
use seamless::{Interpreter, Type, Value};

/// Time `f` repeatedly: a few warmup calls, then batches until the total
/// measured time exceeds `window`. Reports per-iteration min and mean.
fn bench(group: &str, name: &str, window: Duration, mut f: impl FnMut()) {
    for _ in 0..2 {
        f();
    }
    let mut iters = 0u64;
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    while total < window || iters < 5 {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed();
        total += dt;
        min = min.min(dt);
        iters += 1;
    }
    let mean = total / iters as u32;
    println!(
        "{group}/{name:<28} iters {iters:>5}   min {:>12?}   mean {:>12?}",
        min, mean
    );
}

fn bench_control_messages() {
    let w = Duration::from_millis(500);
    let ctx = OdinContext::with_workers(2);
    let a = ctx.zeros(&[64], odin::DType::F64);
    bench("e02_control_messages", "unbatched_200_cmds", w, || {
        for _ in 0..200 {
            let _ = a.binary_scalar(1.0, odin::BinOp::Add, false);
        }
        ctx.barrier();
    });
    bench("e02_control_messages", "batched_200_cmds", w, || {
        ctx.begin_batch();
        for _ in 0..200 {
            let _ = a.binary_scalar(1.0, odin::BinOp::Add, false);
        }
        ctx.flush_batch();
        ctx.barrier();
    });
}

fn bench_finite_difference() {
    let w = Duration::from_millis(700);
    let n = 1_000_000usize;
    let ctx = OdinContext::with_workers(4);
    let y = ctx.linspace(0.0, std::f64::consts::TAU, n).sin();
    bench("e05_finite_difference", "global_slicing", w, || {
        let dy = &y.slice1(1, None, 1) - &y.slice1(0, Some(-1), 1);
        ctx.barrier();
        drop(dy);
    });
    let out = ctx.zeros(&[n], odin::DType::F64);
    bench("e05_finite_difference", "local_mode_halo", w, || {
        ctx.run_spmd(&[&y, &out], |scope, args| {
            let (y_id, out_id) = (args[0], args[1]);
            let (_, right) = scope.exchange_boundary_1d(y_id);
            let mine: Vec<f64> = scope.local(y_id).as_f64().to_vec();
            let mut diffs = Vec::with_capacity(mine.len());
            for w in mine.windows(2) {
                diffs.push(w[1] - w[0]);
            }
            diffs.push(right.map_or(0.0, |rg| rg - mine[mine.len() - 1]));
            scope.overwrite_f64(out_id, diffs);
        });
    });
}

fn bench_loop_fusion() {
    let w = Duration::from_millis(700);
    let n = 1_000_000usize;
    let ctx = OdinContext::with_workers(4);
    let x = ctx.random(&[n], 1);
    let y = ctx.random(&[n], 2);
    bench("e06_loop_fusion", "fused_hypot", w, || {
        let r = (Expr::leaf(&x).pow(2.0) + Expr::leaf(&y).pow(2.0))
            .sqrt()
            .eval();
        ctx.barrier();
        drop(r);
    });
    bench("e06_loop_fusion", "unfused_hypot", w, || {
        let r = (Expr::leaf(&x).pow(2.0) + Expr::leaf(&y).pow(2.0))
            .sqrt()
            .eval_unfused();
        ctx.barrier();
        drop(r);
    });
}

fn bench_jit() {
    let w = Duration::from_millis(700);
    let src = "
def sum(it):
    res = 0.0
    for i in range(len(it)):
        res = res + it[i]
    return res
";
    let n = 100_000usize;
    let data: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
    let interp = Interpreter::new(src).unwrap();
    let kernel = seamless::jit(src, "sum", &[Type::ArrF]).unwrap();
    bench("e07_jit", "interpreter_sum_100k", w, || {
        interp.call("sum", vec![Value::ArrF(data.clone())]).unwrap();
    });
    bench("e07_jit", "typed_vm_sum_100k", w, || {
        kernel.call(vec![Value::ArrF(data.clone())]).unwrap();
    });
    bench("e07_jit", "native_sum_100k", w, || {
        std::hint::black_box(data.iter().sum::<f64>());
    });
}

fn bench_cmodule() {
    let w = Duration::from_millis(300);
    let libm = match seamless::CModule::load_system("m") {
        Ok(m) => m,
        Err(_) => {
            println!("e08_cmodule: libm unavailable, skipped");
            return;
        }
    };
    bench("e08_cmodule", "cmodule_atan2", w, || {
        libm.call(
            "atan2",
            &[
                Value::Float(std::hint::black_box(1.0)),
                Value::Float(std::hint::black_box(2.0)),
            ],
        )
        .unwrap();
    });
    bench("e08_cmodule", "direct_atan2", w, || {
        std::hint::black_box(std::hint::black_box(1.0f64).atan2(std::hint::black_box(2.0)));
    });
}

fn bench_collectives() {
    let w = Duration::from_millis(500);
    for (name, algo) in [
        ("linear", CollectiveAlgo::Linear),
        ("tree", CollectiveAlgo::Tree),
        ("recursive_doubling", CollectiveAlgo::RecursiveDoubling),
    ] {
        let cfg = UniverseConfig {
            algo,
            ..Default::default()
        };
        bench(
            "e12_collectives",
            &format!("allreduce_8ranks_8KiB/{name}"),
            w,
            || {
                Universe::run_report(cfg, 8, |comm| {
                    let v = vec![comm.rank() as f64; 1024];
                    comm.allreduce(&v, ReduceOp::vec_sum())
                });
            },
        );
    }
}

fn main() {
    bench_control_messages();
    bench_finite_difference();
    bench_loop_fusion();
    bench_jit();
    bench_cmodule();
    bench_collectives();
}
