//! Criterion microbenchmarks backing experiments E2, E5, E6, E7, E8, E12.
//!
//! `cargo bench` runs these; the `e01`–`e16` binaries print the full
//! paper-style tables (run them with `cargo run --release -p bench --bin e0X`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use comm::{CollectiveAlgo, ReduceOp, Universe, UniverseConfig};
use odin::{Expr, OdinContext};
use seamless::{Interpreter, Type, Value};

fn bench_control_messages(c: &mut Criterion) {
    let mut g = c.benchmark_group("e02_control_messages");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let ctx = OdinContext::with_workers(2);
    let a = ctx.zeros(&[64], odin::DType::F64);
    g.bench_function("unbatched_200_cmds", |b| {
        b.iter(|| {
            for _ in 0..200 {
                let _ = a.binary_scalar(1.0, odin::BinOp::Add, false);
            }
            ctx.barrier();
        })
    });
    g.bench_function("batched_200_cmds", |b| {
        b.iter(|| {
            ctx.begin_batch();
            for _ in 0..200 {
                let _ = a.binary_scalar(1.0, odin::BinOp::Add, false);
            }
            ctx.flush_batch();
            ctx.barrier();
        })
    });
    g.finish();
}

fn bench_finite_difference(c: &mut Criterion) {
    let mut g = c.benchmark_group("e05_finite_difference");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let n = 1_000_000usize;
    let ctx = OdinContext::with_workers(4);
    let y = ctx.linspace(0.0, 6.28, n).sin();
    g.bench_function("global_slicing", |b| {
        b.iter(|| {
            let dy = &y.slice1(1, None, 1) - &y.slice1(0, Some(-1), 1);
            ctx.barrier();
            drop(dy);
        })
    });
    let out = ctx.zeros(&[n], odin::DType::F64);
    g.bench_function("local_mode_halo", |b| {
        b.iter(|| {
            ctx.run_spmd(&[&y, &out], |scope, args| {
                let (y_id, out_id) = (args[0], args[1]);
                let (_, right) = scope.exchange_boundary_1d(y_id);
                let mine: Vec<f64> = scope.local(y_id).as_f64().to_vec();
                let mut diffs = Vec::with_capacity(mine.len());
                for w in mine.windows(2) {
                    diffs.push(w[1] - w[0]);
                }
                diffs.push(right.map_or(0.0, |rg| rg - mine[mine.len() - 1]));
                scope.overwrite_f64(out_id, diffs);
            });
        })
    });
    g.finish();
}

fn bench_loop_fusion(c: &mut Criterion) {
    let mut g = c.benchmark_group("e06_loop_fusion");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let n = 1_000_000usize;
    let ctx = OdinContext::with_workers(4);
    let x = ctx.random(&[n], 1);
    let y = ctx.random(&[n], 2);
    g.bench_function("fused_hypot", |b| {
        b.iter(|| {
            let r = (Expr::leaf(&x).pow(2.0) + Expr::leaf(&y).pow(2.0)).sqrt().eval();
            ctx.barrier();
            drop(r);
        })
    });
    g.bench_function("unfused_hypot", |b| {
        b.iter(|| {
            let r = (Expr::leaf(&x).pow(2.0) + Expr::leaf(&y).pow(2.0))
                .sqrt()
                .eval_unfused();
            ctx.barrier();
            drop(r);
        })
    });
    g.finish();
}

fn bench_jit(c: &mut Criterion) {
    let mut g = c.benchmark_group("e07_jit");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let src = "
def sum(it):
    res = 0.0
    for i in range(len(it)):
        res = res + it[i]
    return res
";
    let n = 100_000usize;
    let data: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
    let interp = Interpreter::new(src).unwrap();
    let kernel = seamless::jit(src, "sum", &[Type::ArrF]).unwrap();
    g.bench_function("interpreter_sum_100k", |b| {
        b.iter(|| interp.call("sum", vec![Value::ArrF(data.clone())]).unwrap())
    });
    g.bench_function("typed_vm_sum_100k", |b| {
        b.iter(|| kernel.call(vec![Value::ArrF(data.clone())]).unwrap())
    });
    g.bench_function("native_sum_100k", |b| {
        b.iter(|| std::hint::black_box(data.iter().sum::<f64>()))
    });
    g.finish();
}

fn bench_cmodule(c: &mut Criterion) {
    let mut g = c.benchmark_group("e08_cmodule");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let libm = seamless::CModule::load_system("m").unwrap();
    g.bench_function("cmodule_atan2", |b| {
        b.iter(|| {
            libm.call(
                "atan2",
                &[
                    Value::Float(std::hint::black_box(1.0)),
                    Value::Float(std::hint::black_box(2.0)),
                ],
            )
            .unwrap()
        })
    });
    g.bench_function("direct_atan2", |b| {
        b.iter(|| std::hint::black_box(1.0f64).atan2(std::hint::black_box(2.0)))
    });
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_collectives");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, algo) in [
        ("linear", CollectiveAlgo::Linear),
        ("tree", CollectiveAlgo::Tree),
        ("recursive_doubling", CollectiveAlgo::RecursiveDoubling),
    ] {
        g.bench_with_input(
            BenchmarkId::new("allreduce_8ranks_8KiB", name),
            &algo,
            |b, &algo| {
                let cfg = UniverseConfig {
                    algo,
                    ..Default::default()
                };
                b.iter(|| {
                    Universe::run_report(cfg, 8, |comm| {
                        let v = vec![comm.rank() as f64; 1024];
                        comm.allreduce(&v, ReduceOp::vec_sum())
                    })
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_control_messages,
    bench_finite_difference,
    bench_loop_fusion,
    bench_jit,
    bench_cmodule,
    bench_collectives
);
criterion_main!(benches);
