//! Tier-1 guarantees of the causal-tracing / critical-path plane:
//!
//! * the program activity graph (PAG) is **deterministic**: repeated
//!   identical runs fingerprint identically, even though wall clocks,
//!   flow-id values, and ring registration order all differ;
//! * **no dangling flow edges** survive a seeded chaos sweep under
//!   reliable delivery — every traced receive finds its producer even
//!   when the copy that delivered was a retransmission;
//! * the critical-path category attribution sums **bitwise** to the
//!   reported path length, and the path tiles the makespan;
//! * a delay fault injected on one rank is attributed to *that* rank's
//!   blocked/wait time and the profiler names it the dominant straggler;
//! * ring overflow is loud: `obs.spans_dropped{rank}` counts every
//!   overwrite and the text report carries a truncation warning.
//!
//! The registry and span buffers are process-global, so every test here
//! serializes on one lock and starts from `obs::reset()`.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use hpc_framework::comm::{Delivery, FaultPlan, ReduceOp, Universe, UniverseConfig};
use hpc_framework::obs;
use hpc_framework::obs::critpath;
use hpc_framework::obs::graph::Pag;

fn obs_lock() -> MutexGuard<'static, ()> {
    static L: OnceLock<Mutex<()>> = OnceLock::new();
    // a prior panicking test must not poison observability for the rest
    match L.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// A small but representative traced workload: collectives (which
/// decompose into p2p messages) plus a gather, run under `cfg`. Returns
/// the graph built from the run's spans.
fn traced_run(ranks: usize, cfg: UniverseConfig) -> Pag {
    obs::reset();
    obs::set_enabled(true);
    Universe::run_report(cfg, ranks, |comm| {
        comm.barrier();
        let v = vec![comm.rank() as f64 + 1.0; 32];
        let s = comm.allreduce(&v, ReduceOp::vec_sum());
        let _ = comm.gather(0, &(comm.rank() as u64));
        s[0]
    });
    let pag = Pag::build();
    obs::set_enabled(false);
    pag
}

#[test]
fn pag_fingerprint_is_deterministic_across_runs() {
    let _g = obs_lock();
    let fp: Vec<u64> = (0..3)
        .map(|_| traced_run(6, UniverseConfig::default()))
        .map(|pag| {
            assert!(!pag.nodes.is_empty(), "traced run recorded no spans");
            assert_eq!(pag.orphan_consumers, 0);
            pag.fingerprint()
        })
        .collect();
    // Wall clocks, flow-id values, and thread registration order all
    // change between runs; the structural fingerprint must not.
    assert_eq!(fp[0], fp[1]);
    assert_eq!(fp[1], fp[2]);
}

#[test]
fn chaos_sweep_leaves_no_dangling_flow_edges() {
    let _g = obs_lock();
    let mut healed = 0u64;
    for seed in [42u64, 1009, 777_216] {
        let cfg = UniverseConfig {
            fault: FaultPlan::messages(seed, 0.08, 0.05, 0.05, 0.04),
            delivery: Delivery::Reliable,
            stall_timeout: Some(Duration::from_secs(30)),
            ..Default::default()
        };
        let pag = traced_run(4, cfg);
        // Retransmitted copies reuse the original flow id, so even a
        // receive satisfied by a retransmission must find its producer.
        assert_eq!(
            pag.orphan_consumers, 0,
            "seed {seed}: consumer span with no matching producer"
        );
        healed += pag
            .nodes
            .iter()
            .filter(|n| n.event.kind == obs::span::SpanKind::Retx)
            .count() as u64;
    }
    assert!(
        healed > 0,
        "the sweep never retransmitted — loss paths were not exercised"
    );
}

#[test]
fn zerocopy_datapath_leaves_no_dangling_flow_edges() {
    let _g = obs_lock();
    // Threshold 1 puts every payload on the region arm, so the traced
    // traffic is entirely region-handle messages; flow ids must thread
    // through region envelopes exactly as through wire bytes, clean run
    // and chaos sweep alike (retransmitted regions reuse the Arc copy
    // and the original flow id).
    for seed in [0u64, 42, 1009] {
        let fault = if seed == 0 {
            FaultPlan::none()
        } else {
            FaultPlan::messages(seed, 0.08, 0.05, 0.05, 0.04)
        };
        let cfg = UniverseConfig {
            fault,
            delivery: Delivery::Reliable,
            stall_timeout: Some(Duration::from_secs(30)),
            ..Default::default()
        }
        .with_zerocopy_threshold(1);
        obs::reset();
        obs::set_enabled(true);
        let report = Universe::run_report(cfg, 4, |comm| {
            let p = comm.size();
            let outgoing: Vec<Vec<u64>> = (0..p)
                .map(|d| vec![(comm.rank() * p + d) as u64; 128])
                .collect();
            let incoming = comm.alltoallv(outgoing);
            comm.barrier();
            incoming.iter().map(Vec::len).sum::<usize>() as f64
        });
        let pag = Pag::build();
        obs::set_enabled(false);
        assert!(
            report.stats.iter().any(|s| s.zerocopy_msgs > 0),
            "seed {seed}: no region payloads moved"
        );
        assert!(!pag.nodes.is_empty(), "seed {seed}: no spans recorded");
        assert_eq!(
            pag.orphan_consumers, 0,
            "seed {seed}: region-handle receive with no producer edge"
        );
    }
}

#[test]
fn categories_sum_bitwise_to_critical_path_length() {
    let _g = obs_lock();
    let pag = traced_run(6, UniverseConfig::default());
    let p = critpath::profile(&pag);
    assert!(p.critical_path_s > 0.0);
    // Bitwise: critical_path_s is *defined* as the ordered category sum.
    assert!(
        p.categories.iter().sum::<f64>() == p.critical_path_s,
        "category sum {} != path {}",
        p.categories.iter().sum::<f64>(),
        p.critical_path_s
    );
    // The backward walk attributes exactly each frontier decrease, so the
    // categories tile [0, makespan] up to float summation order.
    assert!(
        (p.critical_path_s - p.makespan_s).abs() <= 1e-9 * p.makespan_s.max(1.0),
        "path {} does not tile makespan {}",
        p.critical_path_s,
        p.makespan_s
    );
    assert_eq!(p.orphan_consumers, 0);
    assert_eq!(p.dropped_spans, 0);
}

#[test]
fn injected_delay_names_the_victim_rank() {
    let _g = obs_lock();
    const VICTIM: usize = 3;
    let cfg = UniverseConfig {
        fault: FaultPlan {
            delay_p: 1.0,
            delay_rank: Some(VICTIM),
            delay_s: 1.0e-4,
            ..FaultPlan::none()
        },
        ..Default::default()
    };
    let pag = traced_run(8, cfg);
    let p = critpath::profile(&pag);
    assert_eq!(
        p.dominant_rank,
        Some(VICTIM),
        "profiler named the wrong straggler: {:?}",
        p.stragglers
    );
    let blocked = 2;
    assert_eq!(critpath::CATEGORIES[blocked], "blocked");
    let victim = p.ranks.iter().find(|r| r.rank == VICTIM).unwrap();
    assert!(
        victim.residency[blocked] > 0.0,
        "victim has no blocked residency on the path"
    );
    assert!(p
        .text()
        .contains(&format!("dominant straggler: rank {VICTIM}")));
}

#[test]
fn ring_overflow_counts_drops_and_warns_in_the_report() {
    let _g = obs_lock();
    obs::reset();
    obs::set_enabled(true);
    // This thread has no rank tag, so its ring reports as the driver.
    let over = obs::span::DEFAULT_RING_CAPACITY + 100;
    for i in 0..over {
        let t = obs::span::span_start(i as f64);
        t.finish("test", "overflow", i as f64 + 1.0, &[]);
    }
    obs::set_enabled(false);
    let dropped = obs::global()
        .counter_value(&obs::registry::key(
            "obs.spans_dropped",
            &[("rank", "driver")],
        ))
        .unwrap_or(0);
    assert_eq!(dropped, 100, "every overwrite must be counted");
    let report = obs::report::text_report();
    assert!(
        report.contains("WARNING") && report.contains("overwrote 100 spans"),
        "text report must warn about truncation:\n{report}"
    );
    // The truncation is also forwarded into the profile diagnostics.
    let p = critpath::profile_current();
    assert_eq!(p.dropped_spans, 100);
    obs::reset();
}
