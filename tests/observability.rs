//! Tier-1 guarantees of the observability layer:
//!
//! * a programmatic run of the full stack produces a **valid** Chrome-trace
//!   JSON document containing spans from all three subsystems (`comm`,
//!   `odin`, `solver`) with per-rank virtual-clock timestamps;
//! * registry counters agree **exactly** with `CommStats` for every
//!   collective algorithm (the spans/metrics are the same events the
//!   paper's §III-J instrumentation goal names);
//! * the paper's small-control-message claim holds: a global-mode ODIN
//!   program issues control commands averaging < 100 bytes;
//! * the disabled path records nothing (the single-atomic-load guarantee
//!   documented in `obs`).
//!
//! The registry and span buffers are process-global, so every test here
//! serializes on one lock and starts from `obs::reset()`.

use std::sync::{Mutex, MutexGuard, OnceLock};

use hpc_framework::comm::{
    CollectiveAlgo, Delivery, FaultPlan, ReduceOp, Universe, UniverseConfig,
};
use hpc_framework::hpc_core::bridge::{solve_with_odin_rhs, SolveMethod};
use hpc_framework::obs;
use hpc_framework::odin::OdinContext;
use hpc_framework::solvers::KrylovConfig;

fn obs_lock() -> MutexGuard<'static, ()> {
    static L: OnceLock<Mutex<()>> = OnceLock::new();
    // a prior panicking test must not poison observability for the rest
    match L.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// One full-stack run: an ODIN-held right-hand side solved by CG through
/// the bridge, so comm, ODIN, and solver spans all land in one trace.
fn run_bridge_solve() {
    let ctx = OdinContext::with_workers(3);
    let n = 40;
    let b = ctx.random(&[n], 11);
    let (x, report) = solve_with_odin_rhs(
        &ctx,
        &b,
        move |g| {
            let mut row = Vec::new();
            if g > 0 {
                row.push((g - 1, -1.0));
            }
            row.push((g, 2.5));
            if g + 1 < n {
                row.push((g + 1, -1.0));
            }
            row
        },
        SolveMethod::Cg,
        KrylovConfig {
            rtol: 1e-10,
            max_iter: 400,
            ..Default::default()
        },
    );
    assert!(report.converged);
    assert_eq!(x.to_vec().len(), n);
}

#[test]
fn trace_has_all_three_subsystems_with_virtual_clocks() {
    let _g = obs_lock();
    obs::reset();
    obs::set_enabled(true);
    run_bridge_solve();
    obs::set_enabled(false);

    // Raw span check: every subsystem recorded, and comm/solver spans sit
    // on rank-tagged rings with advancing virtual clocks.
    let rings = obs::span::snapshot_all();
    let mut cats = std::collections::BTreeSet::new();
    let mut rank_tagged_virtual = false;
    for (rank, _dropped, events) in &rings {
        for ev in events {
            cats.insert(ev.cat);
            assert!(
                ev.virt_end_s >= ev.virt_start_s,
                "span {} runs backwards on the virtual clock",
                ev.name
            );
            if rank.is_some() && (ev.cat == "comm" || ev.cat == "solver") && ev.virt_end_s > 0.0 {
                rank_tagged_virtual = true;
            }
        }
    }
    for want in ["comm", "odin", "solver"] {
        assert!(cats.contains(want), "no {want} spans; got {cats:?}");
    }
    assert!(
        rank_tagged_virtual,
        "no rank-tagged comm/solver span advanced a virtual clock"
    );

    // Exported document: valid JSON, one trace process per rank, spans
    // from each subsystem present by category.
    let (json, n_events) = obs::trace::chrome_trace_json();
    assert!(n_events > 0);
    obs::json::validate(&json).expect("chrome trace must be valid JSON");
    for needle in [
        "\"traceEvents\"",
        "\"cat\":\"comm\"",
        "\"cat\":\"odin\"",
        "\"cat\":\"solver\"",
        "\"pid\":1",
        "process_name",
        "wall_dur_us",
    ] {
        assert!(json.contains(needle), "trace missing {needle}");
    }

    // Causal flow arrows: every matched message edge exports a Perfetto
    // flow-start ("ph":"s") at the producer and flow-finish ("ph":"f")
    // at the consumer, in equal numbers.
    let starts = json.matches("\"ph\":\"s\"").count();
    let finishes = json.matches("\"ph\":\"f\"").count();
    assert!(starts > 0, "trace has no flow arrows");
    assert_eq!(starts, finishes, "unpaired flow arrows in the trace");
}

#[test]
fn collective_accounting_matches_p2p_sends_for_every_algo() {
    for algo in [
        CollectiveAlgo::Linear,
        CollectiveAlgo::Tree,
        CollectiveAlgo::RecursiveDoubling,
    ] {
        let _g = obs_lock();
        obs::reset();
        obs::set_enabled(true);
        let p = 4;
        let cfg = UniverseConfig {
            algo,
            ..Default::default()
        };
        let report = Universe::run_report(cfg, p, |comm| {
            comm.barrier();
            let v = vec![comm.rank() as f64; 32];
            let summed = comm.allreduce(&v, ReduceOp::vec_sum());
            let _ = comm.bcast(0, if comm.rank() == 0 { Some(7u64) } else { None });
            let _ = comm.gather(1, &(comm.rank() as u64));
            let _ = comm.scatter(
                2,
                if comm.rank() == 2 {
                    Some((0..comm.size() as u64).collect())
                } else {
                    None
                },
            );
            summed[0]
        });
        obs::set_enabled(false);

        // CommStats is the ground truth for the p2p traffic each
        // collective decomposed into; the registry must agree exactly.
        let (mut msgs_sent, mut bytes_sent, mut msgs_recv, mut bytes_recv) = (0, 0, 0, 0);
        for s in &report.stats {
            msgs_sent += s.msgs_sent;
            bytes_sent += s.bytes_sent;
            msgs_recv += s.msgs_recv;
            bytes_recv += s.bytes_recv;
        }
        assert!(msgs_sent > 0, "{algo:?} sent nothing");
        let g = obs::global();
        assert_eq!(g.counter_sum("comm.msgs_sent"), msgs_sent, "{algo:?}");
        assert_eq!(g.counter_sum("comm.bytes_sent"), bytes_sent, "{algo:?}");
        assert_eq!(g.counter_sum("comm.msgs_recv"), msgs_recv, "{algo:?}");
        assert_eq!(g.counter_sum("comm.bytes_recv"), bytes_recv, "{algo:?}");
        // every message sent was received: the simulated network drops none
        assert_eq!(msgs_sent, msgs_recv, "{algo:?}");
        assert_eq!(bytes_sent, bytes_recv, "{algo:?}");
        // each rank's call increments the labeled collective counter once;
        // composite allreduce (linear/tree = reduce + bcast) also counts
        // its inner collectives, mirroring its nested spans
        let composite = !matches!(algo, CollectiveAlgo::RecursiveDoubling);
        let expect = |op: &str| match op {
            "bcast" if composite => 2 * p as u64,
            _ => p as u64,
        };
        for op in ["barrier", "allreduce", "bcast", "gather", "scatter"] {
            let key = obs::registry::key("comm.collectives", &[("op", op)]);
            assert_eq!(g.counter_value(&key), Some(expect(op)), "{algo:?} op {op}");
        }
    }
}

#[test]
fn fault_counters_reconcile_exactly_with_comm_stats() {
    let _g = obs_lock();
    obs::reset();
    obs::set_enabled(true);
    let p = 4;
    let cfg = UniverseConfig {
        stall_timeout: Some(std::time::Duration::from_secs(10)),
        fault: FaultPlan::messages(0xe18, 0.08, 0.05, 0.05, 0.04),
        delivery: Delivery::Reliable,
        ..Default::default()
    };
    let report = Universe::run_report(cfg, p, |comm| {
        comm.barrier();
        let v = vec![comm.rank() as f64 + 1.0; 64];
        let s = comm.allreduce(&v, ReduceOp::vec_sum());
        let _ = comm.gather(0, &(comm.rank() as u64));
        s[0]
    });
    obs::set_enabled(false);

    // Every fault/reliability counter increments CommStats and the
    // registry at the same site, so the two views must agree exactly,
    // per rank — the E18 acceptance identity.
    let g = obs::global();
    let mut lost = 0;
    for (rank, s) in report.stats.iter().enumerate() {
        let r = rank.to_string();
        let val = |name: &str| {
            g.counter_value(&obs::registry::key(name, &[("rank", &r)]))
                .unwrap_or(0)
        };
        assert_eq!(val("comm.retransmits"), s.retransmits, "rank {rank}");
        assert_eq!(val("comm.dropped"), s.faults_dropped, "rank {rank}");
        assert_eq!(val("comm.corrupt"), s.corrupt_detected, "rank {rank}");
        assert_eq!(val("comm.dup_suppressed"), s.dup_suppressed, "rank {rank}");
        lost += s.faults_dropped + s.corrupt_detected;
    }
    assert!(
        lost > 0,
        "the fault plan injected no losses — nothing was exercised"
    );
}

#[test]
fn cache_and_pool_counters_reconcile_exactly_with_comm_stats() {
    use hpc_framework::dlinalg::{CsrMatrix, DistVector};
    use hpc_framework::dmap::{clear_plan_cache, DistMap};

    let _g = obs_lock();
    obs::reset();
    obs::set_enabled(true);
    let p = 4;
    let n = 32;
    let report = Universe::run_report(UniverseConfig::default(), p, move |comm| {
        clear_plan_cache();
        let row = move |g: usize| {
            let mut row = vec![(g, 4.0)];
            if g > 0 {
                row.push((g - 1, -1.0));
            }
            if g + 1 < n {
                row.push((g + 1, -1.0));
            }
            row.sort_unstable_by_key(|e| e.0);
            row
        };
        let map = DistMap::block(n, comm.size(), comm.rank());
        // first build misses the plan cache, second hits it; the matvecs
        // drive the wire-buffer pool through its reuse path
        let a = CsrMatrix::from_row_fn(comm, map.clone(), map.clone(), row);
        let b = CsrMatrix::from_row_fn(comm, map.clone(), map.clone(), row);
        let x = DistVector::from_fn(map, |g| g as f64 + 1.0);
        let ya = a.matvec(comm, &x);
        let yb = b.matvec(comm, &x);
        ya.local()[0] + yb.local()[0]
    });
    obs::set_enabled(false);

    // The cache/pool counters increment CommStats and the registry at
    // the same site (like the fault counters), so the two views must
    // agree exactly, per rank.
    let g = obs::global();
    let (mut hits, mut reuse) = (0, 0);
    for (rank, s) in report.stats.iter().enumerate() {
        let r = rank.to_string();
        let val = |name: &str| {
            g.counter_value(&obs::registry::key(name, &[("rank", &r)]))
                .unwrap_or(0)
        };
        assert_eq!(val("cache.plan_hits"), s.plan_hits, "rank {rank}");
        assert_eq!(val("cache.plan_misses"), s.plan_misses, "rank {rank}");
        assert_eq!(val("pool.buffer_reuse"), s.buffer_reuse, "rank {rank}");
        assert!(s.plan_misses > 0, "rank {rank} never built a plan");
        hits += s.plan_hits;
        reuse += s.buffer_reuse;
    }
    assert!(hits > 0, "the repeated build produced no plan-cache hits");
    assert!(reuse > 0, "the matvecs never recycled a wire buffer");
}

#[test]
fn zerocopy_and_eviction_counters_reconcile_exactly_with_comm_stats() {
    use hpc_framework::dlinalg::{CsrMatrix, DistVector};
    use hpc_framework::dmap::{clear_plan_cache, DistMap};

    let _g = obs_lock();
    obs::reset();
    obs::set_enabled(true);
    let p = 4;
    let n = 32;
    // Threshold 1 forces every plan payload onto the region arm, so each
    // rank's halo traffic exercises the zero-copy counters.
    let cfg = UniverseConfig::default().with_zerocopy_threshold(1);
    let report = Universe::run_report(cfg, p, move |comm| {
        clear_plan_cache();
        let row = move |g: usize| {
            let mut row = vec![(g, 4.0)];
            if g > 0 {
                row.push((g - 1, -1.0));
            }
            if g + 1 < n {
                row.push((g + 1, -1.0));
            }
            row.sort_unstable_by_key(|e| e.0);
            row
        };
        let map = DistMap::block(n, comm.size(), comm.rank());
        let a = CsrMatrix::from_row_fn(comm, map.clone(), map.clone(), row);
        let x = DistVector::from_fn(map, |g| g as f64 + 1.0);
        let y = a.matvec(comm, &x);
        // Returning an oversized buffer to the pool must be refused and
        // counted, not retained.
        comm.put_buf(Vec::with_capacity(128 * 1024));
        y.local()[0]
    });
    obs::set_enabled(false);

    // The zero-copy and eviction counters increment CommStats and the
    // registry at the same site, so the two views must agree exactly,
    // per rank.
    let g = obs::global();
    for (rank, s) in report.stats.iter().enumerate() {
        let r = rank.to_string();
        let val = |name: &str| {
            g.counter_value(&obs::registry::key(name, &[("rank", &r)]))
                .unwrap_or(0)
        };
        assert_eq!(val("comm.zerocopy_msgs"), s.zerocopy_msgs, "rank {rank}");
        assert_eq!(val("comm.zerocopy_bytes"), s.zerocopy_bytes, "rank {rank}");
        assert_eq!(
            val("pool.buffer_pool_evictions"),
            s.buffer_pool_evictions,
            "rank {rank}"
        );
        assert!(s.zerocopy_msgs > 0, "rank {rank} sent no region payloads");
        assert!(
            s.buffer_pool_evictions > 0,
            "rank {rank} retained an oversized buffer"
        );
    }
}

#[test]
fn odin_control_messages_stay_small_paper_claim() {
    let _g = obs_lock();
    obs::reset();
    obs::set_enabled(true);
    let ctx = OdinContext::with_workers(4);
    // a representative global-mode program: construct, elementwise math,
    // slicing, reductions — the paper's "NumPy look-alike" usage
    let x = ctx.random(&[500], 3);
    let y = ctx.linspace(0.0, 1.0, 500);
    let z = &x + &y;
    let _ = z.sum();
    let _ = z.cumsum();
    let _ = z.argmax();
    ctx.barrier();
    let stats = ctx.stats();
    obs::set_enabled(false);

    assert!(stats.ctrl_msgs > 0);
    let mean = stats.mean_ctrl_bytes();
    assert!(
        mean < 100.0,
        "paper claim violated: mean control message is {mean:.1} bytes"
    );
    // the same figure is exported live as a gauge
    let gauge = obs::global()
        .gauge_value("odin.mean_ctrl_bytes")
        .expect("gauge odin.mean_ctrl_bytes not exported");
    assert!(gauge > 0.0 && gauge < 100.0, "gauge reads {gauge}");
}

#[test]
fn disabled_path_records_nothing() {
    let _g = obs_lock();
    obs::reset();
    obs::set_enabled(false);
    let report = Universe::run_report(UniverseConfig::default(), 3, |comm| {
        let v = vec![comm.rank() as f64; 16];
        comm.allreduce(&v, ReduceOp::vec_sum())[0]
    });
    assert!(report.stats.iter().any(|s| s.msgs_sent > 0));
    // spans: no ring gained an event; metrics: registry still empty
    let events: usize = obs::span::snapshot_all()
        .iter()
        .map(|(_, _, evs)| evs.len())
        .sum();
    assert_eq!(events, 0, "spans recorded while disabled");
    assert_eq!(obs::global().counter_sum("comm."), 0);
    assert_eq!(obs::global().counter_sum("odin."), 0);
    assert_eq!(obs::global().counter_sum("solver."), 0);
}

#[test]
fn zerocopy_region_corrupt_skip_reconciles_exactly_with_comm_stats() {
    // The PR 7 gap, closed: with every payload on the region arm and an
    // aggressive seeded corrupt schedule, each skipped-and-counted
    // corruption (regions have no wire image to flip) and each
    // FNV-integrity verification must land in `CommStats` and the obs
    // registry at the same site, per rank, exactly. Swept over
    // HPC_FAULT_SEED by the ci.sh chaos pass.
    let seed = std::env::var("HPC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let _g = obs_lock();
    obs::reset();
    obs::set_enabled(true);
    let p = 4;
    let cfg = UniverseConfig {
        stall_timeout: Some(std::time::Duration::from_secs(10)),
        fault: FaultPlan::messages(seed, 0.0, 0.0, 0.0, 0.25),
        delivery: Delivery::Reliable,
        ..Default::default()
    }
    .with_zerocopy_threshold(1)
    .with_region_integrity(true);
    let report = Universe::run_report(cfg, p, |comm| {
        // A zero-copy ring: every payload rides the region arm (threshold
        // 1), so each Corrupt decision lands on a region and is skipped.
        let rank = comm.rank();
        let size = comm.size();
        let mut acc = 0.0;
        for round in 0..24u64 {
            let v = vec![rank as f64 + round as f64 + 0.5; 64];
            let sreq = comm
                .isend_zc((rank + 1) % size, 40 + round as u32, v)
                .unwrap();
            let (got, _) = comm
                .recv_zc::<Vec<f64>>(
                    hpc_framework::comm::Src::Rank((rank + size - 1) % size),
                    40 + round as u32,
                )
                .unwrap();
            comm.wait(sreq).unwrap();
            acc += got[0];
        }
        acc
    });
    obs::set_enabled(false);

    let g = obs::global();
    let (mut skipped, mut checked) = (0u64, 0u64);
    for (rank, s) in report.stats.iter().enumerate() {
        let r = rank.to_string();
        let val = |name: &str| {
            g.counter_value(&obs::registry::key(name, &[("rank", &r)]))
                .unwrap_or(0)
        };
        assert_eq!(
            val("comm.corrupt_skipped_region"),
            s.corrupt_skipped_region,
            "rank {rank}"
        );
        assert_eq!(
            val("comm.region_integrity_checked"),
            s.region_integrity_checked,
            "rank {rank}"
        );
        skipped += s.corrupt_skipped_region;
        checked += s.region_integrity_checked;
    }
    assert!(
        skipped > 0,
        "corrupt_p 0.25 over region payloads skipped nothing (seed {seed})"
    );
    assert!(checked > 0, "no typed receive verified a region digest");
    // Ledger identity: the registry's cross-rank sums agree too.
    assert_eq!(g.counter_sum("comm.corrupt_skipped_region"), skipped);
    assert_eq!(g.counter_sum("comm.region_integrity_checked"), checked);
}

#[test]
fn fusion_counters_reconcile_exactly_with_program_stats() {
    let _g = obs_lock();
    obs::reset();
    obs::set_enabled(true);
    let ctx = OdinContext::with_workers(3);
    let x = ctx.arange_f64(0.0, 1.0, 48, hpc_framework::odin::Dist::Block);
    let c = ctx.arange_f64(0.5, 0.25, 48, hpc_framework::odin::Dist::Cyclic);
    let mut p = ctx.trace();
    let (xl, cl) = (p.leaf(&x), p.leaf(&c));
    // Repeated fragment (CSE), a dead store (DSE), the cyclic operand
    // used by two statements (merged redistribute), and a fused tail.
    let shared = xl.clone() * cl.clone();
    let a = p.assign(shared.clone() + 1.0);
    let _dead = p.assign(xl.clone() * 9.0);
    let b = p.assign(shared * 2.0 + cl);
    let _s = p.sum(hpc_framework::odin::PExpr::from(a) + hpc_framework::odin::PExpr::from(b));
    let mut run = p.run(&[a, b]);
    let (_aa, _bb) = (run.array(a), run.array(b));
    let st = run.stats();
    obs::set_enabled(false);

    assert!(st.cse_hits >= 1, "{st:?}");
    assert_eq!(st.dse_eliminated, 1, "{st:?}");
    assert!(st.redistributes_merged >= 1, "{st:?}");
    assert!(st.launches_saved >= 1, "{st:?}");
    // Exact one-for-one mirror: each ProgramStats field equals its
    // registry counter (one run() happened since reset, so no sums).
    let g = obs::global();
    for (key, want) in [
        ("fusion.cse_hits", st.cse_hits),
        ("fusion.dse_eliminated", st.dse_eliminated),
        ("fusion.redistributes_merged", st.redistributes_merged),
        ("fusion.launches_saved", st.launches_saved),
    ] {
        assert_eq!(g.counter_value(key), Some(want), "{key}");
    }
}
