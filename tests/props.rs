//! Property-style tests over the workspace invariants.
//!
//! Formerly proptest-based; now driven by the in-tree deterministic
//! [`obs::SplitMix64`] generator so the default workspace builds and
//! tests fully offline with zero external dependencies. Every case is
//! seeded, so failures reproduce exactly.

use obs::SplitMix64;

use hpc_framework::comm::{decode_from_slice, encode_to_vec};
use hpc_framework::dmap::DistMap;
use hpc_framework::odin::{Dist, OdinContext, PExpr, SliceSpec};
use hpc_framework::seamless;

// ---- wire codec -------------------------------------------------------------

/// A stream of "interesting" f64s: normals, subnormals, infinities, NaN.
fn arb_f64(rng: &mut SplitMix64) -> f64 {
    match rng.gen_index(8) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => f64::from_bits(rng.next_u64() & 0xf_ffff_ffff_ffff), // subnormal
        _ => f64::from_bits(rng.next_u64()),
    }
}

#[test]
fn wire_roundtrip_f64_vec() {
    let mut rng = SplitMix64::new(0xc0dec);
    for case in 0..64 {
        let n = rng.gen_index(200 + 1);
        let v: Vec<f64> = (0..n).map(|_| arb_f64(&mut rng)).collect();
        let bytes = encode_to_vec(&v);
        let back: Vec<f64> = decode_from_slice(&bytes).unwrap();
        assert_eq!(v.len(), back.len(), "case {case}");
        for (a, b) in v.iter().zip(&back) {
            assert!(a.to_bits() == b.to_bits(), "case {case}: {a} vs {b}");
        }
    }
}

#[test]
fn wire_roundtrip_nested() {
    let mut rng = SplitMix64::new(0x2e57ed);
    for case in 0..64 {
        let slen = rng.gen_index(41);
        let s: String = (0..slen)
            .map(|_| char::from_u32(32 + rng.gen_index(95) as u32).unwrap())
            .collect();
        let npairs = rng.gen_index(50);
        let pairs: Vec<(i64, bool)> = (0..npairs)
            .map(|_| (rng.next_u64() as i64, rng.gen_bool(0.5)))
            .collect();
        let opt = if rng.gen_bool(0.5) {
            Some(rng.next_u64() as u32)
        } else {
            None
        };
        let value = (s.clone(), pairs.clone(), opt);
        let bytes = encode_to_vec(&value);
        let back: (String, Vec<(i64, bool)>, Option<u32>) = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, value, "case {case}");
    }
}

#[test]
fn wire_rejects_truncation() {
    let mut rng = SplitMix64::new(0x7239c);
    for _ in 0..32 {
        let n = 1 + rng.gen_index(19);
        let v: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let bytes = encode_to_vec(&v);
        // any strict prefix must fail to decode
        let cut = bytes.len() - 1;
        assert!(decode_from_slice::<Vec<u64>>(&bytes[..cut]).is_err());
    }
}

// ---- distribution maps -------------------------------------------------------

/// Deterministic sweep over (n, p, kind, block size) map configurations.
fn map_cases() -> Vec<(usize, usize, u8, usize)> {
    let mut rng = SplitMix64::new(0xd15f);
    let mut cases = Vec::new();
    // exhaustive small corner: every kind at tiny sizes
    for n in [0usize, 1, 2, 7] {
        for p in [1usize, 2, 3] {
            for kind in 0u8..3 {
                cases.push((n, p, kind, 2));
            }
        }
    }
    // randomized bulk
    for _ in 0..48 {
        cases.push((
            rng.gen_index(200),
            1 + rng.gen_index(8),
            rng.gen_index(3) as u8,
            1 + rng.gen_index(6),
        ));
    }
    cases
}

fn make_map(kind: u8, n: usize, b: usize, p: usize, r: usize) -> DistMap {
    match kind {
        0 => DistMap::block(n, p, r),
        1 => DistMap::cyclic(n, p, r),
        _ => DistMap::block_cyclic(n, b, p, r),
    }
}

#[test]
fn maps_partition_exactly() {
    for (n, p, kind, b) in map_cases() {
        let mut seen = vec![false; n];
        let mut total = 0;
        for r in 0..p {
            let m = make_map(kind, n, b, p, r);
            total += m.my_count();
            for l in 0..m.my_count() {
                let g = m.local_to_global(l);
                assert!(!seen[g], "gid {g} owned twice (n={n} p={p} kind={kind})");
                seen[g] = true;
                // bijection + owner agreement
                assert_eq!(m.global_to_local(g), Some(l));
                assert_eq!(m.owner_of(g), Some(r));
            }
        }
        assert_eq!(total, n);
        assert!(seen.iter().all(|&x| x));
    }
}

#[test]
fn owner_lookup_consistent_across_ranks() {
    for (n, p, kind, b) in map_cases() {
        if n == 0 {
            continue;
        }
        // every rank computes the same owner for every gid
        let owners: Vec<usize> = (0..n)
            .map(|g| make_map(kind, n, b, p, 0).owner_of(g).unwrap())
            .collect();
        for r in 1..p {
            let m = make_map(kind, n, b, p, r);
            for (g, &o) in owners.iter().enumerate() {
                assert_eq!(m.owner_of(g), Some(o));
            }
        }
    }
}

// ---- ODIN vs serial NumPy-style reference ------------------------------------

fn arb_dist(rng: &mut SplitMix64) -> Dist {
    match rng.gen_index(3) {
        0 => Dist::Block,
        1 => Dist::Cyclic,
        _ => Dist::BlockCyclic(1 + rng.gen_index(4)),
    }
}

#[test]
fn odin_binary_ufunc_matches_serial() {
    let mut rng = SplitMix64::new(0x0d11);
    for _ in 0..12 {
        let n = 1 + rng.gen_index(59);
        let workers = 1 + rng.gen_index(4);
        let (da, db) = (arb_dist(&mut rng), arb_dist(&mut rng));
        let seed = rng.gen_index(1000) as u64;
        let ctx = OdinContext::with_workers(workers);
        let x = ctx.random_dist(&[n], seed, da);
        let y = ctx.random_dist(&[n], seed + 1, db);
        let got = (&x + &y).to_vec();
        let xs = x.to_vec();
        let ys = y.to_vec();
        for i in 0..n {
            assert_eq!(got[i], xs[i] + ys[i]);
        }
    }
}

#[test]
fn odin_slicing_matches_serial() {
    let mut rng = SplitMix64::new(0x511ce);
    for _ in 0..12 {
        let n = 1 + rng.gen_index(79);
        let workers = 1 + rng.gen_index(4);
        let d = arb_dist(&mut rng);
        let start = rng.gen_index(20).min(n);
        let stop = (start + rng.gen_index(60)).min(n);
        let step = 1 + rng.gen_index(4);
        let ctx = OdinContext::with_workers(workers);
        let x = ctx.random_dist(&[n], 42, d);
        let xs = x.to_vec();
        let s = x.slice(&[SliceSpec::new(start, stop, step)]);
        let got = s.to_vec();
        let expect: Vec<f64> = (start..stop).step_by(step).map(|i| xs[i]).collect();
        assert_eq!(got, expect);
    }
}

#[test]
fn odin_sum_matches_serial_tolerance() {
    let mut rng = SplitMix64::new(0x50b);
    for _ in 0..12 {
        let n = 1 + rng.gen_index(99);
        let workers = 1 + rng.gen_index(4);
        let ctx = OdinContext::with_workers(workers);
        let x = ctx.random(&[n], 7);
        let serial: f64 = x.to_vec().iter().sum();
        let dist = x.sum();
        assert!((serial - dist).abs() <= 1e-12 * n as f64);
    }
}

#[test]
fn odin_cumsum_matches_serial() {
    let mut rng = SplitMix64::new(0xc5);
    for _ in 0..12 {
        let n = 1 + rng.gen_index(79);
        let workers = 1 + rng.gen_index(4);
        let d = arb_dist(&mut rng);
        let ctx = OdinContext::with_workers(workers);
        let x = ctx.random_dist(&[n], 5, d);
        let xs = x.to_vec();
        let got = x.cumsum().to_vec();
        let mut acc = 0.0;
        for i in 0..n {
            acc += xs[i];
            assert!((got[i] - acc).abs() < 1e-9 * (i + 1) as f64);
        }
    }
}

#[test]
fn odin_argmax_matches_serial() {
    let mut rng = SplitMix64::new(0xa27);
    for _ in 0..12 {
        let n = 1 + rng.gen_index(59);
        let workers = 1 + rng.gen_index(4);
        let d = arb_dist(&mut rng);
        let seed = rng.gen_index(500) as u64;
        let ctx = OdinContext::with_workers(workers);
        let x = ctx.random_dist(&[n], seed, d);
        let xs = x.to_vec();
        let serial = xs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(x.argmax(), serial);
    }
}

#[test]
fn odin_concat_matches_serial() {
    let mut rng = SplitMix64::new(0xc047);
    for _ in 0..12 {
        let n1 = rng.gen_index(30);
        let n2 = rng.gen_index(30);
        if n1 + n2 == 0 {
            continue;
        }
        let workers = 1 + rng.gen_index(3);
        let (d1, d2) = (arb_dist(&mut rng), arb_dist(&mut rng));
        let ctx = OdinContext::with_workers(workers);
        let a = ctx.random_dist(&[n1], 1, d1);
        let b = ctx.random_dist(&[n2], 2, d2);
        let mut expect = a.to_vec();
        expect.extend(b.to_vec());
        assert_eq!(a.concat(&b).to_vec(), expect);
    }
}

#[test]
fn odin_redistribute_preserves_content() {
    let mut rng = SplitMix64::new(0x2ed1);
    for _ in 0..12 {
        let n = rng.gen_index(60);
        let workers = 1 + rng.gen_index(4);
        let (d1, d2) = (arb_dist(&mut rng), arb_dist(&mut rng));
        let ctx = OdinContext::with_workers(workers);
        let x = ctx.random_dist(&[n], 3, d1);
        let orig = x.to_vec();
        let y = x.redistribute(d2);
        assert_eq!(y.to_vec(), orig);
    }
}

// ---- nonblocking overlap: bitwise-identical to the blocking reference --------

use hpc_framework::comm::Universe;
use hpc_framework::dlinalg::{CsrMatrix, DistVector};

/// Random sparse square-matrix row: a dominant diagonal plus a few
/// off-diagonal entries anywhere in the domain (so rows land on both
/// sides of the interior/boundary split).
fn arb_row(rng: &mut SplitMix64, g: usize, n: usize) -> Vec<(usize, f64)> {
    let mut row = vec![(g, 4.0 + rng.gen_range_f64(0.0, 2.0))];
    for _ in 0..rng.gen_index(4) {
        row.push((rng.gen_index(n), rng.gen_range_f64(-1.0, 1.0)));
    }
    row.sort_unstable_by_key(|e| e.0);
    row.dedup_by_key(|e| e.0);
    row
}

#[test]
fn overlapped_spmv_bitwise_matches_blocking() {
    let mut rng = SplitMix64::new(0x5b3a);
    for case in 0..8 {
        let p = 1 + rng.gen_index(4);
        let n = 8 + rng.gen_index(40);
        let rows_seed = rng.next_u64();
        let x_seed = rng.next_u64();
        Universe::run(p, move |comm| {
            let map = DistMap::block(n, comm.size(), comm.rank());
            let a = CsrMatrix::from_row_fn(comm, map.clone(), map.clone(), |g| {
                let mut r = SplitMix64::new(rows_seed ^ (g as u64).wrapping_mul(0x9e3779b9));
                arb_row(&mut r, g, n)
            });
            let x = DistVector::from_fn(map.clone(), |g| {
                let mut r = SplitMix64::new(x_seed ^ g as u64);
                r.gen_range_f64(-10.0, 10.0)
            });
            let y_over = a.matvec(comm, &x);
            let y_block = a.matvec_blocking(comm, &x);
            for (o, b) in y_over.local().iter().zip(y_block.local()) {
                assert_eq!(o.to_bits(), b.to_bits(), "case {case}: {o} vs {b}");
            }
        });
    }
}

#[test]
fn interior_boundary_partition_invariant() {
    let mut rng = SplitMix64::new(0x1b2c);
    for _ in 0..8 {
        let p = 1 + rng.gen_index(4);
        let n = 8 + rng.gen_index(40);
        let rows_seed = rng.next_u64();
        Universe::run(p, move |comm| {
            let me = comm.rank();
            let map = DistMap::block(n, comm.size(), me);
            let a = CsrMatrix::from_row_fn(comm, map.clone(), map.clone(), |g| {
                let mut r = SplitMix64::new(rows_seed ^ (g as u64).wrapping_mul(0x9e3779b9));
                arb_row(&mut r, g, n)
            });
            // interior ∪ boundary is a permutation of the local rows
            let rows_local = a.row_map().my_count();
            let mut seen = vec![false; rows_local];
            for &i in a.interior_rows().iter().chain(a.boundary_rows()) {
                assert!(!seen[i], "row {i} listed twice");
                seen[i] = true;
            }
            assert!(seen.iter().all(|&s| s), "some row unlisted");
            // interior rows reference only locally-owned columns; boundary
            // rows reference at least one ghost column
            for &i in a.interior_rows() {
                assert!(a
                    .row_entries(i)
                    .all(|(g, _)| a.domain_map().owner_of(g) == Some(me)));
            }
            for &i in a.boundary_rows() {
                assert!(a
                    .row_entries(i)
                    .any(|(g, _)| a.domain_map().owner_of(g) != Some(me)));
            }
        });
    }
}

#[test]
fn halo_exchange_matches_neighbor_values_bitwise() {
    let mut rng = SplitMix64::new(0x4a10);
    for _ in 0..8 {
        let workers = 1 + rng.gen_index(4);
        // a multiple of `workers` so every block segment is non-empty
        let n = workers * (1 + rng.gen_index(8));
        let seed = rng.next_u64();
        let ctx = OdinContext::with_workers(workers);
        let x = ctx.random(&[n], seed);
        let xs = x.to_vec();
        ctx.run_spmd(&[&x], move |scope, args| {
            let (left, right) = scope.exchange_boundary_1d(args[0]);
            let map = scope.axis_map(args[0]);
            let lo = map.local_to_global(0);
            let hi = map.local_to_global(map.my_count() - 1);
            match left {
                Some(v) => assert_eq!(v.to_bits(), xs[lo - 1].to_bits()),
                None => assert_eq!(lo, 0),
            }
            match right {
                Some(v) => assert_eq!(v.to_bits(), xs[hi + 1].to_bits()),
                None => assert_eq!(hi, xs.len() - 1),
            }
        });
    }
}

#[test]
fn pipelined_dispatch_bitwise_matches_drained() {
    let mut rng = SplitMix64::new(0xf10e);
    for case in 0..6 {
        let workers = 1 + rng.gen_index(4);
        let k = 2 + rng.gen_index(6);
        let ctx = OdinContext::with_workers(workers);
        let arrays: Vec<_> = (0..k)
            .map(|i| {
                let d = arb_dist(&mut rng);
                ctx.random_dist(&[1 + rng.gen_index(99)], 100 + i as u64, d)
            })
            .collect();
        let drained: Vec<f64> = arrays.iter().map(|a| a.sum()).collect();
        // re-issue the same reductions as a pipelined stream and claim the
        // replies in reverse order to exercise the engine's buffering
        let mut pending: Vec<_> = arrays.iter().map(|a| a.sum_async()).collect();
        let mut piped = Vec::with_capacity(k);
        while let Some(p) = pending.pop() {
            piped.push(p.wait());
        }
        piped.reverse();
        for (i, (d, p)) in drained.iter().zip(&piped).enumerate() {
            assert_eq!(d.to_bits(), p.to_bits(), "case {case}, array {i}");
        }
        assert_eq!(ctx.outstanding_replies(), 0);
    }
}

// ---- chaos: reliable delivery heals seeded faults, bitwise -------------------

use std::time::Duration;

use hpc_framework::comm::{Delivery, FaultPlan, ReduceOp, UniverseConfig};
use hpc_framework::solvers::{cg, IdentityPrecond, KrylovConfig};

/// A chaos universe: seeded faults, reliable delivery, and a stall
/// timeout so a broken retransmit path fails the test instead of
/// hanging it.
fn reliable_chaos(fault: FaultPlan) -> UniverseConfig {
    UniverseConfig {
        stall_timeout: Some(Duration::from_secs(10)),
        fault,
        delivery: Delivery::Reliable,
        ..Default::default()
    }
}

/// One CG solve on a seeded nonsymmetric-free SPD tridiagonal system,
/// returning per-rank `(x local segment, residual history)`.
#[allow(clippy::type_complexity)]
fn cg_case(
    cfg: UniverseConfig,
    p: usize,
    n: usize,
) -> (
    Vec<(Vec<f64>, Vec<f64>)>,
    Vec<hpc_framework::comm::CommStats>,
) {
    let report = Universe::run_report(cfg, p, move |comm| {
        let map = DistMap::block(n, comm.size(), comm.rank());
        let a = CsrMatrix::from_row_fn(comm, map.clone(), map.clone(), |g| {
            let mut row = Vec::new();
            if g > 0 {
                row.push((g - 1, -1.0));
            }
            row.push((g, 3.0 + (g % 5) as f64));
            if g + 1 < n {
                row.push((g + 1, -1.0));
            }
            row
        });
        let b = DistVector::from_fn(map.clone(), |g| ((g as f64) * 0.7).sin());
        let mut x = DistVector::zeros(map);
        let st = cg(
            comm,
            &a,
            &b,
            &mut x,
            &IdentityPrecond,
            &KrylovConfig::default(),
        );
        assert!(st.converged, "chaos CG must still converge");
        (x.local().to_vec(), st.history)
    });
    (report.results, report.stats)
}

#[test]
fn cg_over_reliable_delivery_is_bitwise_immune_to_message_faults() {
    let mut rng = SplitMix64::new(0xc4a05);
    for case in 0..4 {
        let p = 2 + rng.gen_index(3); // 2..=4 ranks
        let n = 24 + rng.gen_index(25);
        let plan = FaultPlan::messages(
            rng.next_u64(),
            0.02 + rng.gen_range_f64(0.0, 0.08), // drop
            rng.gen_range_f64(0.0, 0.05),        // duplicate
            rng.gen_range_f64(0.0, 0.05),        // delay
            rng.gen_range_f64(0.0, 0.04),        // corrupt
        );
        let (clean, _) = cg_case(UniverseConfig::default(), p, n);
        let (chaos, stats) = cg_case(reliable_chaos(plan), p, n);
        for (rank, (c, f)) in clean.iter().zip(chaos.iter()).enumerate() {
            assert_eq!(c.0, f.0, "case {case} rank {rank}: iterate x diverged");
            assert_eq!(c.1, f.1, "case {case} rank {rank}: history diverged");
        }
        // Accounting: every lost transmission (dropped, or discarded as
        // corrupt) the algorithm was waiting on was healed by at least
        // one retransmission. (Duplicate suppression has no such exact
        // end-of-run identity: a duplicate copy still in a mailbox when
        // its rank exits is never intaken, hence never counted.)
        let lost: u64 = stats
            .iter()
            .map(|s| s.faults_dropped + s.corrupt_detected)
            .sum();
        let retx: u64 = stats.iter().map(|s| s.retransmits).sum();
        assert!(lost > 0, "case {case}: plan {plan:?} injected no losses");
        assert!(
            retx >= lost,
            "case {case}: {retx} retransmits for {lost} losses"
        );
    }
}

#[test]
fn retransmits_are_zero_without_faults() {
    // The "iff" half: a fault-free reliable run never retransmits, so a
    // nonzero retransmit counter always means the fault plane fired.
    // (Kept communication-dense and tiny: retransmission is wall-clock
    // RTO-driven, so the test must finish well inside one 5 ms RTO.)
    let report = Universe::run_report(reliable_chaos(FaultPlan::none()), 3, |comm| {
        comm.barrier();
        let s = comm.allreduce(&(comm.rank() as u64 + 1), ReduceOp::sum());
        comm.barrier();
        s
    });
    assert_eq!(report.results, vec![6, 6, 6]);
    for (rank, s) in report.stats.iter().enumerate() {
        assert_eq!(s.retransmits, 0, "rank {rank}");
        assert_eq!(s.faults_dropped, 0, "rank {rank}");
        assert_eq!(s.corrupt_detected, 0, "rank {rank}");
        assert_eq!(s.dup_suppressed, 0, "rank {rank}");
    }
}

#[test]
fn collectives_survive_seeded_faults_on_reliable_delivery() {
    let mut rng = SplitMix64::new(0xc011ec);
    for case in 0..6 {
        let p = 2 + rng.gen_index(7); // 2..=8 ranks
        let plan = FaultPlan::messages(
            rng.next_u64(),
            0.05 + rng.gen_range_f64(0.0, 0.1),
            rng.gen_range_f64(0.0, 0.08),
            rng.gen_range_f64(0.0, 0.08),
            rng.gen_range_f64(0.0, 0.05),
        );
        let report = Universe::run_report(reliable_chaos(plan), p, |comm| {
            comm.barrier();
            let sum = comm.allreduce(&(comm.rank() as u64 + 1), ReduceOp::sum());
            let gathered = comm.gather(0, &(comm.rank() as u64));
            (sum, gathered)
        });
        let expect_sum = (p as u64) * (p as u64 + 1) / 2;
        for (rank, (sum, gathered)) in report.results.iter().enumerate() {
            assert_eq!(*sum, expect_sum, "case {case} rank {rank}");
            if rank == 0 {
                let want: Vec<u64> = (0..p as u64).collect();
                assert_eq!(gathered.as_deref(), Some(&want[..]), "case {case}");
            }
        }
    }
}

// ---- autotuned collectives: bitwise-identical to every fixed algorithm -------

use hpc_framework::comm::CollectiveAlgo;

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn auto_collectives_bitwise_match_every_fixed_algorithm() {
    const ALGOS: [CollectiveAlgo; 4] = [
        CollectiveAlgo::Auto,
        CollectiveAlgo::Linear,
        CollectiveAlgo::Tree,
        CollectiveAlgo::RecursiveDoubling,
    ];
    for p in 2..=8 {
        // payload sizes chosen to land in different autotuner regimes:
        // latency-bound, crossover, and bandwidth-bound
        for len in [1usize, 64, 2048] {
            let runs: Vec<_> = ALGOS
                .iter()
                .map(|&algo| {
                    let cfg = UniverseConfig {
                        algo,
                        ..Default::default()
                    };
                    let report = Universe::run_report(cfg, p, move |comm| {
                        // integer-valued payloads: every reduction order
                        // sums them exactly, so any cross-algorithm
                        // difference is a routing bug, not FP reassociation
                        let mut r =
                            SplitMix64::new(0xb17 ^ ((comm.rank() as u64) << 8) ^ len as u64);
                        let v: Vec<f64> = (0..len)
                            .map(|_| r.gen_index(2001) as f64 - 1000.0)
                            .collect();
                        let elem_sum = |a: &Vec<f64>, b: &Vec<f64>| -> Vec<f64> {
                            a.iter().zip(b).map(|(x, y)| x + y).collect()
                        };
                        let vsum = comm.allreduce(&v, elem_sum);
                        let reduced = comm.reduce(0, &v, elem_sum);
                        let from_root = comm.bcast(0, (comm.rank() == 0).then(|| v.clone()));
                        let everyone = comm.allgather(&v);
                        (
                            bits(&vsum),
                            reduced.as_deref().map(bits),
                            bits(&from_root),
                            everyone.iter().map(|w| bits(w)).collect::<Vec<_>>(),
                        )
                    });
                    report.results
                })
                .collect();
            for (i, fixed) in runs.iter().enumerate().skip(1) {
                assert_eq!(
                    &runs[0], fixed,
                    "p={p} len={len}: Auto diverged from {:?}",
                    ALGOS[i]
                );
            }
        }
    }
}

// ---- plan cache: warmed plans are bitwise-identical to cold ones -------------

use hpc_framework::dlinalg::CsrMatrix as Csr;
use hpc_framework::dmap::{clear_plan_cache, plan_cache_len};

/// Build the same matrix twice on every rank — the second build takes
/// its gather plan from the warm cache — run SpMV and CG with both, and
/// demand bit-for-bit agreement. Returns the cold per-rank
/// `(x local segment, residual history)` plus comm stats.
#[allow(clippy::type_complexity)]
fn cached_cg_case(
    cfg: UniverseConfig,
    p: usize,
    n: usize,
) -> (
    Vec<(Vec<f64>, Vec<f64>)>,
    Vec<hpc_framework::comm::CommStats>,
) {
    let report = Universe::run_report(cfg, p, move |comm| {
        clear_plan_cache();
        let row = move |g: usize| {
            let mut row = Vec::new();
            if g > 0 {
                row.push((g - 1, -1.0));
            }
            row.push((g, 3.0 + (g % 7) as f64));
            if g + 1 < n {
                row.push((g + 1, -1.0));
            }
            row
        };
        let map = DistMap::block(n, comm.size(), comm.rank());
        let a_cold = Csr::from_row_fn(comm, map.clone(), map.clone(), row);
        let cached = plan_cache_len();
        let a_warm = Csr::from_row_fn(comm, map.clone(), map.clone(), row);
        assert_eq!(
            plan_cache_len(),
            cached,
            "warm build must not grow the cache"
        );

        let xs = DistVector::from_fn(map.clone(), |g| ((g as f64) * 1.3).cos());
        let y_cold = a_cold.matvec(comm, &xs);
        let y_warm = a_warm.matvec(comm, &xs);
        assert_eq!(
            bits(y_cold.local()),
            bits(y_warm.local()),
            "warm SpMV diverged from cold"
        );

        let b = DistVector::from_fn(map.clone(), |g| ((g as f64) * 0.7).sin());
        let solve = |a: &Csr<f64>| {
            let mut x = DistVector::zeros(map.clone());
            let st = cg(
                comm,
                a,
                &b,
                &mut x,
                &IdentityPrecond,
                &KrylovConfig::default(),
            );
            assert!(st.converged, "cached-plan CG must converge");
            (x.local().to_vec(), st.history)
        };
        let cold = solve(&a_cold);
        let warm = solve(&a_warm);
        assert_eq!(bits(&cold.0), bits(&warm.0), "warm CG iterate diverged");
        assert_eq!(bits(&cold.1), bits(&warm.1), "warm CG history diverged");
        cold
    });
    (report.results, report.stats)
}

#[test]
fn cached_plan_cg_is_bitwise_identical_cold_vs_warm_and_under_faults() {
    // Honors the ci.sh chaos sweep: a nonzero HPC_FAULT_SEED replays a
    // distinct drop/dup/delay/corrupt schedule under the cached plans.
    let seed = std::env::var("HPC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xcac4e_u64);
    let mut rng = SplitMix64::new(seed);
    for case in 0..3 {
        let p = 2 + rng.gen_index(3); // 2..=4 ranks
        let n = 24 + rng.gen_index(25);
        let (clean, clean_stats) = cached_cg_case(UniverseConfig::default(), p, n);
        let plan = FaultPlan::messages(
            rng.next_u64(),
            0.02 + rng.gen_range_f64(0.0, 0.06),
            rng.gen_range_f64(0.0, 0.04),
            rng.gen_range_f64(0.0, 0.04),
            rng.gen_range_f64(0.0, 0.03),
        );
        let (chaos, chaos_stats) = cached_cg_case(reliable_chaos(plan), p, n);
        for (rank, (c, f)) in clean.iter().zip(&chaos).enumerate() {
            assert_eq!(
                bits(&c.0),
                bits(&f.0),
                "case {case} rank {rank}: x diverged"
            );
            assert_eq!(
                bits(&c.1),
                bits(&f.1),
                "case {case} rank {rank}: history diverged"
            );
        }
        // the plan cache must actually have been exercised in both runs
        for stats in [&clean_stats, &chaos_stats] {
            let hits: u64 = stats.iter().map(|s| s.plan_hits).sum();
            let misses: u64 = stats.iter().map(|s| s.plan_misses).sum();
            assert!(misses > 0, "case {case}: no plan-cache misses recorded");
            assert!(hits > 0, "case {case}: no plan-cache hits recorded");
        }
    }
}

// ---- zero-copy datapath: bitwise parity with the encode path -----------------

/// One representative run over the heavy movers: a CG solve (halo
/// exchange inside every matvec), a block→cyclic redistribution, and an
/// explicit halo gather. Returns per-rank `(x, history, redist, halo)`.
#[allow(clippy::type_complexity)]
fn zc_parity_case(
    cfg: UniverseConfig,
    p: usize,
    n: usize,
) -> (
    Vec<(Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>)>,
    Vec<hpc_framework::comm::CommStats>,
) {
    use hpc_framework::dmap::{CommPlan, Directory};
    let report = Universe::run_report(cfg, p, move |comm| {
        clear_plan_cache();
        let row = move |g: usize| {
            let mut row = Vec::new();
            if g > 0 {
                row.push((g - 1, -1.0));
            }
            row.push((g, 3.0 + (g % 5) as f64));
            if g + 1 < n {
                row.push((g + 1, -1.0));
            }
            row
        };
        let map = DistMap::block(n, comm.size(), comm.rank());
        let a = Csr::from_row_fn(comm, map.clone(), map.clone(), row);
        let b = DistVector::from_fn(map.clone(), |g| ((g as f64) * 0.9).sin());
        let mut x = DistVector::zeros(map.clone());
        let st = cg(
            comm,
            &a,
            &b,
            &mut x,
            &IdentityPrecond,
            &KrylovConfig::default(),
        );
        assert!(st.converged, "parity CG must converge");

        // block → cyclic redistribution
        let dst = DistMap::cyclic(n, comm.size(), comm.rank());
        let dir = Directory::build(comm, &map);
        let plan = CommPlan::import(comm, &map, &dst, &dir);
        let src_data: Vec<f64> = map.my_gids().iter().map(|&g| (g as f64) * 1.25).collect();
        let redist = plan.execute_to_vec(comm, &src_data);

        // explicit halo gather through the matrix's exchange plan
        let halo = a.halo_gather(comm, x.local(), 0.0);

        (x.local().to_vec(), st.history, redist, halo)
    });
    (report.results, report.stats)
}

/// The zero-copy region arm must be bitwise indistinguishable from the
/// encode arm for CG, redistribution, and halo exchange — clean runs and
/// a seeded chaos sweep alike (honors `HPC_FAULT_SEED`).
#[test]
fn zerocopy_and_encode_paths_are_bitwise_identical() {
    let seed = std::env::var("HPC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x2e9c0_u64);
    let mut rng = SplitMix64::new(seed);
    for case in 0..3 {
        let p = 2 + rng.gen_index(3); // 2..=4 ranks
        let n = 24 + rng.gen_index(25);
        let fault = FaultPlan::messages(
            rng.next_u64(),
            0.02 + rng.gen_range_f64(0.0, 0.05),
            rng.gen_range_f64(0.0, 0.04),
            rng.gen_range_f64(0.0, 0.04),
            rng.gen_range_f64(0.0, 0.03),
        );
        for chaos in [false, true] {
            let base = if chaos {
                reliable_chaos(fault)
            } else {
                UniverseConfig::default()
            };
            // threshold 1: every payload is a region; usize::MAX: every
            // payload takes the classic encode path
            let (zc, zc_stats) = zc_parity_case(base.with_zerocopy_threshold(1), p, n);
            let (enc, enc_stats) = zc_parity_case(base.with_zerocopy_threshold(usize::MAX), p, n);
            for (rank, (z, e)) in zc.iter().zip(&enc).enumerate() {
                let tag = format!("case {case} chaos {chaos} rank {rank}");
                assert_eq!(bits(&z.0), bits(&e.0), "{tag}: x diverged");
                assert_eq!(bits(&z.1), bits(&e.1), "{tag}: history diverged");
                assert_eq!(bits(&z.2), bits(&e.2), "{tag}: redistribute diverged");
                assert_eq!(bits(&z.3), bits(&e.3), "{tag}: halo diverged");
            }
            // the two runs must actually have taken different arms
            let zc_msgs: u64 = zc_stats.iter().map(|s| s.zerocopy_msgs).sum();
            let enc_msgs: u64 = enc_stats.iter().map(|s| s.zerocopy_msgs).sum();
            assert!(zc_msgs > 0, "case {case} chaos {chaos}: region arm unused");
            assert_eq!(
                enc_msgs, 0,
                "case {case} chaos {chaos}: encode run sent regions"
            );
            // Fault-free, modeled cluster time must not depend on the
            // arm. (Under chaos the timelines may differ by design:
            // corruption triggers a retransmit on the wire path but is
            // skipped-and-counted on the region path.)
            if !chaos {
                let zc_clock: Vec<u64> = zc_stats
                    .iter()
                    .map(|s| s.modeled_comm_s.to_bits())
                    .collect();
                let enc_clock: Vec<u64> = enc_stats
                    .iter()
                    .map(|s| s.modeled_comm_s.to_bits())
                    .collect();
                assert_eq!(
                    zc_clock, enc_clock,
                    "case {case}: modeled time diverged across arms"
                );
            }
        }
    }
}

/// ODIN end-to-end parity: the finite-difference example (slice segment
/// exchange) plus a whole-array fetch (master-bound segment gather) must
/// produce identical results whichever arm the payloads take.
#[test]
fn odin_slicing_and_fetch_are_identical_across_payload_arms() {
    use hpc_framework::odin::OdinConfig;
    let run = |threshold: usize| {
        let ctx = OdinContext::new(
            OdinConfig::default()
                .with_n_workers(3)
                .with_zerocopy_threshold(threshold),
        );
        let n = 257;
        let y = ctx.linspace(0.0, 1.0, n).sin();
        let dy = &y.slice1(1, None, 1) - &y.slice1(0, Some(-1), 1);
        let cyc = dy.redistribute(Dist::Cyclic);
        let (shape, buf) = cyc.fetch();
        assert_eq!(shape, vec![n - 1]);
        (0..buf.len()).map(|i| buf.get_f64(i)).collect::<Vec<f64>>()
    };
    let zc = run(1);
    let enc = run(usize::MAX);
    assert_eq!(bits(&zc), bits(&enc), "ODIN results diverged across arms");
}

// ---- seamless: VM must agree with the interpreter -----------------------------

/// Random arithmetic source over one float parameter, depth-bounded.
fn arb_expr(rng: &mut SplitMix64, depth: usize) -> String {
    if depth == 0 || rng.gen_bool(0.25) {
        return match rng.gen_index(3) {
            0 => "x".to_string(),
            1 => format!("{}.0", rng.gen_index(200) as i64 - 100),
            _ => format!("{}", 1 + rng.gen_index(49)),
        };
    }
    let a = arb_expr(rng, depth - 1);
    match rng.gen_index(8) {
        0 => format!("({a} + {})", arb_expr(rng, depth - 1)),
        1 => format!("({a} - {})", arb_expr(rng, depth - 1)),
        2 => format!("({a} * {})", arb_expr(rng, depth - 1)),
        3 => format!("({a} / {})", arb_expr(rng, depth - 1)),
        4 => format!("(-{a})"),
        5 => format!("sin({a})"),
        6 => format!("cos({a})"),
        _ => format!("sqrt(abs({a}))"),
    }
}

fn close_or_both_weird(a: f64, b: f64) -> bool {
    if a.is_nan() && b.is_nan() {
        return true;
    }
    if a == b {
        return true;
    }
    // constant folding may reassociate nothing, but int/float literal
    // promotion can differ by one rounding
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-9 * scale
}

#[test]
fn vm_matches_interpreter_on_random_expressions() {
    let mut rng = SplitMix64::new(0xe4b12);
    for case in 0..64 {
        let expr = arb_expr(&mut rng, 4);
        let x = rng.gen_range_f64(-10.0, 10.0);
        let src = format!("def f(x):\n    return {expr}\n");
        let interp = seamless::Interpreter::new(&src).unwrap();
        let iv = interp.call("f", vec![seamless::Value::Float(x)]);
        let kernel = seamless::jit(&src, "f", &[seamless::Type::Float]);
        match (iv, kernel) {
            (Ok(out), Ok(k)) => {
                let vv = k.call(vec![seamless::Value::Float(x)]).unwrap();
                let a = out.ret.as_f64().unwrap_or(f64::NAN);
                let b = vv.ret.as_f64().unwrap_or(f64::NAN);
                assert!(
                    close_or_both_weird(a, b),
                    "case {case}: interp {a} vs vm {b} for {expr}"
                );
            }
            // both paths must agree about failure too
            (Err(_), Err(_)) => {}
            (i, k) => {
                // integer-typed programs can fail in one path only when
                // division by a zero *int* occurs; allow mismatched errors
                // only if one side errored at runtime
                assert!(
                    i.is_err() || k.is_err(),
                    "case {case}: one path failed: interp={:?} kernel_ok={}",
                    i.is_ok(),
                    k.is_ok()
                );
            }
        }
    }
}

#[test]
fn vm_matches_interpreter_on_integer_loops() {
    let mut rng = SplitMix64::new(0x100b5);
    for _ in 0..24 {
        let n = rng.gen_index(40) as i64;
        let step = 1 + rng.gen_index(4) as i64;
        let offset = rng.gen_index(10) as i64 - 5;
        let src = format!(
            "def f(n):\n    t = 0\n    for i in range(0, n, {step}):\n        t = t + i + {offset}\n    return t\n"
        );
        let interp = seamless::Interpreter::new(&src).unwrap();
        let iv = interp.call("f", vec![seamless::Value::Int(n)]).unwrap();
        let k = seamless::jit(&src, "f", &[seamless::Type::Int]).unwrap();
        let vv = k.call(vec![seamless::Value::Int(n)]).unwrap();
        assert_eq!(iv.ret, vv.ret);
    }
}

// ---- whole-program traces vs statement-at-a-time (DESIGN §14) ---------------

/// Random expression plan interpretable both as a traced [`PExpr`] and as
/// an eager [`Expr`] tree — the mirror pair the parity property runs on.
enum PlanNode {
    Leaf(usize),
    Ref(usize),
    Unary(u8, Box<PlanNode>),
    Binary(u8, Box<PlanNode>, Box<PlanNode>),
    /// Binary with an f64 literal on the right (the only scalar position
    /// both builders share).
    BinScalar(u8, Box<PlanNode>, f64),
    Pow(Box<PlanNode>, f64),
}

/// Scalars stay F64-flavoured only through binary promotion with the F64
/// leaves, so the whole program stays F64 end-to-end — the regime where
/// fused, unfused, and traced execution are all bitwise-comparable.
fn gen_scalar(rng: &mut SplitMix64) -> f64 {
    match rng.gen_index(5) {
        0 => 2.0,
        1 => 3.0,
        2 => 0.5,
        3 => -1.25,
        _ => 1.0 + rng.gen_index(100) as f64 / 64.0,
    }
}

fn gen_plan(rng: &mut SplitMix64, depth: usize, n_leaves: usize, n_prev: usize) -> PlanNode {
    let terminal = |rng: &mut SplitMix64| {
        if n_prev > 0 && rng.gen_index(2) == 0 {
            PlanNode::Ref(rng.gen_index(n_prev))
        } else {
            PlanNode::Leaf(rng.gen_index(n_leaves))
        }
    };
    if depth == 0 {
        return terminal(rng);
    }
    match rng.gen_index(8) {
        0 | 1 => terminal(rng),
        2 => PlanNode::Unary(
            rng.gen_index(6) as u8,
            Box::new(gen_plan(rng, depth - 1, n_leaves, n_prev)),
        ),
        3..=5 => PlanNode::Binary(
            rng.gen_index(5) as u8,
            Box::new(gen_plan(rng, depth - 1, n_leaves, n_prev)),
            Box::new(gen_plan(rng, depth - 1, n_leaves, n_prev)),
        ),
        6 => PlanNode::BinScalar(
            rng.gen_index(5) as u8,
            Box::new(gen_plan(rng, depth - 1, n_leaves, n_prev)),
            gen_scalar(rng),
        ),
        _ => {
            let e = [2.0, 3.0, 0.5, -2.0, 1.7][rng.gen_index(5)];
            PlanNode::Pow(Box::new(gen_plan(rng, depth - 1, n_leaves, n_prev)), e)
        }
    }
}

fn plan_to_pexpr<'x, 'c>(
    plan: &PlanNode,
    p: &mut hpc_framework::odin::Program<'x, 'c>,
    leaves: &'x [hpc_framework::odin::DistArray<'c>],
    prev: &[hpc_framework::odin::Traced],
) -> PExpr {
    match plan {
        PlanNode::Leaf(i) => p.leaf(&leaves[*i]),
        PlanNode::Ref(j) => PExpr::from(prev[*j]),
        PlanNode::Unary(op, a) => {
            let a = plan_to_pexpr(a, p, leaves, prev);
            match op {
                0 => a.sqrt(),
                1 => a.sin(),
                2 => a.cos(),
                3 => a.exp(),
                4 => a.abs(),
                _ => a.floor(),
            }
        }
        PlanNode::Binary(op, a, b) => {
            let a = plan_to_pexpr(a, p, leaves, prev);
            let b = plan_to_pexpr(b, p, leaves, prev);
            match op {
                0 => a + b,
                1 => a - b,
                2 => a * b,
                3 => a / b,
                _ => a % b,
            }
        }
        PlanNode::BinScalar(op, a, s) => {
            let a = plan_to_pexpr(a, p, leaves, prev);
            match op {
                0 => a + *s,
                1 => a - *s,
                2 => a * *s,
                3 => a / *s,
                _ => a % *s,
            }
        }
        PlanNode::Pow(a, e) => plan_to_pexpr(a, p, leaves, prev).pow(*e),
    }
}

fn plan_to_expr<'x, 'c>(
    plan: &PlanNode,
    leaves: &'x [hpc_framework::odin::DistArray<'c>],
    prev: &'x [hpc_framework::odin::DistArray<'c>],
) -> hpc_framework::odin::Expr<'x, 'c> {
    use hpc_framework::odin::Expr;
    match plan {
        PlanNode::Leaf(i) => Expr::leaf(&leaves[*i]),
        PlanNode::Ref(j) => Expr::leaf(&prev[*j]),
        PlanNode::Unary(op, a) => {
            let a = plan_to_expr(a, leaves, prev);
            match op {
                0 => a.sqrt(),
                1 => a.sin(),
                2 => a.cos(),
                3 => a.exp(),
                4 => a.abs(),
                _ => a.floor(),
            }
        }
        PlanNode::Binary(op, a, b) => {
            let a = plan_to_expr(a, leaves, prev);
            let b = plan_to_expr(b, leaves, prev);
            match op {
                0 => a + b,
                1 => a - b,
                2 => a * b,
                3 => a / b,
                _ => a % b,
            }
        }
        PlanNode::BinScalar(op, a, s) => {
            let a = plan_to_expr(a, leaves, prev);
            match op {
                0 => a + *s,
                1 => a - *s,
                2 => a * *s,
                3 => a / *s,
                _ => a % *s,
            }
        }
        PlanNode::Pow(a, e) => plan_to_expr(a, leaves, prev).pow(*e),
    }
}

#[test]
fn traced_program_bitwise_matches_statement_at_a_time() {
    use hpc_framework::odin::ReduceKind;
    let mut rng = SplitMix64::new(0x7ace);
    for case in 0..10 {
        let workers = 1 + rng.gen_index(4);
        let n = 1 + rng.gen_index(80);
        let n_leaves = 2 + rng.gen_index(2);
        let n_stmts = 3 + rng.gen_index(4);
        let ctx = OdinContext::with_workers(workers);
        let leaves: Vec<_> = (0..n_leaves)
            .map(|i| ctx.random_dist(&[n], 100 + case as u64 * 7 + i as u64, arb_dist(&mut rng)))
            .collect();
        let stmt_plans: Vec<PlanNode> = (0..n_stmts)
            .map(|i| gen_plan(&mut rng, 3, n_leaves, i))
            .collect();
        let kinds = [ReduceKind::Sum, ReduceKind::Max, ReduceKind::Min];
        let reduce_plans: Vec<(PlanNode, ReduceKind)> = (0..1 + rng.gen_index(2))
            .map(|_| {
                (
                    gen_plan(&mut rng, 2, n_leaves, n_stmts),
                    kinds[rng.gen_index(3)],
                )
            })
            .collect();

        // Statement-at-a-time reference: every statement materializes,
        // fused and unfused (their equality is itself an invariant).
        let mut eager: Vec<hpc_framework::odin::DistArray> = Vec::new();
        for plan in &stmt_plans {
            let (fused, unfused) = {
                let e = plan_to_expr(plan, &leaves, &eager);
                (e.eval(), e.eval_unfused())
            };
            assert_eq!(
                bitsv(&fused.to_vec()),
                bitsv(&unfused.to_vec()),
                "case {case}: eval vs eval_unfused drifted"
            );
            eager.push(fused);
        }
        let eager_reds: Vec<f64> = reduce_plans
            .iter()
            .map(|(plan, kind)| plan_to_expr(plan, &leaves, &eager).reduce(*kind))
            .collect();

        // Traced twin.
        let mut p = ctx.trace();
        let mut traced: Vec<hpc_framework::odin::Traced> = Vec::new();
        for plan in &stmt_plans {
            let e = plan_to_pexpr(plan, &mut p, &leaves, &traced);
            traced.push(p.assign(e));
        }
        let traced_reds: Vec<hpc_framework::odin::TracedScalar> = reduce_plans
            .iter()
            .map(|(plan, kind)| {
                let e = plan_to_pexpr(plan, &mut p, &leaves, &traced);
                p.reduce(e, *kind)
            })
            .collect();
        let mut run = p.run(&traced);
        for (i, t) in traced.iter().enumerate() {
            assert_eq!(
                bitsv(&run.array(*t).to_vec()),
                bitsv(&eager[i].to_vec()),
                "case {case} stmt {i}: traced result drifted from Expr::eval"
            );
        }
        for (i, s) in traced_reds.iter().enumerate() {
            assert_eq!(
                run.scalar(*s).to_bits(),
                eager_reds[i].to_bits(),
                "case {case} reduction {i}: traced scalar drifted"
            );
        }
        // The optimizer must never do worse than the baseline it claims.
        let st = run.stats();
        assert!(st.kernel_launches <= st.baseline_launches, "{st:?}");
        assert!(
            st.redistributes_issued <= st.baseline_redistributes,
            "{st:?}"
        );
    }
}

fn bitsv(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}
