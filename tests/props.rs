//! Property-based tests over the workspace invariants (proptest).

use proptest::prelude::*;

use hpc_framework::comm::{decode_from_slice, encode_to_vec};
use hpc_framework::dmap::DistMap;
use hpc_framework::odin::{Dist, OdinContext, SliceSpec};
use hpc_framework::seamless;

// ---- wire codec -------------------------------------------------------------

proptest! {
    #[test]
    fn wire_roundtrip_f64_vec(v in prop::collection::vec(any::<f64>(), 0..200)) {
        let bytes = encode_to_vec(&v);
        let back: Vec<f64> = decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(v.len(), back.len());
        for (a, b) in v.iter().zip(&back) {
            prop_assert!(a.to_bits() == b.to_bits());
        }
    }

    #[test]
    fn wire_roundtrip_nested(
        s in ".{0,40}",
        pairs in prop::collection::vec((any::<i64>(), any::<bool>()), 0..50),
        opt in proptest::option::of(any::<u32>()),
    ) {
        let value = (s.clone(), pairs.clone(), opt);
        let bytes = encode_to_vec(&value);
        let back: (String, Vec<(i64, bool)>, Option<u32>) =
            decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(back, value);
    }

    #[test]
    fn wire_rejects_truncation(v in prop::collection::vec(any::<u64>(), 1..20)) {
        let bytes = encode_to_vec(&v);
        // any strict prefix must fail to decode
        let cut = bytes.len() - 1;
        prop_assert!(decode_from_slice::<Vec<u64>>(&bytes[..cut]).is_err());
    }
}

// ---- distribution maps -------------------------------------------------------

fn map_strategy() -> impl Strategy<Value = (usize, usize, u8, usize)> {
    // (n, p, kind, block size)
    (0usize..200, 1usize..9, 0u8..3, 1usize..7)
}

proptest! {
    #[test]
    fn maps_partition_exactly((n, p, kind, b) in map_strategy()) {
        let make = |r: usize| match kind {
            0 => DistMap::block(n, p, r),
            1 => DistMap::cyclic(n, p, r),
            _ => DistMap::block_cyclic(n, b, p, r),
        };
        let mut seen = vec![false; n];
        let mut total = 0;
        for r in 0..p {
            let m = make(r);
            total += m.my_count();
            for l in 0..m.my_count() {
                let g = m.local_to_global(l);
                prop_assert!(!seen[g], "gid {} owned twice", g);
                seen[g] = true;
                // bijection + owner agreement
                prop_assert_eq!(m.global_to_local(g), Some(l));
                prop_assert_eq!(m.owner_of(g), Some(r));
            }
        }
        prop_assert_eq!(total, n);
        prop_assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn owner_lookup_consistent_across_ranks((n, p, kind, b) in map_strategy()) {
        prop_assume!(n > 0);
        let make = |r: usize| match kind {
            0 => DistMap::block(n, p, r),
            1 => DistMap::cyclic(n, p, r),
            _ => DistMap::block_cyclic(n, b, p, r),
        };
        // every rank computes the same owner for every gid
        let owners: Vec<usize> = (0..n).map(|g| make(0).owner_of(g).unwrap()).collect();
        for r in 1..p {
            let m = make(r);
            for (g, &o) in owners.iter().enumerate() {
                prop_assert_eq!(m.owner_of(g), Some(o));
            }
        }
    }
}

// ---- ODIN vs serial NumPy-style reference ------------------------------------

fn dist_strategy() -> impl Strategy<Value = Dist> {
    prop_oneof![
        Just(Dist::Block),
        Just(Dist::Cyclic),
        (1usize..5).prop_map(Dist::BlockCyclic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn odin_binary_ufunc_matches_serial(
        n in 1usize..60,
        workers in 1usize..5,
        da in dist_strategy(),
        db in dist_strategy(),
        seed in 0u64..1000,
    ) {
        let ctx = OdinContext::with_workers(workers);
        let x = ctx.random_dist(&[n], seed, da);
        let y = ctx.random_dist(&[n], seed + 1, db);
        let got = (&x + &y).to_vec();
        let xs = x.to_vec();
        let ys = y.to_vec();
        for i in 0..n {
            prop_assert_eq!(got[i], xs[i] + ys[i]);
        }
    }

    #[test]
    fn odin_slicing_matches_serial(
        n in 1usize..80,
        workers in 1usize..5,
        d in dist_strategy(),
        start in 0usize..20,
        len in 0usize..60,
        step in 1usize..5,
    ) {
        let start = start.min(n);
        let stop = (start + len).min(n);
        let ctx = OdinContext::with_workers(workers);
        let x = ctx.random_dist(&[n], 42, d);
        let xs = x.to_vec();
        let s = x.slice(&[SliceSpec::new(start, stop, step)]);
        let got = s.to_vec();
        let expect: Vec<f64> = (start..stop).step_by(step).map(|i| xs[i]).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn odin_sum_matches_serial_tolerance(
        n in 1usize..100,
        workers in 1usize..5,
    ) {
        let ctx = OdinContext::with_workers(workers);
        let x = ctx.random(&[n], 7);
        let serial: f64 = x.to_vec().iter().sum();
        let dist = x.sum();
        prop_assert!((serial - dist).abs() <= 1e-12 * n as f64);
    }

    #[test]
    fn odin_cumsum_matches_serial(
        n in 1usize..80,
        workers in 1usize..5,
        d in dist_strategy(),
    ) {
        let ctx = OdinContext::with_workers(workers);
        let x = ctx.random_dist(&[n], 5, d);
        let xs = x.to_vec();
        let got = x.cumsum().to_vec();
        let mut acc = 0.0;
        for i in 0..n {
            acc += xs[i];
            prop_assert!((got[i] - acc).abs() < 1e-9 * (i + 1) as f64);
        }
    }

    #[test]
    fn odin_argmax_matches_serial(
        n in 1usize..60,
        workers in 1usize..5,
        d in dist_strategy(),
        seed in 0u64..500,
    ) {
        let ctx = OdinContext::with_workers(workers);
        let x = ctx.random_dist(&[n], seed, d);
        let xs = x.to_vec();
        let serial = xs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        prop_assert_eq!(x.argmax(), serial);
    }

    #[test]
    fn odin_concat_matches_serial(
        n1 in 0usize..30,
        n2 in 0usize..30,
        workers in 1usize..4,
        d1 in dist_strategy(),
        d2 in dist_strategy(),
    ) {
        prop_assume!(n1 + n2 > 0);
        let ctx = OdinContext::with_workers(workers);
        let a = ctx.random_dist(&[n1], 1, d1);
        let b = ctx.random_dist(&[n2], 2, d2);
        let mut expect = a.to_vec();
        expect.extend(b.to_vec());
        prop_assert_eq!(a.concat(&b).to_vec(), expect);
    }

    #[test]
    fn odin_redistribute_preserves_content(
        n in 0usize..60,
        workers in 1usize..5,
        d1 in dist_strategy(),
        d2 in dist_strategy(),
    ) {
        let ctx = OdinContext::with_workers(workers);
        let x = ctx.random_dist(&[n], 3, d1);
        let orig = x.to_vec();
        let y = x.redistribute(d2);
        prop_assert_eq!(y.to_vec(), orig);
    }
}

// ---- seamless: VM must agree with the interpreter -----------------------------

/// Random arithmetic source over one float parameter.
fn expr_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("x".to_string()),
        (-100i32..100).prop_map(|v| format!("{}.0", v)),
        (1u32..50).prop_map(|v| format!("{v}")),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} - {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} * {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} / {b})")),
            inner.clone().prop_map(|a| format!("(-{a})")),
            inner.clone().prop_map(|a| format!("sin({a})")),
            inner.clone().prop_map(|a| format!("cos({a})")),
            inner.clone().prop_map(|a| format!("sqrt(abs({a}))")),
        ]
    })
}

fn close_or_both_weird(a: f64, b: f64) -> bool {
    if a.is_nan() && b.is_nan() {
        return true;
    }
    if a == b {
        return true;
    }
    // constant folding may reassociate nothing, but int/float literal
    // promotion can differ by one rounding
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-9 * scale
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vm_matches_interpreter_on_random_expressions(
        expr in expr_strategy(),
        x in -10.0f64..10.0,
    ) {
        let src = format!("def f(x):\n    return {expr}\n");
        let interp = seamless::Interpreter::new(&src).unwrap();
        let iv = interp.call("f", vec![seamless::Value::Float(x)]);
        let kernel = seamless::jit(&src, "f", &[seamless::Type::Float]);
        match (iv, kernel) {
            (Ok(out), Ok(k)) => {
                let vv = k.call(vec![seamless::Value::Float(x)]).unwrap();
                let a = out.ret.as_f64().unwrap_or(f64::NAN);
                let b = vv.ret.as_f64().unwrap_or(f64::NAN);
                prop_assert!(
                    close_or_both_weird(a, b),
                    "interp {} vs vm {} for {}", a, b, expr
                );
            }
            // both paths must agree about failure too
            (Err(_), Err(_)) => {}
            (i, k) => {
                // integer-typed programs can fail in one path only when
                // division by a zero *int* occurs; allow mismatched errors
                // only if one side errored at runtime
                prop_assert!(
                    i.is_err() || k.is_err(),
                    "one path failed: interp={:?} kernel_ok={}", i.is_ok(), k.is_ok()
                );
            }
        }
    }

    #[test]
    fn vm_matches_interpreter_on_integer_loops(
        n in 0i64..40,
        step in 1i64..5,
        offset in -5i64..5,
    ) {
        let src = format!(
            "def f(n):\n    t = 0\n    for i in range(0, n, {step}):\n        t = t + i + {offset}\n    return t\n"
        );
        let interp = seamless::Interpreter::new(&src).unwrap();
        let iv = interp.call("f", vec![seamless::Value::Int(n)]).unwrap();
        let k = seamless::jit(&src, "f", &[seamless::Type::Int]).unwrap();
        let vv = k.call(vec![seamless::Value::Int(n)]).unwrap();
        prop_assert_eq!(iv.ret, vv.ret);
    }
}
