//! Serving-plane robustness contract (DESIGN §13, experiment E23):
//! admission control, backpressure, priority-aware shedding, deadlines,
//! and fault absorption with bitwise-identical completed results.
//!
//! The chaos test honors `HPC_FAULT_SEED` and rides the ci.sh 3-seed
//! sweep: each seed replays a distinct delay schedule on top of the
//! deterministic worker kill.

use std::time::Duration;

use hpc_framework::comm::FaultPlan;
use hpc_framework::odin::OdinConfig;
use hpc_framework::serve::{
    reference_result, JobOutcome, JobRequest, JobSpec, Priority, ServeConfig, ServeError,
    ServePlane, TenantQuota,
};

fn fault_seed() -> u64 {
    std::env::var("HPC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn req(spec: JobSpec, priority: Priority, budget: Duration) -> JobRequest {
    JobRequest {
        spec,
        priority,
        budget,
    }
}

/// A small mixed spec set covering all three job classes.
fn mixed_specs() -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for i in 0..4u64 {
        specs.push(JobSpec::Array {
            seed: 10 + i,
            n: 48 + 16 * i as usize,
        });
        specs.push(JobSpec::Kernel {
            seed: 20 + i,
            n: 40 + 8 * i as usize,
        });
        specs.push(JobSpec::Solve {
            seed: 30 + i,
            n: 32 + 8 * i as usize,
        });
    }
    specs
}

#[test]
fn admission_quota_is_synchronous_backpressure() {
    // One-slot tenant queue, one inflight slot, slow-ish work: a burst
    // must see typed QuotaExceeded refusals, and every *admitted* job
    // must still resolve.
    let plane = ServePlane::new(ServeConfig {
        n_pools: 1,
        workers_per_pool: 1,
        pool_inbox_cap: 1,
        tenants: vec![(
            "acme".into(),
            TenantQuota {
                max_queued: 1,
                max_inflight: 1,
                ..TenantQuota::default()
            },
        )],
        ..ServeConfig::default()
    });
    let s = plane.session("acme").unwrap();
    let mut tickets = Vec::new();
    let mut refused = 0u32;
    for i in 0..32u64 {
        match s.submit(req(
            JobSpec::Solve { seed: i, n: 48 },
            Priority::Normal,
            Duration::from_secs(30),
        )) {
            Ok(t) => tickets.push(t),
            Err(ServeError::QuotaExceeded {
                tenant,
                queued,
                cap,
            }) => {
                assert_eq!(tenant, "acme");
                assert!(queued >= cap);
                refused += 1;
            }
            Err(other) => panic!("unexpected refusal: {other}"),
        }
    }
    assert!(
        refused > 0,
        "a 32-deep burst into a 1-slot queue must refuse"
    );
    for t in tickets {
        assert!(
            t.wait().data().is_some(),
            "admitted jobs complete despite the backpressure"
        );
    }
    let stats = plane.shutdown();
    assert_eq!(stats.rejected_quota as u32, refused);
    assert!(stats.reconciles(), "{stats:?}");
}

#[test]
fn overload_sheds_lowest_priority_newest_first() {
    // A busy single-worker pool plus a tight global bound: queued work
    // above the bound is shed — and only from the Low lane, since the
    // Low population always exceeds the overflow here.
    let plane = ServePlane::new(ServeConfig {
        n_pools: 1,
        workers_per_pool: 1,
        pool_inbox_cap: 1,
        max_queued_total: 5,
        tenants: vec![(
            "acme".into(),
            TenantQuota {
                max_queued: 64,
                max_inflight: 1,
                ..TenantQuota::default()
            },
        )],
        ..ServeConfig::default()
    });
    let s = plane.session("acme").unwrap();
    // Occupy the pool so the burst below stays queued.
    let first = s
        .submit(req(
            JobSpec::Solve { seed: 1, n: 96 },
            Priority::Normal,
            Duration::from_secs(30),
        ))
        .unwrap();
    let mut low = Vec::new();
    let mut high = Vec::new();
    for i in 0..8u64 {
        low.push(
            s.submit(req(
                JobSpec::Array {
                    seed: 100 + i,
                    n: 32,
                },
                Priority::Low,
                Duration::from_secs(30),
            ))
            .unwrap(),
        );
    }
    for i in 0..4u64 {
        high.push(
            s.submit(req(
                JobSpec::Array {
                    seed: 200 + i,
                    n: 32,
                },
                Priority::High,
                Duration::from_secs(30),
            ))
            .unwrap(),
        );
    }
    assert!(first.wait().data().is_some());
    for t in high {
        match t.wait() {
            JobOutcome::Completed { .. } => {}
            other => panic!("high-priority work must never be shed here: {other:?}"),
        }
    }
    let mut shed = 0u64;
    for t in low {
        match t.wait() {
            JobOutcome::Completed { .. } => {}
            JobOutcome::Shed {
                priority,
                queued_for,
            } => {
                assert_eq!(priority, Priority::Low);
                assert!(queued_for <= Duration::from_secs(30));
                shed += 1;
            }
            other => panic!("unexpected outcome for low-priority job: {other:?}"),
        }
    }
    assert!(shed > 0, "13 queued jobs over a bound of 5 must shed some");
    let stats = plane.shutdown();
    assert_eq!(stats.shed, shed);
    assert!(stats.reconciles(), "{stats:?}");
}

#[test]
fn deadline_expiry_is_reported_not_silent() {
    let plane = ServePlane::new(ServeConfig {
        n_pools: 1,
        workers_per_pool: 1,
        tenants: vec![("acme".into(), TenantQuota::default())],
        ..ServeConfig::default()
    });
    let s = plane.session("acme").unwrap();
    let t = s
        .submit(req(
            JobSpec::Array { seed: 3, n: 64 },
            Priority::Normal,
            Duration::from_nanos(1),
        ))
        .unwrap();
    match t.wait() {
        JobOutcome::Expired { after, .. } => {
            assert!(after >= Duration::from_nanos(1));
        }
        other => panic!("a 1ns budget must expire, got {other:?}"),
    }
    let stats = plane.shutdown();
    assert_eq!(stats.expired_queued + stats.expired_running, 1);
    assert!(stats.reconciles(), "{stats:?}");
}

#[test]
fn fair_share_weights_drive_dispatch_order() {
    // Two tenants with a 3:1 weight ratio contending for one
    // single-worker pool: the heavy tenant must finish its batch no
    // later than the light one starts starving — observable as the
    // heavy tenant completing all jobs while both stay inside quota.
    let plane = ServePlane::new(ServeConfig {
        n_pools: 1,
        workers_per_pool: 1,
        pool_inbox_cap: 1,
        tenants: vec![
            (
                "heavy".into(),
                TenantQuota {
                    weight: 3.0,
                    ..TenantQuota::default()
                },
            ),
            ("light".into(), TenantQuota::default()),
        ],
        ..ServeConfig::default()
    });
    let heavy = plane.session("heavy").unwrap();
    let light = plane.session("light").unwrap();
    let mut tickets = Vec::new();
    for i in 0..6u64 {
        tickets.push(
            heavy
                .submit(req(
                    JobSpec::Array { seed: i, n: 48 },
                    Priority::Normal,
                    Duration::from_secs(30),
                ))
                .unwrap(),
        );
        tickets.push(
            light
                .submit(req(
                    JobSpec::Kernel { seed: i, n: 48 },
                    Priority::Normal,
                    Duration::from_secs(30),
                ))
                .unwrap(),
        );
    }
    for t in tickets {
        assert!(t.wait().data().is_some());
    }
    let stats = plane.shutdown();
    assert_eq!(stats.completed, 12);
    assert!(stats.reconciles(), "{stats:?}");
}

/// The E23 chaos gate: with an injected worker kill, a delayed straggler
/// rank, and a 2x overload burst, **no admitted job fails** — every
/// ticket resolves as completed (bitwise identical to a fault-free run
/// at the same pool size), shed, or expired, and the ledger reconciles.
#[test]
fn chaos_kill_straggler_overload_absorbed_without_failures() {
    let fault = FaultPlan {
        seed: fault_seed(),
        kill_rank: Some(1),
        kill_after_ops: 30,
        delay_rank: Some(2),
        delay_p: 0.3,
        delay_s: 5.0e-6,
        ..FaultPlan::none()
    };
    let plane = ServePlane::new(ServeConfig {
        n_pools: 2,
        workers_per_pool: 3,
        odin: OdinConfig {
            fault,
            stall_timeout: Some(Duration::from_secs(2)),
            reply_timeout: Some(Duration::from_secs(2)),
            ..OdinConfig::default()
        },
        max_queued_total: 24,
        tenants: vec![
            (
                "acme".into(),
                TenantQuota {
                    weight: 2.0,
                    max_queued: 16,
                    ..TenantQuota::default()
                },
            ),
            (
                "zeta".into(),
                TenantQuota {
                    max_queued: 16,
                    ..TenantQuota::default()
                },
            ),
        ],
        ..ServeConfig::default()
    });
    let sessions = [
        plane.session("acme").unwrap(),
        plane.session("zeta").unwrap(),
    ];
    let specs = mixed_specs();
    let prios = [Priority::Low, Priority::Normal, Priority::High];
    let mut tickets = Vec::new();
    let mut refused = 0u32;
    // 2x overload: four passes over the spec set into two tenants whose
    // combined quota is well below the burst size.
    for pass in 0..4u64 {
        for (i, spec) in specs.iter().enumerate() {
            let s = &sessions[i % 2];
            match s.submit(req(
                spec.clone(),
                prios[(pass as usize + i) % 3],
                Duration::from_secs(30),
            )) {
                Ok(t) => tickets.push((spec.clone(), t)),
                Err(ServeError::QuotaExceeded { .. }) => refused += 1, // legal backpressure
                Err(other) => panic!("unexpected refusal: {other}"),
            }
        }
    }
    let mut completed = 0u64;
    for (spec, t) in tickets {
        match t.wait() {
            JobOutcome::Completed { data, workers, .. } => {
                let want = reference_result(&spec, workers);
                assert_eq!(
                    data.len(),
                    want.len(),
                    "chaos-run result shape must match the clean oracle"
                );
                for (i, (a, b)) in data.iter().zip(&want).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "bitwise divergence at element {i} of {spec:?}"
                    );
                }
                completed += 1;
            }
            JobOutcome::Shed { .. } | JobOutcome::Expired { .. } => {} // counted, legal
            JobOutcome::Failed { error, .. } => {
                panic!("admitted job failed under chaos: {error}")
            }
        }
    }
    assert!(completed > 0, "chaos must not starve the plane entirely");
    let stats = plane.shutdown();
    assert_eq!(stats.failed, 0, "{stats:?}");
    assert_eq!(stats.rejected_quota as u32, refused);
    assert!(
        stats.recoveries >= 1,
        "the injected kill must have been absorbed at least once: {stats:?}"
    );
    assert!(stats.reconciles(), "{stats:?}");
}

#[test]
fn elastic_pool_grows_under_backlog_and_results_stay_exact() {
    let plane = ServePlane::new(ServeConfig {
        n_pools: 1,
        workers_per_pool: 1,
        pool_inbox_cap: 2,
        elastic: Some(hpc_framework::serve::ElasticPolicy {
            min_workers: 1,
            max_workers: 3,
            grow_backlog: 2,
            shrink_idle_ticks: 1_000_000, // shrink not under test
        }),
        tenants: vec![(
            "acme".into(),
            TenantQuota {
                max_queued: 64,
                max_inflight: 4,
                ..TenantQuota::default()
            },
        )],
        ..ServeConfig::default()
    });
    let s = plane.session("acme").unwrap();
    let tickets: Vec<_> = (0..24u64)
        .map(|i| {
            let spec = if i % 3 == 0 {
                JobSpec::Solve { seed: i, n: 40 }
            } else {
                JobSpec::Array { seed: i, n: 64 }
            };
            let t = s
                .submit(req(spec.clone(), Priority::Normal, Duration::from_secs(30)))
                .unwrap();
            (spec, t)
        })
        .collect();
    for (spec, t) in tickets {
        match t.wait() {
            JobOutcome::Completed { data, workers, .. } => {
                // `workers` records the size the job actually ran at —
                // resizes apply between jobs, so the oracle at that size
                // must match bitwise even while the pool is elastic.
                let want = reference_result(&spec, workers);
                assert!(
                    data.iter()
                        .zip(&want)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "elastic resize must not perturb results for {spec:?}"
                );
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }
    let stats = plane.shutdown();
    assert!(
        stats.resizes >= 1,
        "a 24-job backlog over grow_backlog=2 must trigger growth: {stats:?}"
    );
    assert!(stats.reconciles(), "{stats:?}");
}
