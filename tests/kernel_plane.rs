//! Kernel-plane determinism: the Seamless-JIT path (`Expr::eval`,
//! `Kernel::map`) must be bitwise-identical to the interpreted RPN path
//! at every pool width, under seeded chaos, and across a
//! checkpoint/recover cycle that respawns the whole worker pool.

use std::time::Duration;

use hpc_framework::comm::{Delivery, FaultPlan};
use hpc_framework::odin::OdinError;
use hpc_framework::prelude::*;

/// Chaos seed, overridable per CI pass: `HPC_FAULT_SEED=43 cargo test …`.
fn fault_seed() -> u64 {
    std::env::var("HPC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// One moderately gnarly expression covering the lowering surface:
/// pow strength-reduction, `%` → RemF, chained unary math. Every lane
/// stays finite so bitwise comparison is meaningful.
fn probe_expr<'x, 'c>(x: &'x DistArray<'c>, y: &'x DistArray<'c>) -> Expr<'x, 'c> {
    ((Expr::leaf(x) * 2.0 + Expr::leaf(y).sin()).abs() + 1.0).sqrt() * (Expr::leaf(x) * 0.25).exp()
        + (Expr::leaf(x).pow(3.0) % 0.7)
}

#[test]
fn jitted_matches_interpreted_at_every_pool_width() {
    // Same data, same expression, 1–8 ranks: the jitted bytecode result
    // must equal the interpreted RPN result bit for bit, and both must be
    // independent of the pool width.
    let mut reference: Option<Vec<u64>> = None;
    for workers in 1..=8usize {
        let ctx = OdinContext::with_workers(workers);
        let x = ctx.linspace(-2.0, 3.0, 257);
        let y = ctx.linspace(0.1, 4.0, 257);
        let jit = probe_expr(&x, &y).eval().to_vec();
        let rpn = probe_expr(&x, &y).eval_rpn().to_vec();
        assert_eq!(
            bits(&jit),
            bits(&rpn),
            "jit vs interpreter diverged at {workers} workers"
        );
        match &reference {
            None => reference = Some(bits(&jit)),
            Some(r) => assert_eq!(r, &bits(&jit), "width {workers} changed the answer"),
        }
        // Fused reduction tail vs the two-pass (materialize, then reduce)
        // route, at the same widths.
        let fused = probe_expr(&x, &y).sum();
        let two_pass = probe_expr(&x, &y).eval_rpn().sum();
        assert_eq!(
            fused.to_bits(),
            two_pass.to_bits(),
            "fused sum diverged at {workers} workers"
        );
    }
}

#[test]
fn compiled_kernels_match_a_host_reference_at_every_width() {
    let src = "def wave(a, b):\n    return hypot(a, b) * exp(0.0 - a)\n";
    let mut reference: Option<Vec<u64>> = None;
    for workers in 1..=8usize {
        let ctx = OdinContext::with_workers(workers);
        let wave = ctx.compile_kernel(src, "wave").unwrap();
        let a = ctx.linspace(0.0, 1.0, 193);
        let b = ctx.linspace(2.0, -1.0, 193);
        let got = wave.map(&[&a, &b]).to_vec();
        let want: Vec<f64> = a
            .to_vec()
            .iter()
            .zip(b.to_vec().iter())
            .map(|(&a, &b)| a.hypot(b) * (0.0 - a).exp())
            .collect();
        assert_eq!(
            bits(&got),
            bits(&want),
            "kernel diverged at {workers} workers"
        );
        match &reference {
            None => reference = Some(bits(&got)),
            Some(r) => assert_eq!(r, &bits(&got), "width {workers} changed the answer"),
        }
    }
}

#[test]
fn kernel_plane_is_deterministic_under_seeded_chaos() {
    // The ci.sh chaos sweep reruns this under several HPC_FAULT_SEED
    // values. Worker↔worker traffic (the fused-reduce allreduce) is
    // dropped/duplicated/corrupted/delayed per the seed; reliable
    // delivery must heal every schedule and leave the answer bit-exact.
    let healthy = {
        let ctx = OdinContext::with_workers(4);
        let x = ctx.linspace(-1.0, 1.0, 401);
        let y = ctx.linspace(0.5, 2.5, 401);
        let arr = bits(&probe_expr(&x, &y).eval().to_vec());
        let sum = probe_expr(&x, &y).sum().to_bits();
        (arr, sum)
    };
    let ctx = OdinContext::new(
        OdinConfig::default()
            .with_n_workers(4)
            .with_fault(FaultPlan::messages(fault_seed(), 0.08, 0.04, 0.04, 0.03))
            .with_delivery(Delivery::Reliable)
            .with_stall_timeout(Duration::from_secs(10)),
    );
    let x = ctx.linspace(-1.0, 1.0, 401);
    let y = ctx.linspace(0.5, 2.5, 401);
    assert_eq!(
        bits(&probe_expr(&x, &y).eval().to_vec()),
        healthy.0,
        "chaos changed the jitted array result (seed {})",
        fault_seed()
    );
    assert_eq!(
        probe_expr(&x, &y).sum().to_bits(),
        healthy.1,
        "chaos changed the fused reduction (seed {})",
        fault_seed()
    );
}

#[test]
fn recover_replays_registered_kernels_into_the_new_pool() {
    // Kill a worker mid-run, recover from a checkpoint, and invoke the
    // *same* Kernel handle again: recover() must have re-registered the
    // bytecode on the fresh pool (code ships once per pool, so the new
    // workers have never seen it unless replay happened).
    let ctx = OdinContext::new(OdinConfig {
        n_workers: 3,
        fault: FaultPlan {
            seed: fault_seed(),
            kill_rank: Some(1),
            kill_after_ops: 40,
            ..FaultPlan::none()
        },
        stall_timeout: Some(Duration::from_secs(5)),
        reply_timeout: Some(Duration::from_secs(5)),
        ..Default::default()
    });
    let clip = ctx
        .compile_kernel(
            "def clip(a):\n    if a > 1.0:\n        return 1.0\n    if a < 0.0 - 1.0:\n        return 0.0 - 1.0\n    return a\n",
            "clip",
        )
        .unwrap();
    let x = ctx.linspace(-3.0, 3.0, 97);
    let baseline = bits(&clip.map(&[&x]).to_vec());
    let expr_baseline = (Expr::leaf(&x) * 0.5).cos().sum().to_bits();
    let ck = ctx.checkpoint(&[&x]);

    // Burn collective ops until the fault plan kills rank 1.
    let mut died = false;
    for _ in 0..200 {
        match ctx.try_barrier() {
            Ok(()) => {}
            Err(OdinError::WorkerDead { worker, .. }) => {
                assert_eq!(worker, 1);
                died = true;
                break;
            }
            Err(other) => panic!("unexpected error while burning ops: {other:?}"),
        }
    }
    assert!(
        died,
        "fault plan never killed rank 1 (seed {})",
        fault_seed()
    );

    let report = ctx.recover(&ck);
    assert_eq!(report.respawned, 3);
    assert!(report.restored.contains(&x.id()));

    // Same Kernel handle, brand-new pool: only the registry replay makes
    // this work, and the answer must not move by a single bit.
    assert_eq!(bits(&clip.map(&[&x]).to_vec()), baseline);
    // The Expr plane's cached kernels were replayed too.
    assert_eq!((Expr::leaf(&x) * 0.5).cos().sum().to_bits(), expr_baseline);
}

#[test]
fn a_kernel_registers_once_and_invokes_stay_small() {
    // Integration-level check of the wire contract: after the first use,
    // re-invoking a kernel (or re-evaluating a structurally identical
    // Expr) broadcasts one sub-100-byte EvalKernel and nothing else.
    let ctx = OdinContext::with_workers(2);
    let sq = ctx
        .compile_kernel("def sq(a):\n    return a * a\n", "sq")
        .unwrap();
    let x = ctx.linspace(0.0, 1.0, 64);
    let warm = sq.map(&[&x]); // ships the bytecode
    let _ = (Expr::leaf(&x) + 1.0).eval(); // registers the Expr kernel
    ctx.reset_stats();
    let mut live = vec![warm];
    for _ in 0..10 {
        live.push(sq.map(&[&x]));
        live.push((Expr::leaf(&x) + 1.0).eval());
    }
    let st = ctx.stats();
    // 20 invokes × 2 workers, not a message more (no re-registration).
    assert_eq!(st.ctrl_msgs, 40, "unexpected extra control traffic");
    assert!(
        st.mean_ctrl_bytes() < 100.0,
        "mean control message {} bytes",
        st.mean_ctrl_bytes()
    );
    drop(live);
}

#[test]
fn mid_batch_kill_is_absorbed_by_recover_without_recompiling() {
    // The serving-plane failure shape (E23): a pool is killed *mid-batch*
    // — while a stream of kernel evaluations is in flight over a
    // checkpointed operand — and recover() must bring back both the
    // kernel registry and the checkpointed array so the batch finishes
    // through the SAME Kernel handle, bit-for-bit equal to a fault-free
    // run. Swept over HPC_FAULT_SEED by ci.sh.
    const SRC: &str = "def mix(a, b):\n    return a * a + b\n";
    const BATCH: usize = 8;
    const N: usize = 96;

    // Fault-free twin: the bitwise reference for the whole batch.
    let reference: Vec<Vec<u64>> = {
        let ctx = OdinContext::with_workers(3);
        let mix = ctx.compile_kernel(SRC, "mix").unwrap();
        let w = ctx.linspace(0.25, 4.0, N);
        (0..BATCH)
            .map(|k| {
                let x = ctx.random_dist(&[N], 900 + k as u64, Dist::Block);
                bits(&mix.map(&[&x, &w]).to_vec())
            })
            .collect()
    };

    let ctx = OdinContext::new(OdinConfig {
        n_workers: 3,
        fault: FaultPlan {
            seed: fault_seed(),
            kill_rank: Some(1),
            kill_after_ops: 25, // lands inside the batch, not before it
            ..FaultPlan::none()
        },
        stall_timeout: Some(Duration::from_secs(5)),
        reply_timeout: Some(Duration::from_secs(5)),
        ..Default::default()
    });
    let mix = ctx.compile_kernel(SRC, "mix").unwrap();
    let w = ctx.linspace(0.25, 4.0, N);
    let ck = ctx.checkpoint(&[&w]);

    let mut results: Vec<Vec<u64>> = Vec::with_capacity(BATCH);
    let mut recoveries = 0u32;
    for k in 0..BATCH {
        loop {
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let x = ctx.random_dist(&[N], 900 + k as u64, Dist::Block);
                mix.map(&[&x, &w]).to_vec()
            }));
            match attempt {
                Ok(v) => {
                    results.push(bits(&v));
                    break;
                }
                Err(_) => {
                    // The kill surfaced mid-evaluation. Heal the pool:
                    // respawn + registry replay + checkpoint restore.
                    assert!(ctx.health_check().is_err(), "panic without a dead pool");
                    let report = ctx.recover(&ck);
                    assert_eq!(report.respawned, 3);
                    assert!(report.restored.contains(&w.id()), "w must be restored");
                    recoveries += 1;
                    assert!(recoveries < 4, "recover() must converge, not thrash");
                }
            }
        }
    }
    assert!(
        recoveries >= 1,
        "the injected kill never landed mid-batch (seed {})",
        fault_seed()
    );
    // Same Kernel handle, never recompiled, pool respawned underneath:
    // the batch must not move by a single bit.
    assert_eq!(results, reference);
}

/// Fixed multi-statement traced program exercising the whole-program
/// optimizer surface: CSE (shared `x·c`), a merged redistribute (the
/// cyclic operand feeds two statements), a fused reduction, and a
/// scalar-ref consumed by a later fused kernel.
fn run_traced_probe(ctx: &OdinContext) -> (Vec<u64>, Vec<u64>, Vec<u64>, u64) {
    let x = ctx.arange_f64(-1.0, 0.031, 120, Dist::Block);
    let c = ctx.arange_f64(0.4, 0.011, 120, Dist::Cyclic);
    let mut p = ctx.trace();
    let (xl, cl) = (p.leaf(&x), p.leaf(&c));
    let shared = xl.clone() * cl.clone();
    let t1 = p.assign(shared.clone() + 1.0);
    let t2 = p.assign(shared.abs().sqrt());
    let s = p.sum(PExpr::from(t1) * PExpr::from(t2));
    let t3 = p.assign(xl - cl * PExpr::from(s));
    let mut run = p.run(&[t1, t2, t3]);
    let st = run.stats();
    assert!(st.cse_hits >= 1, "probe lost its CSE hit: {st:?}");
    assert!(st.redistributes_merged >= 1, "probe lost its merge: {st:?}");
    assert!(st.launches_saved >= 1, "probe lost its fusion: {st:?}");
    (
        bits(&run.array(t1).to_vec()),
        bits(&run.array(t2).to_vec()),
        bits(&run.array(t3).to_vec()),
        run.scalar(s).to_bits(),
    )
}

#[test]
fn traced_program_is_deterministic_under_seeded_chaos() {
    // Swept over HPC_FAULT_SEED by ci.sh: the optimized whole-program
    // path (fused multi-output kernels, pooled redistributes, scalar
    // reply tickets) must heal every chaos schedule bit-exactly.
    let healthy = {
        let ctx = OdinContext::with_workers(4);
        run_traced_probe(&ctx)
    };
    let ctx = OdinContext::new(
        OdinConfig::default()
            .with_n_workers(4)
            .with_fault(FaultPlan::messages(fault_seed(), 0.08, 0.04, 0.04, 0.03))
            .with_delivery(Delivery::Reliable)
            .with_stall_timeout(Duration::from_secs(10)),
    );
    assert_eq!(
        run_traced_probe(&ctx),
        healthy,
        "chaos changed a traced-program result (seed {})",
        fault_seed()
    );
}

#[test]
fn recover_replays_fused_program_kernels_into_the_new_pool() {
    // Run a traced program (registering its fused multi-output kernels),
    // kill a worker, recover from a checkpoint, and run the identical
    // trace again: the master's kernel cache makes the second run skip
    // registration, so it only works if recover() replayed the fused
    // bytecode into the respawned pool — and the bits must not move.
    let ctx = OdinContext::new(OdinConfig {
        n_workers: 3,
        fault: FaultPlan {
            seed: fault_seed(),
            kill_rank: Some(1),
            kill_after_ops: 40,
            ..FaultPlan::none()
        },
        stall_timeout: Some(Duration::from_secs(5)),
        reply_timeout: Some(Duration::from_secs(5)),
        ..Default::default()
    });
    let baseline = run_traced_probe(&ctx);
    let anchor = ctx.linspace(0.0, 1.0, 30);
    let ck = ctx.checkpoint(&[&anchor]);

    let mut died = false;
    for _ in 0..200 {
        match ctx.try_barrier() {
            Ok(()) => {}
            Err(OdinError::WorkerDead { worker, .. }) => {
                assert_eq!(worker, 1);
                died = true;
                break;
            }
            Err(other) => panic!("unexpected error while burning ops: {other:?}"),
        }
    }
    assert!(
        died,
        "fault plan never killed rank 1 (seed {})",
        fault_seed()
    );
    let report = ctx.recover(&ck);
    assert_eq!(report.respawned, 3);

    assert_eq!(
        run_traced_probe(&ctx),
        baseline,
        "recovered pool changed a traced-program result (seed {})",
        fault_seed()
    );
}
