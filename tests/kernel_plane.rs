//! Kernel-plane determinism: the Seamless-JIT path (`Expr::eval`,
//! `Kernel::map`) must be bitwise-identical to the interpreted RPN path
//! at every pool width, under seeded chaos, and across a
//! checkpoint/recover cycle that respawns the whole worker pool.

use std::time::Duration;

use hpc_framework::comm::{Delivery, FaultPlan};
use hpc_framework::odin::OdinError;
use hpc_framework::prelude::*;
use hpc_framework::seamless::codegen;

/// The codegen compile counters are process-global and every test in this
/// binary may trigger first-use native compiles. Tests that only *use*
/// kernels take a read guard; the test that asserts on
/// [`codegen::stats`] deltas takes the write guard so no concurrent
/// first-compile can land inside its measurement window.
static CODEGEN_STATS: std::sync::RwLock<()> = std::sync::RwLock::new(());

fn stats_read() -> std::sync::RwLockReadGuard<'static, ()> {
    CODEGEN_STATS.read().unwrap_or_else(|e| e.into_inner())
}

fn stats_write() -> std::sync::RwLockWriteGuard<'static, ()> {
    CODEGEN_STATS.write().unwrap_or_else(|e| e.into_inner())
}

/// Chaos seed, overridable per CI pass: `HPC_FAULT_SEED=43 cargo test …`.
fn fault_seed() -> u64 {
    std::env::var("HPC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// One moderately gnarly expression covering the lowering surface:
/// pow strength-reduction, `%` → RemF, chained unary math. Every lane
/// stays finite so bitwise comparison is meaningful.
fn probe_expr<'x, 'c>(x: &'x DistArray<'c>, y: &'x DistArray<'c>) -> Expr<'x, 'c> {
    ((Expr::leaf(x) * 2.0 + Expr::leaf(y).sin()).abs() + 1.0).sqrt() * (Expr::leaf(x) * 0.25).exp()
        + (Expr::leaf(x).pow(3.0) % 0.7)
}

#[test]
fn jitted_matches_interpreted_at_every_pool_width() {
    let _g = stats_read();
    // Same data, same expression, 1–8 ranks: the jitted bytecode result
    // must equal the interpreted RPN result bit for bit, and both must be
    // independent of the pool width.
    let mut reference: Option<Vec<u64>> = None;
    for workers in 1..=8usize {
        let ctx = OdinContext::with_workers(workers);
        let x = ctx.linspace(-2.0, 3.0, 257);
        let y = ctx.linspace(0.1, 4.0, 257);
        let jit = probe_expr(&x, &y).eval().to_vec();
        let rpn = probe_expr(&x, &y).eval_rpn().to_vec();
        assert_eq!(
            bits(&jit),
            bits(&rpn),
            "jit vs interpreter diverged at {workers} workers"
        );
        match &reference {
            None => reference = Some(bits(&jit)),
            Some(r) => assert_eq!(r, &bits(&jit), "width {workers} changed the answer"),
        }
        // Fused reduction tail vs the two-pass (materialize, then reduce)
        // route, at the same widths.
        let fused = probe_expr(&x, &y).sum();
        let two_pass = probe_expr(&x, &y).eval_rpn().sum();
        assert_eq!(
            fused.to_bits(),
            two_pass.to_bits(),
            "fused sum diverged at {workers} workers"
        );
    }
}

#[test]
fn compiled_kernels_match_a_host_reference_at_every_width() {
    let _g = stats_read();
    let src = "def wave(a, b):\n    return hypot(a, b) * exp(0.0 - a)\n";
    let mut reference: Option<Vec<u64>> = None;
    for workers in 1..=8usize {
        let ctx = OdinContext::with_workers(workers);
        let wave = ctx.compile_kernel(src, "wave").unwrap();
        let a = ctx.linspace(0.0, 1.0, 193);
        let b = ctx.linspace(2.0, -1.0, 193);
        let got = wave.map(&[&a, &b]).to_vec();
        let want: Vec<f64> = a
            .to_vec()
            .iter()
            .zip(b.to_vec().iter())
            .map(|(&a, &b)| a.hypot(b) * (0.0 - a).exp())
            .collect();
        assert_eq!(
            bits(&got),
            bits(&want),
            "kernel diverged at {workers} workers"
        );
        match &reference {
            None => reference = Some(bits(&got)),
            Some(r) => assert_eq!(r, &bits(&got), "width {workers} changed the answer"),
        }
    }
}

#[test]
fn kernel_plane_is_deterministic_under_seeded_chaos() {
    let _g = stats_read();
    // The ci.sh chaos sweep reruns this under several HPC_FAULT_SEED
    // values. Worker↔worker traffic (the fused-reduce allreduce) is
    // dropped/duplicated/corrupted/delayed per the seed; reliable
    // delivery must heal every schedule and leave the answer bit-exact.
    let healthy = {
        let ctx = OdinContext::with_workers(4);
        let x = ctx.linspace(-1.0, 1.0, 401);
        let y = ctx.linspace(0.5, 2.5, 401);
        let arr = bits(&probe_expr(&x, &y).eval().to_vec());
        let sum = probe_expr(&x, &y).sum().to_bits();
        (arr, sum)
    };
    let ctx = OdinContext::new(
        OdinConfig::default()
            .with_n_workers(4)
            .with_fault(FaultPlan::messages(fault_seed(), 0.08, 0.04, 0.04, 0.03))
            .with_delivery(Delivery::Reliable)
            .with_stall_timeout(Duration::from_secs(10)),
    );
    let x = ctx.linspace(-1.0, 1.0, 401);
    let y = ctx.linspace(0.5, 2.5, 401);
    assert_eq!(
        bits(&probe_expr(&x, &y).eval().to_vec()),
        healthy.0,
        "chaos changed the jitted array result (seed {})",
        fault_seed()
    );
    assert_eq!(
        probe_expr(&x, &y).sum().to_bits(),
        healthy.1,
        "chaos changed the fused reduction (seed {})",
        fault_seed()
    );
}

#[test]
fn recover_replays_registered_kernels_into_the_new_pool() {
    let _g = stats_read();
    // Kill a worker mid-run, recover from a checkpoint, and invoke the
    // *same* Kernel handle again: recover() must have re-registered the
    // bytecode on the fresh pool (code ships once per pool, so the new
    // workers have never seen it unless replay happened).
    let ctx = OdinContext::new(OdinConfig {
        n_workers: 3,
        fault: FaultPlan {
            seed: fault_seed(),
            kill_rank: Some(1),
            kill_after_ops: 40,
            ..FaultPlan::none()
        },
        stall_timeout: Some(Duration::from_secs(5)),
        reply_timeout: Some(Duration::from_secs(5)),
        ..Default::default()
    });
    let clip = ctx
        .compile_kernel(
            "def clip(a):\n    if a > 1.0:\n        return 1.0\n    if a < 0.0 - 1.0:\n        return 0.0 - 1.0\n    return a\n",
            "clip",
        )
        .unwrap();
    let x = ctx.linspace(-3.0, 3.0, 97);
    let baseline = bits(&clip.map(&[&x]).to_vec());
    let expr_baseline = (Expr::leaf(&x) * 0.5).cos().sum().to_bits();
    let ck = ctx.checkpoint(&[&x]);

    // Burn collective ops until the fault plan kills rank 1.
    let mut died = false;
    for _ in 0..200 {
        match ctx.try_barrier() {
            Ok(()) => {}
            Err(OdinError::WorkerDead { worker, .. }) => {
                assert_eq!(worker, 1);
                died = true;
                break;
            }
            Err(other) => panic!("unexpected error while burning ops: {other:?}"),
        }
    }
    assert!(
        died,
        "fault plan never killed rank 1 (seed {})",
        fault_seed()
    );

    let report = ctx.recover(&ck);
    assert_eq!(report.respawned, 3);
    assert!(report.restored.contains(&x.id()));

    // Same Kernel handle, brand-new pool: only the registry replay makes
    // this work, and the answer must not move by a single bit.
    assert_eq!(bits(&clip.map(&[&x]).to_vec()), baseline);
    // The Expr plane's cached kernels were replayed too.
    assert_eq!((Expr::leaf(&x) * 0.5).cos().sum().to_bits(), expr_baseline);
}

#[test]
fn a_kernel_registers_once_and_invokes_stay_small() {
    let _g = stats_read();
    // Integration-level check of the wire contract: after the first use,
    // re-invoking a kernel (or re-evaluating a structurally identical
    // Expr) broadcasts one sub-100-byte EvalKernel and nothing else.
    let ctx = OdinContext::with_workers(2);
    let sq = ctx
        .compile_kernel("def sq(a):\n    return a * a\n", "sq")
        .unwrap();
    let x = ctx.linspace(0.0, 1.0, 64);
    let warm = sq.map(&[&x]); // ships the bytecode
    let _ = (Expr::leaf(&x) + 1.0).eval(); // registers the Expr kernel
    ctx.reset_stats();
    let mut live = vec![warm];
    for _ in 0..10 {
        live.push(sq.map(&[&x]));
        live.push((Expr::leaf(&x) + 1.0).eval());
    }
    let st = ctx.stats();
    // 20 invokes × 2 workers, not a message more (no re-registration).
    assert_eq!(st.ctrl_msgs, 40, "unexpected extra control traffic");
    assert!(
        st.mean_ctrl_bytes() < 100.0,
        "mean control message {} bytes",
        st.mean_ctrl_bytes()
    );
    drop(live);
}

#[test]
fn mid_batch_kill_is_absorbed_by_recover_without_recompiling() {
    let _g = stats_read();
    // The serving-plane failure shape (E23): a pool is killed *mid-batch*
    // — while a stream of kernel evaluations is in flight over a
    // checkpointed operand — and recover() must bring back both the
    // kernel registry and the checkpointed array so the batch finishes
    // through the SAME Kernel handle, bit-for-bit equal to a fault-free
    // run. Swept over HPC_FAULT_SEED by ci.sh.
    const SRC: &str = "def mix(a, b):\n    return a * a + b\n";
    const BATCH: usize = 8;
    const N: usize = 96;

    // Fault-free twin: the bitwise reference for the whole batch.
    let reference: Vec<Vec<u64>> = {
        let ctx = OdinContext::with_workers(3);
        let mix = ctx.compile_kernel(SRC, "mix").unwrap();
        let w = ctx.linspace(0.25, 4.0, N);
        (0..BATCH)
            .map(|k| {
                let x = ctx.random_dist(&[N], 900 + k as u64, Dist::Block);
                bits(&mix.map(&[&x, &w]).to_vec())
            })
            .collect()
    };

    let ctx = OdinContext::new(OdinConfig {
        n_workers: 3,
        fault: FaultPlan {
            seed: fault_seed(),
            kill_rank: Some(1),
            kill_after_ops: 25, // lands inside the batch, not before it
            ..FaultPlan::none()
        },
        stall_timeout: Some(Duration::from_secs(5)),
        reply_timeout: Some(Duration::from_secs(5)),
        ..Default::default()
    });
    let mix = ctx.compile_kernel(SRC, "mix").unwrap();
    let w = ctx.linspace(0.25, 4.0, N);
    let ck = ctx.checkpoint(&[&w]);

    let mut results: Vec<Vec<u64>> = Vec::with_capacity(BATCH);
    let mut recoveries = 0u32;
    for k in 0..BATCH {
        loop {
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let x = ctx.random_dist(&[N], 900 + k as u64, Dist::Block);
                mix.map(&[&x, &w]).to_vec()
            }));
            match attempt {
                Ok(v) => {
                    results.push(bits(&v));
                    break;
                }
                Err(_) => {
                    // The kill surfaced mid-evaluation. Heal the pool:
                    // respawn + registry replay + checkpoint restore.
                    assert!(ctx.health_check().is_err(), "panic without a dead pool");
                    let report = ctx.recover(&ck);
                    assert_eq!(report.respawned, 3);
                    assert!(report.restored.contains(&w.id()), "w must be restored");
                    recoveries += 1;
                    assert!(recoveries < 4, "recover() must converge, not thrash");
                }
            }
        }
    }
    assert!(
        recoveries >= 1,
        "the injected kill never landed mid-batch (seed {})",
        fault_seed()
    );
    // Same Kernel handle, never recompiled, pool respawned underneath:
    // the batch must not move by a single bit.
    assert_eq!(results, reference);
}

/// Straight-line f64 body covering the native emitter's surface: unary
/// math, Math2, min, abs, division-free chains. Every lane stays finite.
const F64_BODY: &str =
    "def body(a, b):\n    return sqrt(abs(a * 2.0 + sin(b)) + 1.0) * exp(a * 0.25) + min(a, b) * 0.125\n";

#[test]
fn native_and_vm_tiers_match_bitwise_at_widths_1_to_8_across_dtypes() {
    let _g = stats_read();
    // The satellite parity matrix: at every pool width 1–8, the armed
    // native monomorphization must agree with the Tier::Vm build bit for
    // bit — for f64, i64, and bool compute. On machines without a C
    // compiler (or under HPC_KERNEL_TIER=vm) both builds resolve to the
    // VM and the matrix still holds trivially.
    for workers in 1..=8usize {
        let ctx = OdinContext::with_workers(workers);

        // f64 plane
        let auto = ctx.kernel(F64_BODY, "body").build().unwrap();
        let vm = ctx.kernel(F64_BODY, "body").tier(Tier::Vm).build().unwrap();
        if codegen::native_available() {
            assert_eq!(auto.tier(), Tier::Native, "f64 native failed to arm");
        }
        let a = ctx.linspace(-2.0, 3.0, 67);
        let b = ctx.linspace(0.1, 4.0, 67);
        assert_eq!(
            bits(&auto.map(&[&a, &b]).to_vec()),
            bits(&vm.map(&[&a, &b]).to_vec()),
            "f64 tiers diverged at {workers} workers"
        );
        let fused_n = auto.map_reduce(&[&a, &b], ReduceKind::Sum);
        let fused_v = vm.map_reduce(&[&a, &b], ReduceKind::Sum);
        assert_eq!(
            fused_n.to_bits(),
            fused_v.to_bits(),
            "f64 fused reduce diverged at {workers} workers"
        );

        // i64 plane
        let isrc = "def ibody(a, b):\n    return a * a - b * 3 + min(a, b)\n";
        let iauto = ctx.kernel(isrc, "ibody").dtype(DType::I64).build().unwrap();
        let ivm = ctx
            .kernel(isrc, "ibody")
            .dtype(DType::I64)
            .tier(Tier::Vm)
            .build()
            .unwrap();
        if codegen::native_available() {
            assert_eq!(iauto.tier(), Tier::Native, "i64 native failed to arm");
        }
        let xi = ctx.arange(67);
        let yi = ctx.arange(67);
        assert_eq!(
            iauto.map(&[&xi, &yi]).to_vec_i64(),
            ivm.map(&[&xi, &yi]).to_vec_i64(),
            "i64 tiers diverged at {workers} workers"
        );

        // bool plane (i64 ABI with 0/1 rows)
        let bsrc = "def same(a, b):\n    return a == b\n";
        let bauto = ctx.kernel(bsrc, "same").dtype(DType::Bool).build().unwrap();
        let bvm = ctx
            .kernel(bsrc, "same")
            .dtype(DType::Bool)
            .tier(Tier::Vm)
            .build()
            .unwrap();
        let xb = ctx.arange(41).astype(DType::Bool);
        let yb = ctx.arange(41).gt(&ctx.arange(41)).astype(DType::Bool);
        assert_eq!(
            bauto.map(&[&xb, &yb]).to_vec_i64(),
            bvm.map(&[&xb, &yb]).to_vec_i64(),
            "bool tiers diverged at {workers} workers"
        );
    }
}

#[test]
fn native_tier_is_deterministic_under_seeded_chaos() {
    let _g = stats_read();
    // Swept over HPC_FAULT_SEED by ci.sh: chaos on the control/collective
    // plane must not perturb native-tier results, and the native chaos run
    // must equal the healthy Tier::Vm run bit for bit (tiers are
    // interchangeable even under faults).
    let healthy_vm = {
        let ctx = OdinContext::with_workers(4);
        let k = ctx.kernel(F64_BODY, "body").tier(Tier::Vm).build().unwrap();
        let a = ctx.linspace(-1.5, 2.5, 311);
        let b = ctx.linspace(0.2, 3.0, 311);
        let arr = bits(&k.map(&[&a, &b]).to_vec());
        let sum = k.map_reduce(&[&a, &b], ReduceKind::Sum).to_bits();
        (arr, sum)
    };
    let ctx = OdinContext::new(
        OdinConfig::default()
            .with_n_workers(4)
            .with_fault(FaultPlan::messages(fault_seed(), 0.08, 0.04, 0.04, 0.03))
            .with_delivery(Delivery::Reliable)
            .with_stall_timeout(Duration::from_secs(10)),
    );
    let k = ctx.kernel(F64_BODY, "body").build().unwrap();
    let a = ctx.linspace(-1.5, 2.5, 311);
    let b = ctx.linspace(0.2, 3.0, 311);
    assert_eq!(
        bits(&k.map(&[&a, &b]).to_vec()),
        healthy_vm.0,
        "native tier under chaos diverged from the healthy VM run (seed {})",
        fault_seed()
    );
    assert_eq!(
        k.map_reduce(&[&a, &b], ReduceKind::Sum).to_bits(),
        healthy_vm.1,
        "native fused reduce under chaos diverged (seed {})",
        fault_seed()
    );
}

#[test]
fn native_tier_rearms_after_recover_without_recompiling() {
    let _g = stats_write();
    // Kill a worker mid-run, recover(), and invoke the same Kernel handle:
    // the native symbol must still dispatch (the codegen cache is
    // process-global — ranks are threads — so the respawned pool re-arms
    // with ZERO new compiles) and the bits must not move.
    let ctx = OdinContext::new(OdinConfig {
        n_workers: 3,
        fault: FaultPlan {
            seed: fault_seed(),
            kill_rank: Some(1),
            kill_after_ops: 40,
            ..FaultPlan::none()
        },
        stall_timeout: Some(Duration::from_secs(5)),
        reply_timeout: Some(Duration::from_secs(5)),
        ..Default::default()
    });
    let k = ctx.kernel(F64_BODY, "body").build().unwrap();
    if codegen::native_available() {
        assert_eq!(k.tier(), Tier::Native, "native failed to arm");
    }
    let a = ctx.linspace(-2.0, 2.0, 97);
    let b = ctx.linspace(0.5, 1.5, 97);
    let baseline = bits(&k.map(&[&a, &b]).to_vec());
    let ck = ctx.checkpoint(&[&a, &b]);
    let compiled_before = codegen::stats().compiled;

    let mut died = false;
    for _ in 0..200 {
        match ctx.try_barrier() {
            Ok(()) => {}
            Err(OdinError::WorkerDead { worker, .. }) => {
                assert_eq!(worker, 1);
                died = true;
                break;
            }
            Err(other) => panic!("unexpected error while burning ops: {other:?}"),
        }
    }
    assert!(
        died,
        "fault plan never killed rank 1 (seed {})",
        fault_seed()
    );

    let report = ctx.recover(&ck);
    assert_eq!(report.respawned, 3);
    assert!(report.restored.contains(&a.id()));

    // Same handle, new pool: bitwise-identical, and not one new compile —
    // the respawned workers hit the warm cache.
    assert_eq!(bits(&k.map(&[&a, &b]).to_vec()), baseline);
    assert_eq!(
        codegen::stats().compiled,
        compiled_before,
        "recover() should re-arm from the cache, not recompile"
    );
}

/// Fixed multi-statement traced program exercising the whole-program
/// optimizer surface: CSE (shared `x·c`), a merged redistribute (the
/// cyclic operand feeds two statements), a fused reduction, and a
/// scalar-ref consumed by a later fused kernel.
fn run_traced_probe(ctx: &OdinContext) -> (Vec<u64>, Vec<u64>, Vec<u64>, u64) {
    let x = ctx.arange_f64(-1.0, 0.031, 120, Dist::Block);
    let c = ctx.arange_f64(0.4, 0.011, 120, Dist::Cyclic);
    let mut p = ctx.trace();
    let (xl, cl) = (p.leaf(&x), p.leaf(&c));
    let shared = xl.clone() * cl.clone();
    let t1 = p.assign(shared.clone() + 1.0);
    let t2 = p.assign(shared.abs().sqrt());
    let s = p.sum(PExpr::from(t1) * PExpr::from(t2));
    let t3 = p.assign(xl - cl * PExpr::from(s));
    let mut run = p.run(&[t1, t2, t3]);
    let st = run.stats();
    assert!(st.cse_hits >= 1, "probe lost its CSE hit: {st:?}");
    assert!(st.redistributes_merged >= 1, "probe lost its merge: {st:?}");
    assert!(st.launches_saved >= 1, "probe lost its fusion: {st:?}");
    (
        bits(&run.array(t1).to_vec()),
        bits(&run.array(t2).to_vec()),
        bits(&run.array(t3).to_vec()),
        run.scalar(s).to_bits(),
    )
}

#[test]
fn traced_program_is_deterministic_under_seeded_chaos() {
    let _g = stats_read();
    // Swept over HPC_FAULT_SEED by ci.sh: the optimized whole-program
    // path (fused multi-output kernels, pooled redistributes, scalar
    // reply tickets) must heal every chaos schedule bit-exactly.
    let healthy = {
        let ctx = OdinContext::with_workers(4);
        run_traced_probe(&ctx)
    };
    let ctx = OdinContext::new(
        OdinConfig::default()
            .with_n_workers(4)
            .with_fault(FaultPlan::messages(fault_seed(), 0.08, 0.04, 0.04, 0.03))
            .with_delivery(Delivery::Reliable)
            .with_stall_timeout(Duration::from_secs(10)),
    );
    assert_eq!(
        run_traced_probe(&ctx),
        healthy,
        "chaos changed a traced-program result (seed {})",
        fault_seed()
    );
}

#[test]
fn recover_replays_fused_program_kernels_into_the_new_pool() {
    let _g = stats_read();
    // Run a traced program (registering its fused multi-output kernels),
    // kill a worker, recover from a checkpoint, and run the identical
    // trace again: the master's kernel cache makes the second run skip
    // registration, so it only works if recover() replayed the fused
    // bytecode into the respawned pool — and the bits must not move.
    let ctx = OdinContext::new(OdinConfig {
        n_workers: 3,
        fault: FaultPlan {
            seed: fault_seed(),
            kill_rank: Some(1),
            kill_after_ops: 40,
            ..FaultPlan::none()
        },
        stall_timeout: Some(Duration::from_secs(5)),
        reply_timeout: Some(Duration::from_secs(5)),
        ..Default::default()
    });
    let baseline = run_traced_probe(&ctx);
    let anchor = ctx.linspace(0.0, 1.0, 30);
    let ck = ctx.checkpoint(&[&anchor]);

    let mut died = false;
    for _ in 0..200 {
        match ctx.try_barrier() {
            Ok(()) => {}
            Err(OdinError::WorkerDead { worker, .. }) => {
                assert_eq!(worker, 1);
                died = true;
                break;
            }
            Err(other) => panic!("unexpected error while burning ops: {other:?}"),
        }
    }
    assert!(
        died,
        "fault plan never killed rank 1 (seed {})",
        fault_seed()
    );
    let report = ctx.recover(&ck);
    assert_eq!(report.respawned, 3);

    assert_eq!(
        run_traced_probe(&ctx),
        baseline,
        "recovered pool changed a traced-program result (seed {})",
        fault_seed()
    );
}
