//! Failure-injection and edge-case tests: the framework must fail loudly
//! and precisely, not silently corrupt distributed state.

use hpc_framework::comm::Universe;
use hpc_framework::dlinalg::{CsrMatrix, DistVector};
use hpc_framework::dmap::DistMap;
use hpc_framework::odin::{DType, Dist, OdinContext};
use hpc_framework::seamless::{self, SeamlessError, Type, Value};
use hpc_framework::solvers::{cg, DirectSolver, IdentityPrecond, KrylovConfig};

fn panics<F: FnOnce() + std::panic::UnwindSafe>(f: F) -> bool {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence expected panics
    let r = std::panic::catch_unwind(f).is_err();
    std::panic::set_hook(prev);
    r
}

// ---- odin shape/type misuse ---------------------------------------------------

#[test]
fn odin_shape_mismatch_panics() {
    assert!(panics(|| {
        let ctx = OdinContext::with_workers(2);
        let a = ctx.zeros(&[4], DType::F64);
        let b = ctx.zeros(&[5], DType::F64);
        let _ = &a + &b;
    }));
}

#[test]
fn odin_slice_out_of_bounds_panics() {
    assert!(panics(|| {
        let ctx = OdinContext::with_workers(2);
        let a = ctx.zeros(&[4], DType::F64);
        let _ = a.slice(&[hpc_framework::odin::SliceSpec::new(0, 10, 1)]);
    }));
}

#[test]
fn odin_cumsum_of_2d_panics() {
    assert!(panics(|| {
        let ctx = OdinContext::with_workers(2);
        let a = ctx.zeros(&[3, 3], DType::F64);
        let _ = a.cumsum();
    }));
}

#[test]
fn odin_matmul_inner_dim_mismatch_panics() {
    assert!(panics(|| {
        let ctx = OdinContext::with_workers(2);
        let a = ctx.zeros(&[3, 4], DType::F64);
        let b = ctx.zeros(&[5, 2], DType::F64);
        let _ = a.matmul(&b);
    }));
}

#[test]
fn odin_empty_arrays_are_fine_where_defined() {
    let ctx = OdinContext::with_workers(3);
    let a = ctx.zeros(&[0], DType::F64);
    assert_eq!(a.to_vec(), Vec::<f64>::new());
    assert_eq!(a.sum(), 0.0);
    let b = a.slice1(0, None, 1);
    assert!(b.is_empty());
    let c = ctx.ones(&[3], DType::F64);
    assert_eq!(a.concat(&c).to_vec(), vec![1.0, 1.0, 1.0]);
}

#[test]
fn odin_single_element_array() {
    let ctx = OdinContext::with_workers(4); // more workers than elements
    let a = ctx.linspace(5.0, 5.0, 1);
    assert_eq!(a.to_vec(), vec![5.0]);
    assert_eq!(a.argmax(), 0);
    assert_eq!(a.cumsum().to_vec(), vec![5.0]);
    let doubled = &a * 2.0;
    assert_eq!(doubled.sum(), 10.0);
}

// ---- solver misuse -------------------------------------------------------------

#[test]
fn direct_solver_rejects_rectangular() {
    assert!(panics(|| {
        Universe::run(1, |comm| {
            let rm = DistMap::block(3, 1, 0);
            let dm = DistMap::block(4, 1, 0);
            let a = CsrMatrix::from_row_fn(comm, rm, dm, |g| vec![(g, 1.0)]);
            let _ = DirectSolver::factor(comm, &a);
        });
    }));
}

#[test]
fn cg_on_indefinite_matrix_reports_nonconvergence_or_solves() {
    // CG is undefined for indefinite matrices; it must never hang and must
    // report honestly through the status.
    Universe::run(2, |comm| {
        let m = DistMap::block(8, comm.size(), comm.rank());
        let a = CsrMatrix::from_row_fn(comm, m.clone(), m, |g| {
            vec![(g, if g % 2 == 0 { 1.0 } else { -1.0 })]
        });
        let b = DistVector::constant(a.domain_map().clone(), 1.0);
        let mut x = DistVector::zeros(a.domain_map().clone());
        let cfg = KrylovConfig {
            max_iter: 50,
            ..Default::default()
        };
        let st = cg(comm, &a, &b, &mut x, &IdentityPrecond, &cfg);
        // diagonal ±1 is its own inverse: CG actually nails it in a few
        // iterations here; the point is the call returns with a truthful
        // status either way
        assert!(st.iterations <= 50);
        assert_eq!(st.history.len(), st.iterations + 1);
    });
}

#[test]
fn jacobi_rejects_zero_diagonal() {
    assert!(panics(|| {
        Universe::run(1, |comm| {
            let m = DistMap::block(2, 1, 0);
            // every row's only entry is column 1, so row 0 has a zero diagonal
            let a = CsrMatrix::from_row_fn(comm, m.clone(), m, |_g| vec![(1, 1.0)]);
            let _ = hpc_framework::solvers::JacobiPrecond::new(&a);
        });
    }));
}

// ---- seamless error taxonomy ----------------------------------------------------

#[test]
fn seamless_errors_carry_the_right_kind() {
    // lex
    assert!(matches!(
        seamless::jit("def f():\n\treturn 1\n", "f", &[]),
        Err(SeamlessError::Lex(_, _))
    ));
    // parse
    assert!(matches!(
        seamless::jit("def f(:\n    return 1\n", "f", &[]),
        Err(SeamlessError::Parse(_, _))
    ));
    // type
    assert!(matches!(
        seamless::jit("def f(a):\n    return a[0]\n", "f", &[Type::Int]),
        Err(SeamlessError::Type(_))
    ));
    // runtime (vm)
    let k = seamless::jit("def f(a):\n    return a[100]\n", "f", &[Type::ArrF]).unwrap();
    assert!(matches!(
        k.call(vec![Value::ArrF(vec![1.0])]),
        Err(SeamlessError::Runtime(_))
    ));
    // wrong arity at call time
    assert!(matches!(k.call(vec![]), Err(SeamlessError::Runtime(_))));
    // wrong argument type at call time
    assert!(matches!(
        k.call(vec![Value::Int(3)]),
        Err(SeamlessError::Runtime(_))
    ));
}

#[test]
fn seamless_interpreter_and_vm_agree_on_failures() {
    let src = "def f(n):\n    return 1 // n\n";
    let interp = seamless::Interpreter::new(src).unwrap();
    let k = seamless::jit(src, "f", &[Type::Int]).unwrap();
    assert!(interp.call("f", vec![Value::Int(0)]).is_err());
    assert!(k.call(vec![Value::Int(0)]).is_err());
    // and agree on success
    assert_eq!(
        interp.call("f", vec![Value::Int(7)]).unwrap().ret,
        k.call(vec![Value::Int(7)]).unwrap().ret
    );
}

// ---- io robustness ---------------------------------------------------------------

#[test]
fn odin_load_of_missing_file_errors_cleanly() {
    let ctx = OdinContext::with_workers(2);
    let missing = std::env::temp_dir().join("definitely_not_there_12345");
    assert!(ctx.load(&missing).is_err());
}

#[test]
fn matrix_market_read_of_garbage_errors() {
    let path = std::env::temp_dir().join(format!("garbage_{}.mtx", std::process::id()));
    std::fs::write(&path, "this is not a matrix\n").unwrap();
    let p2 = path.clone();
    let result = std::panic::catch_unwind(move || {
        Universe::run(1, move |comm| {
            let _ = hpc_framework::dlinalg::io::read_matrix_market(comm, &p2);
        })
    });
    // parsing panics on rank 0 (garbage header) — must not hang
    assert!(result.is_err());
    let _ = std::fs::remove_file(path);
}

// ---- dist map misuse ---------------------------------------------------------------

#[test]
fn map_rejects_out_of_range_rank() {
    assert!(panics(|| {
        let _ = DistMap::block(10, 3, 7);
    }));
}

#[test]
fn redistribute_between_all_kinds_with_empty_ranks() {
    // n < workers: several empty segments; all redistributions must hold.
    let ctx = OdinContext::with_workers(4);
    let a = ctx.linspace(1.0, 2.0, 2);
    for d in [Dist::Cyclic, Dist::BlockCyclic(3), Dist::Block] {
        let b = a.redistribute(d);
        assert_eq!(b.to_vec(), a.to_vec());
    }
}
