//! Failure-injection and edge-case tests: the framework must fail loudly
//! and precisely, not silently corrupt distributed state.

use hpc_framework::comm::Universe;
use hpc_framework::dlinalg::{CsrMatrix, DistVector};
use hpc_framework::dmap::DistMap;
use hpc_framework::odin::{DType, Dist, OdinContext};
use hpc_framework::seamless::{self, SeamlessError, Type, Value};
use hpc_framework::solvers::{cg, DirectSolver, IdentityPrecond, KrylovConfig};

fn panics<F: FnOnce() + std::panic::UnwindSafe>(f: F) -> bool {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence expected panics
    let r = std::panic::catch_unwind(f).is_err();
    std::panic::set_hook(prev);
    r
}

// ---- odin shape/type misuse ---------------------------------------------------

#[test]
fn odin_shape_mismatch_panics() {
    assert!(panics(|| {
        let ctx = OdinContext::with_workers(2);
        let a = ctx.zeros(&[4], DType::F64);
        let b = ctx.zeros(&[5], DType::F64);
        let _ = &a + &b;
    }));
}

#[test]
fn odin_slice_out_of_bounds_panics() {
    assert!(panics(|| {
        let ctx = OdinContext::with_workers(2);
        let a = ctx.zeros(&[4], DType::F64);
        let _ = a.slice(&[hpc_framework::odin::SliceSpec::new(0, 10, 1)]);
    }));
}

#[test]
fn odin_cumsum_of_2d_panics() {
    assert!(panics(|| {
        let ctx = OdinContext::with_workers(2);
        let a = ctx.zeros(&[3, 3], DType::F64);
        let _ = a.cumsum();
    }));
}

#[test]
fn odin_matmul_inner_dim_mismatch_panics() {
    assert!(panics(|| {
        let ctx = OdinContext::with_workers(2);
        let a = ctx.zeros(&[3, 4], DType::F64);
        let b = ctx.zeros(&[5, 2], DType::F64);
        let _ = a.matmul(&b);
    }));
}

#[test]
fn odin_empty_arrays_are_fine_where_defined() {
    let ctx = OdinContext::with_workers(3);
    let a = ctx.zeros(&[0], DType::F64);
    assert_eq!(a.to_vec(), Vec::<f64>::new());
    assert_eq!(a.sum(), 0.0);
    let b = a.slice1(0, None, 1);
    assert!(b.is_empty());
    let c = ctx.ones(&[3], DType::F64);
    assert_eq!(a.concat(&c).to_vec(), vec![1.0, 1.0, 1.0]);
}

#[test]
fn odin_single_element_array() {
    let ctx = OdinContext::with_workers(4); // more workers than elements
    let a = ctx.linspace(5.0, 5.0, 1);
    assert_eq!(a.to_vec(), vec![5.0]);
    assert_eq!(a.argmax(), 0);
    assert_eq!(a.cumsum().to_vec(), vec![5.0]);
    let doubled = &a * 2.0;
    assert_eq!(doubled.sum(), 10.0);
}

// ---- solver misuse -------------------------------------------------------------

#[test]
fn direct_solver_rejects_rectangular() {
    assert!(panics(|| {
        Universe::run(1, |comm| {
            let rm = DistMap::block(3, 1, 0);
            let dm = DistMap::block(4, 1, 0);
            let a = CsrMatrix::from_row_fn(comm, rm, dm, |g| vec![(g, 1.0)]);
            let _ = DirectSolver::factor(comm, &a);
        });
    }));
}

#[test]
fn cg_on_indefinite_matrix_reports_nonconvergence_or_solves() {
    // CG is undefined for indefinite matrices; it must never hang and must
    // report honestly through the status.
    Universe::run(2, |comm| {
        let m = DistMap::block(8, comm.size(), comm.rank());
        let a = CsrMatrix::from_row_fn(comm, m.clone(), m, |g| {
            vec![(g, if g % 2 == 0 { 1.0 } else { -1.0 })]
        });
        let b = DistVector::constant(a.domain_map().clone(), 1.0);
        let mut x = DistVector::zeros(a.domain_map().clone());
        let cfg = KrylovConfig {
            max_iter: 50,
            ..Default::default()
        };
        let st = cg(comm, &a, &b, &mut x, &IdentityPrecond, &cfg);
        // diagonal ±1 is its own inverse: CG actually nails it in a few
        // iterations here; the point is the call returns with a truthful
        // status either way
        assert!(st.iterations <= 50);
        assert_eq!(st.history.len(), st.iterations + 1);
    });
}

#[test]
fn jacobi_rejects_zero_diagonal() {
    assert!(panics(|| {
        Universe::run(1, |comm| {
            let m = DistMap::block(2, 1, 0);
            // every row's only entry is column 1, so row 0 has a zero diagonal
            let a = CsrMatrix::from_row_fn(comm, m.clone(), m, |_g| vec![(1, 1.0)]);
            let _ = hpc_framework::solvers::JacobiPrecond::new(&a);
        });
    }));
}

// ---- seamless error taxonomy ----------------------------------------------------

#[test]
fn seamless_errors_carry_the_right_kind() {
    // lex
    assert!(matches!(
        seamless::jit("def f():\n\treturn 1\n", "f", &[]),
        Err(SeamlessError::Lex(_, _))
    ));
    // parse
    assert!(matches!(
        seamless::jit("def f(:\n    return 1\n", "f", &[]),
        Err(SeamlessError::Parse(_, _))
    ));
    // type
    assert!(matches!(
        seamless::jit("def f(a):\n    return a[0]\n", "f", &[Type::Int]),
        Err(SeamlessError::Type(_))
    ));
    // runtime (vm)
    let k = seamless::jit("def f(a):\n    return a[100]\n", "f", &[Type::ArrF]).unwrap();
    assert!(matches!(
        k.call(vec![Value::ArrF(vec![1.0])]),
        Err(SeamlessError::Runtime(_))
    ));
    // wrong arity at call time
    assert!(matches!(k.call(vec![]), Err(SeamlessError::Runtime(_))));
    // wrong argument type at call time
    assert!(matches!(
        k.call(vec![Value::Int(3)]),
        Err(SeamlessError::Runtime(_))
    ));
}

#[test]
fn seamless_interpreter_and_vm_agree_on_failures() {
    let src = "def f(n):\n    return 1 // n\n";
    let interp = seamless::Interpreter::new(src).unwrap();
    let k = seamless::jit(src, "f", &[Type::Int]).unwrap();
    assert!(interp.call("f", vec![Value::Int(0)]).is_err());
    assert!(k.call(vec![Value::Int(0)]).is_err());
    // and agree on success
    assert_eq!(
        interp.call("f", vec![Value::Int(7)]).unwrap().ret,
        k.call(vec![Value::Int(7)]).unwrap().ret
    );
}

// ---- io robustness ---------------------------------------------------------------

#[test]
fn odin_load_of_missing_file_errors_cleanly() {
    let ctx = OdinContext::with_workers(2);
    let missing = std::env::temp_dir().join("definitely_not_there_12345");
    assert!(ctx.load(&missing).is_err());
}

#[test]
fn matrix_market_read_of_garbage_errors() {
    let path = std::env::temp_dir().join(format!("garbage_{}.mtx", std::process::id()));
    std::fs::write(&path, "this is not a matrix\n").unwrap();
    let p2 = path.clone();
    let result = std::panic::catch_unwind(move || {
        Universe::run(1, move |comm| {
            let _ = hpc_framework::dlinalg::io::read_matrix_market(comm, &p2);
        })
    });
    // parsing panics on rank 0 (garbage header) — must not hang
    assert!(result.is_err());
    let _ = std::fs::remove_file(path);
}

// ---- chaos: seeded fault injection (E18) -----------------------------------------

use std::time::{Duration, Instant};

use hpc_framework::comm::{CommError, Delivery, FaultPlan, Src, UniverseConfig};
use hpc_framework::odin::{OdinConfig, OdinError};
use hpc_framework::solvers::{cg_checkpointed, CgCheckpointing, CheckpointStore};

/// Chaos seed, overridable per CI pass: `HPC_FAULT_SEED=43 cargo test …`.
/// Every fault decision is a pure function of this seed, so a failing
/// sweep value reproduces the exact schedule locally.
fn fault_seed() -> u64 {
    std::env::var("HPC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Chaos universes always carry a stall timeout: a fault-injection test
/// must end in a typed error, never a hang.
fn chaos_universe(fault: FaultPlan, delivery: Delivery) -> UniverseConfig {
    UniverseConfig {
        stall_timeout: Some(Duration::from_secs(10)),
        fault,
        delivery,
        ..Default::default()
    }
}

#[test]
fn corrupt_message_is_a_typed_error_in_raw_mode() {
    // Every fresh transmission is bit-corrupted; raw delivery surfaces
    // the checksum failure to the receiver instead of handing over
    // silently corrupted payloads.
    let plan = FaultPlan::messages(fault_seed(), 0.0, 0.0, 0.0, 1.0);
    let report = Universe::run_report(chaos_universe(plan, Delivery::Raw), 2, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 7, &vec![1.0f64; 64]).unwrap();
            None
        } else {
            Some(comm.recv::<Vec<f64>>(Src::Rank(0), 7))
        }
    });
    match report.results[1].as_ref().unwrap() {
        Err(CommError::Corrupt { rank, src, tag }) => {
            assert_eq!((*rank, *src, *tag), (1, 0, 7));
        }
        other => panic!("expected CommError::Corrupt, got {other:?}"),
    }
    assert!(report.stats[1].corrupt_detected >= 1);
    // the sender never learns; only the receiver's verifier fires
    assert_eq!(report.stats[0].corrupt_detected, 0);
}

#[test]
fn reliable_delivery_heals_the_swept_fault_schedule() {
    // The ci.sh chaos pass reruns this test under several HPC_FAULT_SEED
    // values: each seed replays a distinct (but exactly reproducible)
    // drop/dup/delay/corrupt schedule, and reliable delivery must heal
    // every one of them.
    let plan = FaultPlan::messages(fault_seed(), 0.08, 0.04, 0.04, 0.03);
    let report = Universe::run_report(chaos_universe(plan, Delivery::Reliable), 4, |comm| {
        comm.barrier();
        let v = vec![comm.rank() as f64; 100];
        comm.allreduce(&v, hpc_framework::comm::ReduceOp::vec_sum())[0]
    });
    for (rank, r) in report.results.iter().enumerate() {
        assert_eq!(*r, 6.0, "rank {rank}"); // 0 + 1 + 2 + 3
    }
}

#[test]
fn killed_odin_worker_is_a_typed_error_not_a_hang() {
    // Worker 1 dies after its second command. The master must diagnose
    // the death in bounded wall time through the public API — a typed
    // OdinError naming the dead worker, never a hang.
    let ctx = OdinContext::new(OdinConfig {
        n_workers: 3,
        fault: FaultPlan {
            seed: fault_seed(),
            kill_rank: Some(1),
            kill_after_ops: 2,
            ..FaultPlan::none()
        },
        stall_timeout: Some(Duration::from_secs(5)),
        reply_timeout: Some(Duration::from_secs(5)),
        ..Default::default()
    });
    let _a = ctx.zeros(&[12], DType::F64); // command 1 on every worker
    let t0 = Instant::now();
    match ctx.try_barrier() {
        // command 2: the victim dies before replying
        Err(OdinError::WorkerDead { worker, .. }) => assert_eq!(worker, 1),
        other => panic!("expected WorkerDead, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "death diagnosis took {:?}",
        t0.elapsed()
    );
    assert_eq!(ctx.dead_workers(), vec![1]);
    assert!(ctx.health_check().is_err());
}

#[test]
fn checkpointed_cg_restart_after_injected_kill_is_bitwise_identical() {
    let n_ranks = 3;
    const N: usize = 48;
    fn build(comm: &hpc_framework::comm::Comm) -> (CsrMatrix<f64>, DistVector<f64>) {
        let map = DistMap::block(N, comm.size(), comm.rank());
        let a = CsrMatrix::from_row_fn(comm, map.clone(), map, |g| {
            let mut row = Vec::new();
            if g > 0 {
                row.push((g - 1, -1.0));
            }
            row.push((g, 2.0 + (g % 3) as f64));
            if g + 1 < N {
                row.push((g + 1, -1.0));
            }
            row
        });
        let b = DistVector::from_fn(a.domain_map().clone(), |g| ((g as f64) * 0.3).cos());
        (a, b)
    }

    // Reference: one uninterrupted fault-free solve.
    let reference: Vec<(Vec<f64>, Vec<f64>)> = Universe::run(n_ranks, |comm| {
        let (a, b) = build(comm);
        let mut x = DistVector::zeros(a.domain_map().clone());
        let st = cg(
            comm,
            &a,
            &b,
            &mut x,
            &IdentityPrecond,
            &KrylovConfig::default(),
        );
        assert!(st.converged);
        (x.local().to_vec(), st.history)
    });

    // Chaos run: rank 1 is killed mid-solve while every rank records a
    // checkpoint each 5 iterations into shared stable storage. The job
    // dies loudly (killed rank errors, peers stall out on the timeout).
    let store = CheckpointStore::new();
    let plan = FaultPlan {
        seed: fault_seed(),
        kill_rank: Some(1),
        kill_after_ops: 150,
        ..FaultPlan::none()
    };
    let mut cfg = chaos_universe(plan, Delivery::Raw);
    cfg.stall_timeout = Some(Duration::from_secs(2));
    let died = {
        let store = store.clone();
        panics(std::panic::AssertUnwindSafe(move || {
            Universe::run_report(cfg, n_ranks, move |comm| {
                let (a, b) = build(comm);
                let mut x = DistVector::zeros(a.domain_map().clone());
                let rank = comm.rank();
                let store = store.clone();
                let sink = move |c| store.record(rank, c);
                // the run is killed mid-solve; the status never arrives
                let _ = cg_checkpointed(
                    comm,
                    &a,
                    &b,
                    &mut x,
                    &IdentityPrecond,
                    &KrylovConfig::default(),
                    &CgCheckpointing {
                        every: 5,
                        sink: Some(&sink),
                        resume: None,
                    },
                );
            });
        }))
    };
    assert!(died, "the injected kill must abort the chaos run");
    // iteration 1 is always checkpointed, so a consistent restart exists
    let resume = store.resume_point(n_ranks).expect("checkpoints recorded");
    assert!(resume[0].iteration >= 1);

    // Restart from the newest common checkpoint on a healthy universe:
    // the tail replays the identical floating-point sequence.
    let resumed: Vec<(Vec<f64>, Vec<f64>)> = Universe::run(n_ranks, move |comm| {
        let (a, b) = build(comm);
        let mut x = DistVector::zeros(a.domain_map().clone());
        let st = cg_checkpointed(
            comm,
            &a,
            &b,
            &mut x,
            &IdentityPrecond,
            &KrylovConfig::default(),
            &CgCheckpointing {
                every: 0,
                sink: None,
                resume: Some(&resume[comm.rank()]),
            },
        );
        assert!(st.converged);
        (x.local().to_vec(), st.history)
    });
    for (rank, (full, res)) in reference.iter().zip(resumed.iter()).enumerate() {
        assert_eq!(full.0, res.0, "rank {rank}: restarted x must match bitwise");
        assert_eq!(full.1, res.1, "rank {rank}: residual history must match");
    }
}

// ---- dist map misuse ---------------------------------------------------------------

#[test]
fn map_rejects_out_of_range_rank() {
    assert!(panics(|| {
        let _ = DistMap::block(10, 3, 7);
    }));
}

#[test]
fn redistribute_between_all_kinds_with_empty_ranks() {
    // n < workers: several empty segments; all redistributions must hold.
    let ctx = OdinContext::with_workers(4);
    let a = ctx.linspace(1.0, 2.0, 2);
    for d in [Dist::Cyclic, Dist::BlockCyclic(3), Dist::Block] {
        let b = a.redistribute(d);
        assert_eq!(b.to_vec(), a.to_vec());
    }
}
