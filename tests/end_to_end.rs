//! Cross-crate integration: the paper's §V pipeline exercised end-to-end,
//! plus bridge/IO/table flows that span ODIN, the solver stack and
//! Seamless.

use hpc_framework::prelude::*;
use hpc_framework::seamless;

#[test]
fn the_papers_section_v_user_story() {
    // "a user allocates, initializes and manipulates a large simulation
    // data set using ODIN …"
    let session = Session::new(3);
    let ctx = session.odin();
    let n = 64;
    let x = ctx.linspace(0.0, 1.0, n);
    let forcing = (Expr::leaf(&x) * std::f64::consts::PI).sin().eval();

    // "… Seamless is used [to] convert this callback into a highly
    // efficient numerical kernel" — here scaling the forcing in place.
    let kernel = seamless::compile_kernel(
        "def boost(a):\n    for i in range(len(a)):\n        a[i] = 4.0 * a[i]\n",
        "boost",
        &[Type::ArrF],
    )
    .unwrap();
    apply_kernel(ctx, &forcing, &kernel).unwrap();

    // "… devises a solution approach using PyTrilinos solvers that accept
    // ODIN arrays"
    let (u, report) = solve_with_odin_rhs(
        ctx,
        &forcing,
        move |g| {
            let mut row = vec![(g, 2.0)];
            if g > 0 {
                row.push((g - 1, -1.0));
            }
            if g + 1 < n {
                row.push((g + 1, -1.0));
            }
            row
        },
        SolveMethod::CgJacobi,
        Default::default(),
    );
    assert!(report.converged);
    assert!(!report.redistributed);
    // A is SPD and the forcing is positive: the solution must be positive
    // and symmetric around the midpoint.
    let uv = u.to_vec();
    assert!(uv.iter().all(|&v| v > 0.0));
    for i in 0..n / 2 {
        assert!(
            (uv[i] - uv[n - 1 - i]).abs() < 1e-6 * uv[n / 2],
            "asymmetry at {i}"
        );
    }
}

#[test]
fn newton_callback_pipeline_matches_rust_reference() {
    // Same Bratu problem with the nonlinearity in pyish vs hard-coded in
    // Rust (the solvers crate test) — the two solution paths must agree.
    let session = Session::new(2);
    let problem = PyishReaction::from_sources(
        16,
        1.0,
        "def g(u: float):\n    return exp(u)\n",
        "g",
        "def dg(u: float):\n    return exp(u)\n",
        "dg",
    )
    .unwrap();
    let (x, st) = newton_with_pyish_reaction(session.odin(), problem, NewtonConfig::default());
    assert!(st.converged);
    let u = x.to_vec();
    // residual of the PDE at every interior point
    let n = 16;
    let h2 = 1.0 / ((n as f64 + 1.0) * (n as f64 + 1.0));
    for i in 0..n {
        let mut lap = 2.0 * u[i];
        if i > 0 {
            lap -= u[i - 1];
        }
        if i + 1 < n {
            lap -= u[i + 1];
        }
        let res = lap / h2 - u[i].exp();
        assert!(res.abs() < 1e-7, "residual {res} at {i}");
    }
}

#[test]
fn distributions_io_and_reductions_compose() {
    let session = Session::new(3);
    let ctx = session.odin();
    // build → slice → redistribute → save → load → reduce
    let a = ctx.arange_f64(0.0, 1.0, 30, Dist::Cyclic);
    let evens = a.slice1(0, None, 2); // 0, 2, …, 28
    let blocky = evens.redistribute(Dist::Block);
    let base = std::env::temp_dir().join(format!("e2e_{}", std::process::id()));
    ctx.save(&blocky, &base).unwrap();
    let back = ctx.load(&base).unwrap();
    hpc_framework::odin::remove_saved(&base, 3);
    assert_eq!(back.to_vec(), evens.to_vec());
    // sum of 0,2,…,28 = 2 * (0+…+14) = 210
    assert_eq!(back.sum(), 210.0);
}

#[test]
fn tables_and_arrays_share_one_context() {
    let session = Session::new(2);
    let ctx = session.odin();
    let x = ctx.ones(&[10], DType::F64);
    let schema = Schema::new(&[("k", FieldType::Str), ("v", FieldType::F64)]);
    let t = ctx.table_from_records(
        schema,
        (0..10)
            .map(|i| {
                Record(vec![
                    FieldValue::Str(if i % 2 == 0 { "even" } else { "odd" }.into()),
                    FieldValue::F64(i as f64),
                ])
            })
            .collect(),
    );
    let sums = t.group_by_sum("k", "v");
    assert_eq!(sums[0], ("even".to_string(), 20.0));
    assert_eq!(sums[1], ("odd".to_string(), 25.0));
    // the array is still alive and usable
    assert_eq!(x.sum(), 10.0);
}

#[test]
fn control_messages_stay_small_through_a_whole_pipeline() {
    // E2's claim checked at integration level: run a realistic pipeline
    // and assert the mean *control* message stays at tens of bytes.
    let session = Session::new(4);
    let ctx = session.odin();
    ctx.reset_stats();
    let x = ctx.random(&[500], 1);
    let y = ctx.random(&[500], 2);
    let z = (&(&x * &y) + 1.0).sqrt();
    let _ = z.slice1(1, None, 1);
    let _ = z.sum();
    let st = ctx.stats();
    assert!(st.ctrl_msgs > 0);
    assert!(
        st.mean_ctrl_bytes() < 100.0,
        "mean control message {} bytes",
        st.mean_ctrl_bytes()
    );
}
