//! Cross-crate solver-stack integration: galeri problems through every
//! solver family, with answers cross-checked between independent paths
//! (iterative vs direct, Lanczos vs analytic, CG vs GMRES).

use hpc_framework::comm::Universe;
use hpc_framework::dlinalg::DistVector;
use hpc_framework::galeri::{
    advection_diffusion_1d, anisotropic_laplace_2d, poisson2d_manufactured, random_spd,
};
use hpc_framework::solvers::{
    bicgstab, cg, gmres, lanczos_extreme_eigenvalues, power_method, AmgPreconditioner,
    DirectSolver, IdentityPrecond, IluPrecond, KrylovConfig,
};

fn residual_ok(rel: f64) {
    assert!(rel < 1e-6, "relative residual {rel}");
}

#[test]
fn iterative_and_direct_agree_on_poisson2d() {
    Universe::run(3, |comm| {
        let prob = poisson2d_manufactured(comm, 10, 10);
        // direct (Amesos path)
        let solver = DirectSolver::factor(comm, &prob.a);
        let x_direct = solver.solve(comm, &prob.b);
        // iterative (AztecOO path)
        let mut x_cg = DistVector::zeros(prob.a.domain_map().clone());
        let st = cg(
            comm,
            &prob.a,
            &prob.b,
            &mut x_cg,
            &IdentityPrecond,
            &KrylovConfig {
                rtol: 1e-12,
                ..Default::default()
            },
        );
        assert!(st.converged);
        let mut d = x_direct.clone();
        d.axpy(-1.0, &x_cg);
        let rel = d.norm2(comm) / x_direct.norm2(comm);
        residual_ok(rel);
        // and both match the manufactured exact solution
        let mut e = x_direct;
        e.axpy(-1.0, &prob.x_exact);
        residual_ok(e.norm2(comm) / prob.x_exact.norm2(comm));
    });
}

#[test]
fn nonsymmetric_solvers_agree() {
    Universe::run(2, |comm| {
        let a = advection_diffusion_1d(comm, 40, 8.0);
        let b = DistVector::from_fn(a.domain_map().clone(), |g| 1.0 / (1.0 + g as f64));
        let cfg = KrylovConfig {
            rtol: 1e-10,
            max_iter: 2000,
            restart: 25,
            ..Default::default()
        };
        let mut x_g = DistVector::zeros(a.domain_map().clone());
        let st_g = gmres(comm, &a, &b, &mut x_g, &IdentityPrecond, &cfg);
        assert!(st_g.converged, "gmres residual {}", st_g.final_residual());
        let mut x_b = DistVector::zeros(a.domain_map().clone());
        let st_b = bicgstab(comm, &a, &b, &mut x_b, &IdentityPrecond, &cfg);
        assert!(st_b.converged);
        let mut d = x_g.clone();
        d.axpy(-1.0, &x_b);
        residual_ok(d.norm2(comm) / x_g.norm2(comm));
    });
}

#[test]
fn amg_scales_better_than_plain_cg_on_anisotropic_problem() {
    Universe::run(2, |comm| {
        let a = anisotropic_laplace_2d(comm, 20, 20, 0.1);
        let b = DistVector::constant(a.domain_map().clone(), 1.0);
        let cfg = KrylovConfig {
            rtol: 1e-8,
            max_iter: 4000,
            ..Default::default()
        };
        let mut x0 = DistVector::zeros(a.domain_map().clone());
        let plain = cg(comm, &a, &b, &mut x0, &IdentityPrecond, &cfg);
        let amg = AmgPreconditioner::new(comm, &a, Default::default());
        let mut x1 = DistVector::zeros(a.domain_map().clone());
        let fast = cg(comm, &a, &b, &mut x1, &amg, &cfg);
        assert!(plain.converged && fast.converged);
        assert!(
            fast.iterations < plain.iterations,
            "amg {} vs plain {}",
            fast.iterations,
            plain.iterations
        );
    });
}

#[test]
fn eigen_estimates_match_between_methods() {
    Universe::run(2, |comm| {
        let a = random_spd(comm, 24, 2, 7);
        let power = power_method(comm, &a, 1e-10, 10_000);
        let ritz = lanczos_extreme_eigenvalues(comm, &a, 24);
        let lanczos_max = *ritz.last().unwrap();
        assert!(power.converged);
        assert!(
            (power.lambda - lanczos_max).abs() < 1e-4 * lanczos_max.abs(),
            "power {} vs lanczos {}",
            power.lambda,
            lanczos_max
        );
        // SPD: all Ritz values positive
        assert!(ritz.iter().all(|&l| l > 0.0));
    });
}

#[test]
fn ilu_preconditioning_never_hurts_iteration_counts() {
    // note: the *manufactured* RHS is an exact eigenvector of the
    // discrete Laplacian (CG solves it in one step), so a generic RHS is
    // used for iteration-count comparisons.
    for p in [1, 3] {
        Universe::run(p, |comm| {
            let prob = poisson2d_manufactured(comm, 12, 12);
            let b = DistVector::from_fn(prob.a.domain_map().clone(), |g| {
                1.0 + (g as f64 * 0.13).sin()
            });
            let cfg = KrylovConfig {
                rtol: 1e-8,
                max_iter: 2000,
                ..Default::default()
            };
            let mut x0 = DistVector::zeros(prob.a.domain_map().clone());
            let plain = cg(comm, &prob.a, &b, &mut x0, &IdentityPrecond, &cfg);
            let ilu = IluPrecond::new(&prob.a);
            let mut x1 = DistVector::zeros(prob.a.domain_map().clone());
            let prec = cg(comm, &prob.a, &b, &mut x1, &ilu, &cfg);
            assert!(plain.converged && prec.converged);
            assert!(
                prec.iterations <= plain.iterations,
                "p={p}: ilu {} vs plain {}",
                prec.iterations,
                plain.iterations
            );
        });
    }
}

#[test]
fn solution_is_independent_of_rank_count() {
    let solve = |p: usize| -> Vec<f64> {
        Universe::run(p, |comm| {
            let prob = poisson2d_manufactured(comm, 8, 8);
            let mut x = DistVector::zeros(prob.a.domain_map().clone());
            let st = cg(
                comm,
                &prob.a,
                &prob.b,
                &mut x,
                &IdentityPrecond,
                &KrylovConfig {
                    rtol: 1e-12,
                    ..Default::default()
                },
            );
            assert!(st.converged);
            x.gather_global(comm)
        })
        .pop()
        .unwrap()
    };
    let x1 = solve(1);
    let x4 = solve(4);
    for (a, b) in x1.iter().zip(&x4) {
        assert!((a - b).abs() < 1e-8, "{a} vs {b}");
    }
}
