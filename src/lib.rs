//! Umbrella crate for the HPC framework workspace: re-exports every
//! subsystem so examples and integration tests have a single entry point.
pub use comm;
pub use dlinalg;
pub use dmap;
pub use galeri;
pub use hpc_core;
pub use obs;
pub use odin;
pub use seamless;
pub use solvers;
