//! Umbrella crate for the HPC framework workspace: re-exports every
//! subsystem so examples and integration tests have a single entry
//! point, plus a [`prelude`] with the handful of names almost every
//! program needs.
//!
//! ```
//! use hpc_framework::prelude::*;
//!
//! let ctx = OdinContext::with_workers(2);
//! let x = ctx.linspace(0.0, 1.0, 8);
//! let k = ctx
//!     .compile_kernel("def sq(v):\n    return v * v\n", "sq")
//!     .unwrap();
//! let y = k.map(&[&x]);
//! assert_eq!(y.len(), 8);
//! ```

pub use comm;
pub use dlinalg;
pub use dmap;
pub use galeri;
pub use hpc_core;
pub use obs;
pub use odin;
pub use seamless;
pub use serve;
pub use solvers;

/// The most-used names from every layer, importable in one line:
/// `use hpc_framework::prelude::*;`.
///
/// Covers distributed arrays and lazy expressions (ODIN), JIT kernels
/// (Seamless), the communication substrate, the solver stack, the
/// composition layer, the multi-tenant serving plane, and the unified
/// [`hpc_core::Error`] / [`hpc_core::Result`] pair.
pub mod prelude {
    pub use comm::{Comm, CommError, NetworkModel, Universe, UniverseConfig};
    pub use dlinalg::{CsrMatrix, DistVector};
    pub use hpc_core::{
        apply_kernel, newton_with_pyish_reaction, solve_with_odin_rhs, BridgeReport, Error,
        PyishReaction, Result, Session, SolveMethod,
    };
    pub use odin::{
        DType, Dist, DistArray, DistTable, Expr, FieldType, FieldValue, Kernel, KernelSpec,
        OdinConfig, OdinContext, OdinError, PExpr, Program, ProgramRun, ProgramStats, Record,
        ReduceKind, Schema, Tier, Traced, TracedScalar,
    };
    pub use seamless::{compile_kernel, jit, CompiledKernel, SeamlessError, Type, Value};
    // serve::Session stays un-globbed (hpc_core::Session has the name);
    // reach it as `serve::Session`.
    pub use serve::{
        JobOutcome, JobRequest, JobSpec, Priority, ServeConfig, ServeError, ServePlane, ServeStats,
        TenantQuota,
    };
    pub use solvers::{
        bicgstab, cg, gmres, newton_krylov, AmgPreconditioner, IdentityPrecond, JacobiPrecond,
        KrylovConfig, NewtonConfig, Preconditioner, SolveStatus, SolverError,
    };
}
